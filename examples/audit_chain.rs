//! Durable, self-verifiable ledgers on real disk: run a cluster, persist the
//! chain with a real file-backed ledger (CRC-framed records, torn-write
//! recovery), reopen it as an independent auditor process would, and verify
//! it from nothing but the genesis configuration.
//!
//! ```text
//! cargo run --example audit_chain
//! ```

use smartchain::core::audit::verify_chain;
use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::ledger::Ledger;
use smartchain::sim::SECOND;
use smartchain::smr::app::CounterApp;
use smartchain::storage::log::FileLog;
use smartchain::storage::{RecordLog, SyncPolicy};

fn main() -> std::io::Result<()> {
    println!("== Durable ledger + third-party audit ==\n");
    // 1. Produce a chain in simulation.
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .clients(1, 4, Some(100))
        .build();
    cluster.run_until(60 * SECOND);
    let node = cluster.node::<CounterApp>(0);
    let chain = node.chain();
    let genesis = node.genesis().clone();
    println!("produced {} blocks in simulation", chain.len());

    // 2. Persist it to a real on-disk ledger, synchronously.
    let dir = std::env::temp_dir().join(format!("smartchain-audit-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("chain.log");
    let _ = std::fs::remove_file(&path);
    {
        let log = FileLog::open(&path, SyncPolicy::Sync)?;
        let mut ledger = Ledger::open(log, genesis.clone())?;
        for block in &chain {
            ledger.append(block)?;
        }
        ledger.sync()?;
        println!("persisted to {} ", path.display());
    }
    let bytes = std::fs::metadata(&path)?.len();
    println!("ledger file size: {bytes} bytes");

    // 3. Reopen as an auditor: recover the chain from disk and verify it.
    let log = FileLog::open(&path, SyncPolicy::Sync)?;
    println!("recovered {} records from disk", log.len());
    let ledger = Ledger::open(log, genesis.clone())?;
    let recovered = ledger.blocks_from(1)?;
    assert_eq!(recovered.len(), chain.len(), "every block recovered");
    match verify_chain(&genesis, &recovered) {
        Ok(report) => println!(
            "audit from disk: OK — {} blocks, tip {}…",
            report.blocks,
            &smartchain::crypto::hex(&report.tip)[..16]
        ),
        Err(e) => println!("audit from disk: FAILED — {e}"),
    }

    // 4. Tamper with one byte mid-file and show the ledger detects it.
    let mut raw = std::fs::read(&path)?;
    let mid = raw.len() / 2;
    raw[mid] ^= 0x01;
    std::fs::write(&path, raw)?;
    let tampered = FileLog::open(&path, SyncPolicy::Sync)?;
    println!(
        "after 1-bit tamper: {} of {} records survive CRC recovery (prefix property)",
        tampered.len(),
        chain.len() + 1
    );
    Ok(())
}
