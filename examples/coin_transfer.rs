//! SMaRtCoin end to end: mint coins, transfer them between wallets, watch a
//! double-spend bounce, and audit the ledger — all through the replicated
//! SmartChain cluster.
//!
//! ```text
//! cargo run --example coin_transfer
//! ```

use smartchain::coin::workload::{authorized_minters, client_key, CoinFactory};
use smartchain::coin::SmartCoinApp;
use smartchain::core::audit::verify_chain;
use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::{client_id, NodeConfig, SigMode};
use smartchain::sim::SECOND;

fn main() {
    println!("== SMaRtCoin on SmartChain: mint, spend, audit ==\n");
    let replicas = 4usize;
    // One client actor hosting 4 wallets; each mints 10 coins, then spends
    // them one by one to its peer wallet (the paper's two-phase workload).
    let client_node = replicas; // first node after the replicas
    let wallets: Vec<u64> = (0..4).map(|slot| client_id(client_node, slot)).collect();
    let minters = authorized_minters(wallets.iter().copied());
    let config = NodeConfig {
        sig_mode: SigMode::Parallel,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(replicas, SmartCoinApp::from_genesis_data)
        .node_config(config)
        .app_data(minters)
        .clients(1, 4, Some(20)) // 10 MINTs + 10 SPENDs each
        .client_factory(|| Box::new(CoinFactory::new(10)))
        .build();
    cluster.run_until(60 * SECOND);

    println!("transactions completed : {}", cluster.total_completed());
    let node = cluster.node::<SmartCoinApp>(0);
    let app = node.app();
    println!("utxos in the table     : {}", app.utxo_count());
    println!(
        "accepted / rejected    : {} / {}",
        app.executed(),
        app.rejected()
    );
    println!("total value minted     : {}", app.total_value());
    for (i, wallet) in wallets.iter().enumerate() {
        let pk = client_key(*wallet).public_key();
        println!("wallet {i} balance      : {}", app.balance(&pk));
    }

    // Value conservation across all replicas.
    for r in 1..replicas {
        let other = cluster.node::<SmartCoinApp>(r).app();
        assert_eq!(
            other.total_value(),
            app.total_value(),
            "replica {r} diverged"
        );
    }
    println!("value conservation     : identical on all {replicas} replicas");

    // The ledger records everything and self-verifies.
    let report = verify_chain(&node.genesis().clone(), &node.chain()).expect("audit");
    println!(
        "ledger audit           : OK ({} blocks, every tx + result on-chain)",
        report.blocks
    );
}
