//! Light-client verifiable reads against a live TCP cluster.
//!
//! Boots a 4-replica loopback deployment, pushes enough operations through
//! it to cut checkpoints (whose state roots the replicas certify with a
//! gossiped signature quorum), then reads a chunk of the replicated state
//! through a [`TcpLightClient`] — a client that holds **only the view's
//! public keys**, asks a *single* replica, and verifies the returned
//! [`ReadProof`] (quorum certificate + Merkle membership proof) instead of
//! trusting the replier.
//!
//! ```text
//! cargo run --release --example light_client
//! ```

use smartchain::smr::app::CounterApp;
use smartchain::smr::runtime::{RuntimeConfig, TcpCluster};
use smartchain_crypto::keys::Backend;
use smartchain_light_client::TcpLightClient;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    println!("== SmartChain light client: proof-verified reads over TCP ==\n");
    let config = RuntimeConfig {
        replicas: 4,
        checkpoint_period: 4,
        ..RuntimeConfig::default()
    };
    let mut cluster = TcpCluster::start(config, Backend::Sim, CounterApp::new)?;
    let view = cluster.cluster_config().view(Backend::Sim);
    let addrs = cluster.cluster_config().replicas.clone();
    println!("cluster up on      : {addrs:?}");

    // Push 8 increments of 5 through consensus: checkpoints cover batches 4
    // and 8, and each checkpoint's state root gets quorum-certified.
    for _ in 0..8 {
        cluster.execute(vec![5], Duration::from_secs(10))?;
    }
    println!("operations ordered : 8 (counter = 40, checkpoints at 4 and 8)");

    // The light client: view keys only, no state, no consensus. One honest
    // reply is enough — the proof carries the trust, so we ask with a reply
    // quorum of 1 and verify what comes back.
    let mut light = TcpLightClient::connect(0x11687C11, addrs, view.clone());
    let proof = light.read_chunk(0, Duration::from_secs(20))?;
    println!(
        "read proof         : chunk {} of checkpoint {} ({} bytes, {} cert signers)",
        proof.chunk_index,
        proof.covered,
        proof.chunk.len(),
        proof.cert.signatures.len()
    );
    assert!(proof.verify(&view), "proof must verify against the view");

    // The chunk is raw CounterApp state: (client, sum) pairs, little-endian.
    let mut shown = false;
    for record in proof.chunk.chunks_exact(16) {
        let client = u64::from_le_bytes(record[..8].try_into().unwrap());
        let sum = u64::from_le_bytes(record[8..].try_into().unwrap());
        println!("verified state     : client {client:#x} -> sum {sum}");
        assert_eq!(sum, 40, "eight certified increments of 5");
        shown = true;
    }
    assert!(shown, "chunk 0 must hold the counter record");

    // Tamper with one byte of the chunk: the membership proof dies, so a
    // replica that lied about the bytes could never have convinced us.
    let mut tampered = proof.clone();
    tampered.chunk[8] ^= 0x01;
    assert!(!tampered.verify(&view), "tampered chunk must not verify");
    println!("tamper check       : flipped one byte -> proof rejected");

    light.shutdown();
    cluster.shutdown();
    println!("\nOK: state read and verified against the quorum's checkpoint certificate.");
    Ok(())
}
