//! A TCP client of a multi-process SmartChain cluster (see the `replica`
//! example for launching one).
//!
//! Connects to every replica named in `cluster.toml`, submits `--ops`
//! signed counter operations in a closed loop (send → await `f+1` matching
//! replies → next), and reports end-to-end throughput. Requests are signed
//! with a real Ed25519 key; replicas batch-verify them on their pool lanes
//! before ordering.

use smartchain::crypto::keys::{Backend, SecretKey};
use smartchain::smr::transport::{ClusterConfig, TcpClient};
use smartchain::smr::types::Request;
use std::process::exit;
use std::time::{Duration, Instant};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(config_path) = arg_value(&args, "--config") else {
        eprintln!("usage: client --config cluster.toml [--ops N] [--client-id ID]");
        exit(2);
    };
    let ops: u64 = arg_value(&args, "--ops")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let client_id: u64 = arg_value(&args, "--client-id")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0DE);
    let text = std::fs::read_to_string(&config_path).unwrap_or_else(|e| {
        eprintln!("read {config_path}: {e}");
        exit(1);
    });
    let cluster = ClusterConfig::parse(&text).unwrap_or_else(|e| {
        eprintln!("parse {config_path}: {e}");
        exit(1);
    });
    let quorum = cluster.f() + 1;
    let mut client = TcpClient::new(client_id, cluster.replicas.clone());
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&client_id.to_le_bytes());
    seed[8] = 0xC1;
    let key = SecretKey::from_seed(Backend::Ed25519, &seed);
    println!(
        "client {client_id:x}: {} replicas, quorum {quorum}, {ops} signed ops",
        cluster.n()
    );
    let start = Instant::now();
    let mut last_sum = 0u64;
    for seq in 1..=ops {
        let payload = vec![1u8];
        let sig = key.sign(&Request::sign_payload(client_id, seq, &payload));
        let request = Request {
            client: client_id,
            seq,
            payload,
            signature: Some((key.public_key(), sig)),
        };
        match client.execute_request(request, quorum, Duration::from_secs(30)) {
            Ok(result) => {
                last_sum = u64::from_le_bytes(result[..8].try_into().unwrap_or_default());
            }
            Err(e) => {
                eprintln!("op {seq}: {e}");
                exit(1);
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "done: {ops} ops in {secs:.2}s ({:.1} ops/sec), final counter {last_sum}",
        ops as f64 / secs.max(1e-9)
    );
    client.shutdown();
}
