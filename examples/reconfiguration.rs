//! Decentralized reconfiguration: a node joins the consortium through the
//! vote-collection protocol (no trusted administrator), the view's consensus
//! keys rotate (the forgetting protocol), a member leaves, and the auditor
//! verifies the chain across all membership changes — then rejects a
//! Figure-4-style fork minted by ex-members.
//!
//! ```text
//! cargo run --example reconfiguration
//! ```

use smartchain::core::audit::{is_link_valid_fork, verify_chain};
use smartchain::core::block::BlockBody;
use smartchain::core::harness::{ChainClusterBuilder, NodeSchedule};
use smartchain::sim::SECOND;
use smartchain::smr::app::CounterApp;

fn main() {
    println!("== Decentralized reconfiguration & fork safety ==\n");
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .clients(1, 2, Some(300))
        .extra_node(NodeSchedule {
            join_at: Some(2 * SECOND),
            leave_at: Some(10 * SECOND),
        })
        .build();
    cluster.run_until(30 * SECOND);

    let node0 = cluster.node::<CounterApp>(0);
    let chain = node0.chain();
    let genesis = node0.genesis().clone();

    let reconfigs: Vec<_> = chain
        .iter()
        .filter_map(|b| match &b.body {
            BlockBody::Reconfiguration { new_view, .. } => {
                Some((b.header.number, new_view.id, new_view.n()))
            }
            _ => None,
        })
        .collect();
    println!("reconfiguration blocks:");
    for (number, view, n) in &reconfigs {
        println!("  block {number}: installs view {view} with {n} members");
    }
    assert_eq!(reconfigs.len(), 2, "expected join + leave");

    let report = verify_chain(&genesis, &chain).expect("audit across reconfigurations");
    println!(
        "\naudit: OK — {} blocks, final view {} ({} members at the end)",
        report.blocks,
        report.final_view_id,
        cluster
            .node::<CounterApp>(0)
            .view()
            .map(|v| v.n())
            .unwrap_or(0),
    );
    println!(
        "node 4: joined at 2s, left at 10s, active now: {}",
        cluster.node::<CounterApp>(4).is_active()
    );

    // Fork attempt: truncate the chain just before the first reconfiguration
    // and graft a fabricated block with no quorum authority (what removed,
    // later-compromised members could produce after keys rotated away).
    let first_reconfig = reconfigs[0].0 as usize;
    let mut fork: Vec<_> = chain[..first_reconfig - 1].to_vec();
    if let Some(donor) = chain.get(first_reconfig) {
        let mut forged = donor.clone();
        forged.header.number = first_reconfig as u64;
        forged.header.hash_last_block = fork
            .last()
            .map(|b| b.header.hash())
            .unwrap_or_else(|| genesis.hash());
        forged.header.last_reconfig = 0;
        // Re-seal commitments so only authority can fail.
        let rebuilt = smartchain::core::block::Block::build(
            forged.header.number,
            0,
            forged.header.last_checkpoint,
            forged.header.hash_last_block,
            forged.body.clone(),
            [0u8; 32],
        );
        fork.push(rebuilt);
        println!(
            "\nfork attempt: link-valid fork constructed: {}",
            is_link_valid_fork(&genesis, &chain, &fork)
        );
        match verify_chain(&genesis, &fork) {
            Ok(_) => println!("fork audit: ACCEPTED (must not happen!)"),
            Err(e) => println!("fork audit: REJECTED — {e}"),
        }
        assert!(verify_chain(&genesis, &fork).is_err());
    }
}
