//! One replica of a real multi-process SmartChain deployment.
//!
//! Generate a deployment descriptor once, then launch one process per
//! replica (and drive them with the `client` example):
//!
//! ```text
//! cargo run --release --example replica -- --init 4 --base-port 7100 > cluster.toml
//! cargo run --release --example replica -- --id 0 --config cluster.toml &
//! cargo run --release --example replica -- --id 1 --config cluster.toml &
//! cargo run --release --example replica -- --id 2 --config cluster.toml &
//! cargo run --release --example replica -- --id 3 --config cluster.toml &
//! cargo run --release --example client  -- --config cluster.toml --ops 100
//! ```
//!
//! Each process binds its own TCP listener (length-framed, HMAC-
//! authenticated links), recovers its durable state from `--storage`, and
//! runs the same replica loop the in-process clusters use. Kill one with
//! SIGKILL and restart it: it replays its disk, state-transfers the missed
//! suffix from a peer, and rejoins.

use smartchain::crypto::keys::Backend;
use smartchain::crypto::sha256;
use smartchain::smr::app::CounterApp;
use smartchain::smr::runtime::serve_replica;
use smartchain::smr::transport::ClusterConfig;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  replica --init N --base-port P        # print a cluster.toml for N replicas\n  replica --id N --config cluster.toml [--storage DIR]"
    );
    exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn read_urandom() -> Option<Vec<u8>> {
    use std::io::Read;
    let mut f = std::fs::File::open("/dev/urandom").ok()?;
    let mut buf = [0u8; 32];
    f.read_exact(&mut buf).ok()?;
    Some(buf.to_vec())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(n) = arg_value(&args, "--init") {
        let n: usize = n.parse().unwrap_or_else(|_| usage());
        let base: u16 = arg_value(&args, "--base-port")
            .and_then(|p| p.parse().ok())
            .unwrap_or(7100);
        // A demo secret: hashed urandom when available, time+pid otherwise.
        // Production deployments should provision the secret out of band.
        let entropy = read_urandom().unwrap_or_else(|| {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            format!("{now}-{}", std::process::id()).into_bytes()
        });
        let secret = sha256::digest(&entropy);
        let addrs = (0..n)
            .map(|i| format!("127.0.0.1:{}", base + i as u16))
            .collect();
        print!("{}", ClusterConfig::new(addrs, secret).to_toml());
        return;
    }
    let Some(id) = arg_value(&args, "--id").and_then(|v| v.parse::<usize>().ok()) else {
        usage();
    };
    let Some(config_path) = arg_value(&args, "--config") else {
        usage();
    };
    let text = std::fs::read_to_string(&config_path).unwrap_or_else(|e| {
        eprintln!("read {config_path}: {e}");
        exit(1);
    });
    let cluster = ClusterConfig::parse(&text).unwrap_or_else(|e| {
        eprintln!("parse {config_path}: {e}");
        exit(1);
    });
    if id >= cluster.n() {
        eprintln!(
            "--id {id} out of range (cluster has {} replicas)",
            cluster.n()
        );
        exit(1);
    }
    let storage = arg_value(&args, "--storage")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("smartchain-data/replica-{id}")));
    eprintln!(
        "replica {id}: listening on {}, storage {}, {} members",
        cluster.replicas[id],
        storage.display(),
        cluster.n()
    );
    // Ed25519 throughout: the Sim backend's verification registry is
    // process-local and cannot authenticate across processes.
    if let Err(e) = serve_replica(&cluster, id, Backend::Ed25519, storage, CounterApp::new()) {
        eprintln!("replica {id}: {e}");
        exit(1);
    }
}
