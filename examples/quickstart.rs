//! Quickstart: spin up a 4-node SmartChain cluster on the simulator, push a
//! workload through it, and verify the resulting blockchain as a third party.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use smartchain::core::audit::verify_chain;
use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::{NodeConfig, Variant};
use smartchain::sim::SECOND;
use smartchain::smr::app::CounterApp;

fn main() {
    println!("== SmartChain quickstart: 4 replicas, strong persistence ==\n");
    let config = NodeConfig {
        variant: Variant::Strong,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .clients(2, 4, Some(50)) // 8 logical clients x 50 requests
        .build();
    cluster.run_until(60 * SECOND);

    println!("requests completed : {}", cluster.total_completed());
    let node = cluster.node::<CounterApp>(0);
    let chain = node.chain();
    println!("chain height       : {}", chain.len());
    let certified = chain
        .iter()
        .filter(|b| !b.certificate.signatures.is_empty())
        .count();
    println!("certified blocks   : {certified} (strong variant: every block)");

    // Any third party holding only the genesis configuration can verify the
    // whole chain: hash linkage, content commitments, and that every block
    // is vouched for by a Byzantine quorum of the view in force.
    let genesis = node.genesis().clone();
    match verify_chain(&genesis, &chain) {
        Ok(report) => println!(
            "audit              : OK ({} blocks, final view {}, tip {}...)",
            report.blocks,
            report.final_view_id,
            &smartchain::crypto::hex(&report.tip)[..12],
        ),
        Err(e) => println!("audit              : FAILED — {e}"),
    }

    // Replicas agree bit-for-bit.
    let tip0 = chain.last().map(|b| b.header.hash());
    for r in 1..4 {
        let tip = cluster
            .node::<CounterApp>(r)
            .chain()
            .last()
            .map(|b| b.header.hash());
        assert_eq!(tip, tip0, "replica {r} diverged");
    }
    println!("replica agreement  : all 4 replicas hold the same chain");
}
