//! SMaRtCoin — the paper's digital-coin application (§IV-A).
//!
//! A deterministic wallet service over the UTXO model: MINT creates coins
//! for an address (the issuer must be on the genesis minter list), SPEND
//! consumes input coins owned by the issuer and creates outputs for the
//! recipients. Requests are signed by clients; ownership is the signing key.
//!
//! The service state is the UTXO table plus the authorized-minter list —
//! exactly the paper's description: "a table with the coins assigned to each
//! address in memory and a list of addresses authorized to create new coins".

pub mod app;
pub mod tx;
pub mod workload;

pub use app::SmartCoinApp;
pub use tx::{CoinId, CoinTx, TxResult};
