//! The SMaRtCoin service: a deterministic UTXO wallet as an SMR
//! [`Application`].

use crate::tx::{coin_id, CoinId, CoinTx, Output, RejectReason, TxResult};
use smartchain_codec::{decode_seq, encode_seq, to_bytes, Decode, Encode};
use smartchain_crypto::keys::PublicKey;
use smartchain_smr::app::Application;
use smartchain_smr::types::Request;
use std::collections::BTreeMap;

/// One unspent output in the table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Coin {
    owner: PublicKey,
    value: u64,
}

/// The SMaRtCoin application state.
#[derive(Debug, Clone)]
pub struct SmartCoinApp {
    utxos: BTreeMap<CoinId, Coin>,
    minters: Vec<PublicKey>,
    executed: u64,
    rejected: u64,
}

impl SmartCoinApp {
    /// Creates the service with the given authorized minters (from the
    /// genesis block's app data).
    pub fn new(minters: Vec<PublicKey>) -> SmartCoinApp {
        SmartCoinApp {
            utxos: BTreeMap::new(),
            minters,
            executed: 0,
            rejected: 0,
        }
    }

    /// Decodes the minter list from genesis app data (see
    /// [`SmartCoinApp::encode_minters`]).
    pub fn from_genesis_data(data: &[u8]) -> SmartCoinApp {
        let minters = Self::decode_minters(data).unwrap_or_default();
        SmartCoinApp::new(minters)
    }

    /// Encodes a minter list for embedding in the genesis block.
    pub fn encode_minters(minters: &[PublicKey]) -> Vec<u8> {
        let wires: Vec<[u8; 33]> = minters.iter().map(PublicKey::to_wire).collect();
        let mut out = Vec::new();
        encode_seq(&wires, &mut out);
        out
    }

    fn decode_minters(mut data: &[u8]) -> Option<Vec<PublicKey>> {
        let wires: Vec<[u8; 33]> = decode_seq(&mut data).ok()?;
        Some(wires.iter().map(PublicKey::from_wire).collect())
    }

    /// Pre-populates the UTXO table with `count` synthetic coins owned by
    /// `owner` (the Fig. 7 experiment boots with 8M UTXOs ≈ 1 GB of state).
    pub fn populate_synthetic(&mut self, owner: PublicKey, count: u64) {
        for i in 0..count {
            let id = coin_id(u64::MAX, i, 0);
            self.utxos.insert(id, Coin { owner, value: 1 });
        }
    }

    /// Number of unspent outputs.
    pub fn utxo_count(&self) -> usize {
        self.utxos.len()
    }

    /// Sum of all coin values owned by `owner`.
    pub fn balance(&self, owner: &PublicKey) -> u64 {
        self.utxos
            .values()
            .filter(|c| c.owner == *owner)
            .map(|c| c.value)
            .sum()
    }

    /// Transactions executed (accepted).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Transactions rejected.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total value in circulation (conservation invariant in tests).
    pub fn total_value(&self) -> u64 {
        self.utxos.values().map(|c| c.value).sum()
    }

    fn apply(&mut self, request: &Request) -> TxResult {
        let Some((issuer, _)) = &request.signature else {
            return self.reject(RejectReason::Unsigned);
        };
        // Decode a transaction prefix; workloads pad payloads to model the
        // paper's wire sizes, so trailing bytes are permitted.
        let mut payload = request.payload.as_slice();
        let Ok(tx) = CoinTx::decode(&mut payload) else {
            return self.reject(RejectReason::Malformed);
        };
        match tx {
            CoinTx::Mint { outputs } => {
                if !self.minters.contains(issuer) {
                    return self.reject(RejectReason::NotAMinter);
                }
                self.create(request, &outputs)
            }
            CoinTx::Spend { inputs, outputs } => {
                // Validate inputs: all present, all owned by the issuer.
                let mut total_in = 0u64;
                for input in &inputs {
                    match self.utxos.get(input) {
                        None => return self.reject(RejectReason::UnknownInput),
                        Some(coin) if coin.owner != *issuer => {
                            return self.reject(RejectReason::NotOwner)
                        }
                        Some(coin) => total_in += coin.value,
                    }
                }
                let total_out: u64 = outputs.iter().map(|o| o.value).sum();
                if total_out > total_in {
                    return self.reject(RejectReason::ValueMismatch);
                }
                for input in &inputs {
                    self.utxos.remove(input);
                }
                self.create(request, &outputs)
            }
        }
    }

    fn create(&mut self, request: &Request, outputs: &[Output]) -> TxResult {
        let mut coins = Vec::with_capacity(outputs.len());
        for (i, output) in outputs.iter().enumerate() {
            let id = coin_id(request.client, request.seq, i as u32);
            self.utxos.insert(
                id,
                Coin {
                    owner: output.owner,
                    value: output.value,
                },
            );
            coins.push(id);
        }
        self.executed += 1;
        TxResult::Created { coins }
    }

    fn reject(&mut self, reason: RejectReason) -> TxResult {
        self.rejected += 1;
        TxResult::Rejected { reason }
    }
}

impl Application for SmartCoinApp {
    fn execute(&mut self, request: &Request) -> Vec<u8> {
        let result = self.apply(request);
        to_bytes(&result)
    }

    fn take_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let entries: Vec<([u8; 32], [u8; 33], u64)> = self
            .utxos
            .iter()
            .map(|(id, c)| (*id, c.owner.to_wire(), c.value))
            .collect();
        encode_seq(&entries, &mut out);
        let minters: Vec<[u8; 33]> = self.minters.iter().map(PublicKey::to_wire).collect();
        encode_seq(&minters, &mut out);
        self.executed.encode(&mut out);
        self.rejected.encode(&mut out);
        out
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) {
        let mut input = snapshot;
        let Ok(entries) = decode_seq::<([u8; 32], [u8; 33], u64)>(&mut input) else {
            return;
        };
        let Ok(minters) = decode_seq::<[u8; 33]>(&mut input) else {
            return;
        };
        self.utxos = entries
            .into_iter()
            .map(|(id, owner, value)| {
                (
                    id,
                    Coin {
                        owner: PublicKey::from_wire(&owner),
                        value,
                    },
                )
            })
            .collect();
        self.minters = minters.iter().map(PublicKey::from_wire).collect();
        self.executed = u64::decode(&mut input).unwrap_or(0);
        self.rejected = u64::decode(&mut input).unwrap_or(0);
    }

    fn reset(&mut self) {
        self.utxos.clear();
        self.executed = 0;
        self.rejected = 0;
        // The minter list comes from genesis and survives resets.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_codec::from_bytes;
    use smartchain_crypto::keys::{Backend, SecretKey};

    fn key(seed: u8) -> SecretKey {
        SecretKey::from_seed(Backend::Sim, &[seed; 32])
    }

    fn signed_request(sk: &SecretKey, client: u64, seq: u64, tx: &CoinTx) -> Request {
        let payload = to_bytes(tx);
        let sig = sk.sign(&Request::sign_payload(client, seq, &payload));
        Request {
            client,
            seq,
            payload,
            signature: Some((sk.public_key(), sig)),
        }
    }

    fn setup() -> (SmartCoinApp, SecretKey, SecretKey) {
        let minter = key(1);
        let user = key(2);
        let app = SmartCoinApp::new(vec![minter.public_key()]);
        (app, minter, user)
    }

    #[test]
    fn mint_and_spend_happy_path() {
        let (mut app, minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 100,
            }],
        };
        let req = signed_request(&minter, 10, 0, &mint);
        let result: TxResult = from_bytes(&app.execute(&req)).unwrap();
        let TxResult::Created { coins } = result else {
            panic!("mint rejected: {result:?}")
        };
        assert_eq!(app.balance(&minter.public_key()), 100);
        // Spend 60 to the user, 40 back.
        let spend = CoinTx::Spend {
            inputs: coins,
            outputs: vec![
                Output {
                    owner: user.public_key(),
                    value: 60,
                },
                Output {
                    owner: minter.public_key(),
                    value: 40,
                },
            ],
        };
        let req = signed_request(&minter, 10, 1, &spend);
        let result: TxResult = from_bytes(&app.execute(&req)).unwrap();
        assert!(matches!(result, TxResult::Created { .. }), "{result:?}");
        assert_eq!(app.balance(&user.public_key()), 60);
        assert_eq!(app.balance(&minter.public_key()), 40);
        assert_eq!(app.total_value(), 100, "value conserved");
    }

    #[test]
    fn non_minter_cannot_mint() {
        let (mut app, _minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: user.public_key(),
                value: 5,
            }],
        };
        let req = signed_request(&user, 11, 0, &mint);
        let result: TxResult = from_bytes(&app.execute(&req)).unwrap();
        assert_eq!(
            result,
            TxResult::Rejected {
                reason: RejectReason::NotAMinter
            }
        );
        assert_eq!(app.total_value(), 0);
    }

    #[test]
    fn cannot_spend_others_coins() {
        let (mut app, minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 10,
            }],
        };
        let req = signed_request(&minter, 10, 0, &mint);
        let result: TxResult = from_bytes(&app.execute(&req)).unwrap();
        let TxResult::Created { coins } = result else {
            panic!()
        };
        // The user tries to spend the minter's coin.
        let theft = CoinTx::Spend {
            inputs: coins,
            outputs: vec![Output {
                owner: user.public_key(),
                value: 10,
            }],
        };
        let req = signed_request(&user, 11, 0, &theft);
        let result: TxResult = from_bytes(&app.execute(&req)).unwrap();
        assert_eq!(
            result,
            TxResult::Rejected {
                reason: RejectReason::NotOwner
            }
        );
        assert_eq!(app.balance(&minter.public_key()), 10);
    }

    #[test]
    fn double_spend_rejected() {
        let (mut app, minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 10,
            }],
        };
        let req = signed_request(&minter, 10, 0, &mint);
        let TxResult::Created { coins } = from_bytes(&app.execute(&req)).unwrap() else {
            panic!()
        };
        let spend = CoinTx::Spend {
            inputs: coins.clone(),
            outputs: vec![Output {
                owner: user.public_key(),
                value: 10,
            }],
        };
        let req1 = signed_request(&minter, 10, 1, &spend);
        let r1: TxResult = from_bytes(&app.execute(&req1)).unwrap();
        assert!(matches!(r1, TxResult::Created { .. }));
        // Second spend of the same input.
        let req2 = signed_request(&minter, 10, 2, &spend);
        let r2: TxResult = from_bytes(&app.execute(&req2)).unwrap();
        assert_eq!(
            r2,
            TxResult::Rejected {
                reason: RejectReason::UnknownInput
            }
        );
        assert_eq!(app.total_value(), 10);
    }

    #[test]
    fn cannot_create_value_from_nothing() {
        let (mut app, minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 10,
            }],
        };
        let req = signed_request(&minter, 10, 0, &mint);
        let TxResult::Created { coins } = from_bytes(&app.execute(&req)).unwrap() else {
            panic!()
        };
        let inflate = CoinTx::Spend {
            inputs: coins,
            outputs: vec![Output {
                owner: user.public_key(),
                value: 11,
            }],
        };
        let req = signed_request(&minter, 10, 1, &inflate);
        let r: TxResult = from_bytes(&app.execute(&req)).unwrap();
        assert_eq!(
            r,
            TxResult::Rejected {
                reason: RejectReason::ValueMismatch
            }
        );
    }

    #[test]
    fn unsigned_requests_rejected() {
        let (mut app, minter, _) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 10,
            }],
        };
        let req = Request {
            client: 1,
            seq: 0,
            payload: to_bytes(&mint),
            signature: None,
        };
        let r: TxResult = from_bytes(&app.execute(&req)).unwrap();
        assert_eq!(
            r,
            TxResult::Rejected {
                reason: RejectReason::Unsigned
            }
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let (mut app, minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![
                Output {
                    owner: minter.public_key(),
                    value: 7,
                },
                Output {
                    owner: user.public_key(),
                    value: 3,
                },
            ],
        };
        let req = signed_request(&minter, 10, 0, &mint);
        app.execute(&req);
        let snap = app.take_snapshot();
        let mut restored = SmartCoinApp::new(Vec::new());
        restored.install_snapshot(&snap);
        assert_eq!(restored.balance(&minter.public_key()), 7);
        assert_eq!(restored.balance(&user.public_key()), 3);
        assert_eq!(restored.total_value(), 10);
        // The minter list travels with the snapshot.
        let mint2 = CoinTx::Mint {
            outputs: vec![Output {
                owner: user.public_key(),
                value: 1,
            }],
        };
        let req2 = signed_request(&minter, 10, 1, &mint2);
        let r: TxResult = from_bytes(&restored.execute(&req2)).unwrap();
        assert!(matches!(r, TxResult::Created { .. }));
    }

    #[test]
    fn genesis_data_roundtrip() {
        let minters = vec![key(1).public_key(), key(2).public_key()];
        let data = SmartCoinApp::encode_minters(&minters);
        let app = SmartCoinApp::from_genesis_data(&data);
        assert!(app.minters.contains(&minters[0]));
        assert!(app.minters.contains(&minters[1]));
    }

    #[test]
    fn synthetic_population() {
        let (mut app, minter, _) = setup();
        app.populate_synthetic(minter.public_key(), 1000);
        assert_eq!(app.utxo_count(), 1000);
        assert_eq!(app.total_value(), 1000);
    }

    #[test]
    fn deterministic_across_replicas() {
        let (mut a, minter, user) = setup();
        let (mut b, _, _) = setup();
        for seq in 0..10u64 {
            let tx = if seq % 2 == 0 {
                CoinTx::Mint {
                    outputs: vec![Output {
                        owner: user.public_key(),
                        value: seq,
                    }],
                }
            } else {
                CoinTx::Spend {
                    inputs: vec![coin_id(10, seq - 1, 0)],
                    outputs: vec![Output {
                        owner: minter.public_key(),
                        value: seq - 1,
                    }],
                }
            };
            let req = signed_request(if seq % 2 == 0 { &minter } else { &user }, 10, seq, &tx);
            assert_eq!(a.execute(&req), b.execute(&req), "seq {seq}");
        }
        assert_eq!(a.take_snapshot(), b.take_snapshot());
    }
}
