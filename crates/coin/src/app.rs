//! The SMaRtCoin service: a deterministic UTXO wallet as an SMR
//! [`Application`] — with its coin table hash-sharded into execution lanes
//! for the deterministic parallel EXECUTE stage.
//!
//! The UTXO table lives in `lanes` shards keyed by [`lane_of`] over the
//! coin id. Transaction semantics run through one generic evaluator
//! ([`eval_tx`]) over a [`CoinStore`] view, used by BOTH paths:
//!
//! * **serial** — the whole app is the store (lane count 1, barriers,
//!   recovery replay);
//! * **laned** — each lane of a parallel group evaluates against a
//!   copy-on-write [`LaneView`] (cheap `Arc` clones of every shard + a
//!   private write overlay) and returns an owned [`LaneDelta`]; deltas
//!   merge back in lane order. The planner guarantees lanes of one group
//!   touch disjoint coin ids, so the merged state — and the globally
//!   sorted snapshot encoding — is bit-for-bit independent of lane count
//!   and of real-thread scheduling.

use crate::tx::{coin_id, lane_of, CoinId, CoinTx, Output, RejectReason, TxResult};
use smartchain_codec::{decode_seq, encode_seq, to_bytes, Decode, Encode};
use smartchain_crypto::keys::PublicKey;
use smartchain_smr::app::Application;
use smartchain_smr::exec::{ExecPool, Job, LaneHint};
use smartchain_smr::types::Request;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One unspent output in the table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Coin {
    owner: PublicKey,
    value: u64,
}

/// Mutable coin-state access during execution — implemented by the whole
/// app (serial path) and by one lane's overlay (parallel path), so both
/// run the *same* transaction semantics ([`eval_tx`]) and cannot drift.
trait CoinStore {
    fn get(&self, id: &CoinId) -> Option<Coin>;
    fn insert(&mut self, id: CoinId, coin: Coin);
    fn remove(&mut self, id: &CoinId);
    fn is_minter(&self, key: &PublicKey) -> bool;
}

/// Evaluates one transaction against a store. Pure transaction semantics:
/// counters (executed/rejected) are derived from the result by the caller.
fn eval_tx<S: CoinStore>(store: &mut S, request: &Request) -> TxResult {
    let rejected = |reason| TxResult::Rejected { reason };
    let Some((issuer, _)) = &request.signature else {
        return rejected(RejectReason::Unsigned);
    };
    // Decode a transaction prefix; workloads pad payloads to model the
    // paper's wire sizes, so trailing bytes are permitted.
    let mut payload = request.payload.as_slice();
    let Ok(tx) = CoinTx::decode(&mut payload) else {
        return rejected(RejectReason::Malformed);
    };
    match tx {
        CoinTx::Mint { outputs } => {
            if !store.is_minter(issuer) {
                return rejected(RejectReason::NotAMinter);
            }
            create(store, request, &outputs)
        }
        CoinTx::Spend { inputs, outputs } => {
            // Validate inputs: all present, all owned by the issuer.
            let mut total_in = 0u64;
            for input in &inputs {
                match store.get(input) {
                    None => return rejected(RejectReason::UnknownInput),
                    Some(coin) if coin.owner != *issuer => return rejected(RejectReason::NotOwner),
                    Some(coin) => total_in += coin.value,
                }
            }
            let total_out: u64 = outputs.iter().map(|o| o.value).sum();
            if total_out > total_in {
                return rejected(RejectReason::ValueMismatch);
            }
            for input in &inputs {
                store.remove(input);
            }
            create(store, request, &outputs)
        }
    }
}

fn create<S: CoinStore>(store: &mut S, request: &Request, outputs: &[Output]) -> TxResult {
    let mut coins = Vec::with_capacity(outputs.len());
    for (i, output) in outputs.iter().enumerate() {
        let id = coin_id(request.client, request.seq, i as u32);
        store.insert(
            id,
            Coin {
                owner: output.owner,
                value: output.value,
            },
        );
        coins.push(id);
    }
    TxResult::Created { coins }
}

/// One lane's view of the sharded state during a parallel group: reads
/// fall through a private write overlay to the shared (`Arc`) shards,
/// writes stay in the overlay. `'static` and `Send`, so it can run on an
/// [`ExecPool`] worker.
struct LaneView {
    shards: Vec<Arc<BTreeMap<CoinId, Coin>>>,
    minters: Arc<Vec<PublicKey>>,
    /// Buffered writes: `Some(coin)` = inserted/updated, `None` = removed.
    writes: BTreeMap<CoinId, Option<Coin>>,
}

impl CoinStore for LaneView {
    fn get(&self, id: &CoinId) -> Option<Coin> {
        match self.writes.get(id) {
            Some(slot) => *slot,
            None => self.shards[lane_of(id, self.shards.len())].get(id).copied(),
        }
    }

    fn insert(&mut self, id: CoinId, coin: Coin) {
        self.writes.insert(id, Some(coin));
    }

    fn remove(&mut self, id: &CoinId) {
        self.writes.insert(*id, None);
    }

    fn is_minter(&self, key: &PublicKey) -> bool {
        self.minters.contains(key)
    }
}

/// What one lane's execution produced: per-request results (tagged with
/// their original batch indices), buffered writes, counter increments.
struct LaneDelta {
    results: Vec<(usize, Vec<u8>)>,
    writes: BTreeMap<CoinId, Option<Coin>>,
    executed: u64,
    rejected: u64,
}

/// Runs one lane's requests (in batch order) against a [`LaneView`].
fn run_lane(mut view: LaneView, requests: Vec<(usize, Request)>) -> LaneDelta {
    let mut results = Vec::with_capacity(requests.len());
    let (mut executed, mut rejected) = (0u64, 0u64);
    for (index, request) in &requests {
        let result = eval_tx(&mut view, request);
        match result {
            TxResult::Created { .. } => executed += 1,
            TxResult::Rejected { .. } => rejected += 1,
        }
        results.push((*index, to_bytes(&result)));
    }
    LaneDelta {
        results,
        writes: view.writes,
        executed,
        rejected,
    }
}

/// The SMaRtCoin application state.
#[derive(Debug, Clone)]
pub struct SmartCoinApp {
    /// UTXO table, hash-sharded by [`lane_of`] into one shard per
    /// configured execution lane (length 1 = the seed's single table).
    /// `Arc` makes shard handles cheap to share with lane workers;
    /// mutation goes through `Arc::make_mut` (copy-on-write, in-place
    /// once the workers dropped their handles).
    shards: Vec<Arc<BTreeMap<CoinId, Coin>>>,
    minters: Arc<Vec<PublicKey>>,
    executed: u64,
    rejected: u64,
}

impl SmartCoinApp {
    /// Creates the service with the given authorized minters (from the
    /// genesis block's app data).
    pub fn new(minters: Vec<PublicKey>) -> SmartCoinApp {
        SmartCoinApp {
            shards: vec![Arc::new(BTreeMap::new())],
            minters: Arc::new(minters),
            executed: 0,
            rejected: 0,
        }
    }

    /// Decodes the minter list from genesis app data (see
    /// [`SmartCoinApp::encode_minters`]).
    pub fn from_genesis_data(data: &[u8]) -> SmartCoinApp {
        let minters = Self::decode_minters(data).unwrap_or_default();
        SmartCoinApp::new(minters)
    }

    /// Encodes a minter list for embedding in the genesis block.
    pub fn encode_minters(minters: &[PublicKey]) -> Vec<u8> {
        let wires: Vec<[u8; 33]> = minters.iter().map(PublicKey::to_wire).collect();
        let mut out = Vec::new();
        encode_seq(&wires, &mut out);
        out
    }

    fn decode_minters(mut data: &[u8]) -> Option<Vec<PublicKey>> {
        let wires: Vec<[u8; 33]> = decode_seq(&mut data).ok()?;
        Some(wires.iter().map(PublicKey::from_wire).collect())
    }

    /// Number of execution lanes the state is currently sharded for.
    pub fn lanes(&self) -> usize {
        self.shards.len()
    }

    fn shard_mut(&mut self, id: &CoinId) -> &mut BTreeMap<CoinId, Coin> {
        let lane = lane_of(id, self.shards.len());
        Arc::make_mut(&mut self.shards[lane])
    }

    /// A lane's copy-on-write view for parallel execution.
    fn lane_view(&self) -> LaneView {
        LaneView {
            shards: self.shards.clone(),
            minters: Arc::clone(&self.minters),
            writes: BTreeMap::new(),
        }
    }

    /// Pre-populates the UTXO table with `count` synthetic coins owned by
    /// `owner` (the Fig. 7 experiment boots with 8M UTXOs ≈ 1 GB of state).
    pub fn populate_synthetic(&mut self, owner: PublicKey, count: u64) {
        for i in 0..count {
            let id = coin_id(u64::MAX, i, 0);
            self.shard_mut(&id).insert(id, Coin { owner, value: 1 });
        }
    }

    /// Number of unspent outputs.
    pub fn utxo_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Sum of all coin values owned by `owner`.
    pub fn balance(&self, owner: &PublicKey) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .filter(|c| c.owner == *owner)
            .map(|c| c.value)
            .sum()
    }

    /// Transactions executed (accepted).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Transactions rejected.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total value in circulation (conservation invariant in tests).
    pub fn total_value(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .map(|c| c.value)
            .sum()
    }

    fn apply(&mut self, request: &Request) -> TxResult {
        let result = eval_tx(self, request);
        match result {
            TxResult::Created { .. } => self.executed += 1,
            TxResult::Rejected { .. } => self.rejected += 1,
        }
        result
    }

    /// Globally sorted UTXO entries — a k-way merge over the (individually
    /// sorted) shards, so the snapshot encoding is byte-identical to the
    /// single-table original regardless of the lane count.
    fn sorted_entries(&self) -> Vec<([u8; 32], [u8; 33], u64)> {
        let entry = |id: &CoinId, c: &Coin| (*id, c.owner.to_wire(), c.value);
        if self.shards.len() == 1 {
            return self.shards[0].iter().map(|(id, c)| entry(id, c)).collect();
        }
        let mut iters: Vec<_> = self.shards.iter().map(|s| s.iter().peekable()).collect();
        let mut out = Vec::with_capacity(self.utxo_count());
        loop {
            let mut best: Option<(usize, CoinId)> = None;
            for (i, it) in iters.iter_mut().enumerate() {
                if let Some(&(id, _)) = it.peek() {
                    if best.is_none_or(|(_, b)| *id < b) {
                        best = Some((i, *id));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            let (id, c) = iters[i].next().expect("peeked entry");
            out.push(entry(id, c));
        }
        out
    }
}

impl CoinStore for SmartCoinApp {
    fn get(&self, id: &CoinId) -> Option<Coin> {
        self.shards[lane_of(id, self.shards.len())].get(id).copied()
    }

    fn insert(&mut self, id: CoinId, coin: Coin) {
        self.shard_mut(&id).insert(id, coin);
    }

    fn remove(&mut self, id: &CoinId) {
        self.shard_mut(id).remove(id);
    }

    fn is_minter(&self, key: &PublicKey) -> bool {
        self.minters.contains(key)
    }
}

impl Application for SmartCoinApp {
    fn execute(&mut self, request: &Request) -> Vec<u8> {
        let result = self.apply(request);
        to_bytes(&result)
    }

    /// A transaction's lane is derived from its static footprint
    /// ([`CoinTx::touched_ids`]): single-lane if every touched coin id
    /// hash-shards to one lane, [`LaneHint::Cross`] otherwise. Requests
    /// rejected before touching coin state (unsigned, undecodable) only
    /// bump the rejected counter — which merges commutatively — so they
    /// spread over a deterministic fallback lane.
    fn lane_hint(&self, request: &Request, lanes: usize) -> LaneHint {
        if lanes <= 1 {
            return LaneHint::Single(0);
        }
        let fallback = LaneHint::Single(((request.client ^ request.seq) % lanes as u64) as usize);
        if request.signature.is_none() {
            return fallback;
        }
        let mut payload = request.payload.as_slice();
        let Ok(tx) = CoinTx::decode(&mut payload) else {
            return fallback;
        };
        let mut lane: Option<usize> = None;
        for id in tx.touched_ids(request.client, request.seq) {
            let l = lane_of(&id, lanes);
            match lane {
                None => lane = Some(l),
                Some(prev) if prev != l => return LaneHint::Cross,
                Some(_) => {}
            }
        }
        match lane {
            Some(l) => LaneHint::Single(l),
            None => fallback,
        }
    }

    /// Re-shards the UTXO table for `lanes` lanes (content unchanged).
    fn configure_lanes(&mut self, lanes: usize) {
        let lanes = lanes.max(1);
        if lanes == self.shards.len() {
            return;
        }
        let mut maps: Vec<BTreeMap<CoinId, Coin>> = vec![BTreeMap::new(); lanes];
        for shard in &self.shards {
            for (id, coin) in shard.iter() {
                maps[lane_of(id, lanes)].insert(*id, *coin);
            }
        }
        self.shards = maps.into_iter().map(Arc::new).collect();
    }

    /// Executes one parallel group: each occupied lane evaluates against
    /// its own copy-on-write view — on the pool when one is provided and
    /// more than one lane has work, inline otherwise — then the owned
    /// deltas merge back in lane order. Lanes touch disjoint coin ids (the
    /// planner's guarantee) and counters add commutatively, so the merged
    /// state is independent of worker scheduling.
    fn execute_group(
        &mut self,
        group: &[Vec<(usize, &Request)>],
        pool: Option<&ExecPool>,
    ) -> Vec<(usize, Vec<u8>)> {
        let lanes: Vec<Vec<(usize, Request)>> = group
            .iter()
            .filter(|lane| !lane.is_empty())
            .map(|lane| lane.iter().map(|&(i, r)| (i, r.clone())).collect())
            .collect();
        let deltas: Vec<LaneDelta> = match pool {
            Some(pool) if lanes.len() > 1 => {
                let jobs: Vec<Job<LaneDelta>> = lanes
                    .into_iter()
                    .map(|requests| {
                        let view = self.lane_view();
                        Box::new(move || run_lane(view, requests)) as Job<LaneDelta>
                    })
                    .collect();
                pool.run(jobs)
            }
            _ => lanes
                .into_iter()
                .map(|requests| run_lane(self.lane_view(), requests))
                .collect(),
        };
        let mut out = Vec::new();
        for delta in deltas {
            for (id, slot) in delta.writes {
                match slot {
                    Some(coin) => {
                        self.shard_mut(&id).insert(id, coin);
                    }
                    None => {
                        self.shard_mut(&id).remove(&id);
                    }
                }
            }
            self.executed += delta.executed;
            self.rejected += delta.rejected;
            out.extend(delta.results);
        }
        out
    }

    fn take_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_seq(&self.sorted_entries(), &mut out);
        let minters: Vec<[u8; 33]> = self.minters.iter().map(PublicKey::to_wire).collect();
        encode_seq(&minters, &mut out);
        self.executed.encode(&mut out);
        self.rejected.encode(&mut out);
        out
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) {
        let mut input = snapshot;
        let Ok(entries) = decode_seq::<([u8; 32], [u8; 33], u64)>(&mut input) else {
            return;
        };
        let Ok(minters) = decode_seq::<[u8; 33]>(&mut input) else {
            return;
        };
        let lanes = self.shards.len();
        let mut maps: Vec<BTreeMap<CoinId, Coin>> = vec![BTreeMap::new(); lanes];
        for (id, owner, value) in entries {
            maps[lane_of(&id, lanes)].insert(
                id,
                Coin {
                    owner: PublicKey::from_wire(&owner),
                    value,
                },
            );
        }
        self.shards = maps.into_iter().map(Arc::new).collect();
        self.minters = Arc::new(minters.iter().map(PublicKey::from_wire).collect());
        self.executed = u64::decode(&mut input).unwrap_or(0);
        self.rejected = u64::decode(&mut input).unwrap_or(0);
    }

    fn reset(&mut self) {
        self.shards = (0..self.shards.len())
            .map(|_| Arc::new(BTreeMap::new()))
            .collect();
        self.executed = 0;
        self.rejected = 0;
        // The minter list comes from genesis and survives resets.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_codec::from_bytes;
    use smartchain_crypto::keys::{Backend, SecretKey};

    fn key(seed: u8) -> SecretKey {
        SecretKey::from_seed(Backend::Sim, &[seed; 32])
    }

    fn signed_request(sk: &SecretKey, client: u64, seq: u64, tx: &CoinTx) -> Request {
        let payload = to_bytes(tx);
        let sig = sk.sign(&Request::sign_payload(client, seq, &payload));
        Request {
            client,
            seq,
            payload,
            signature: Some((sk.public_key(), sig)),
        }
    }

    fn setup() -> (SmartCoinApp, SecretKey, SecretKey) {
        let minter = key(1);
        let user = key(2);
        let app = SmartCoinApp::new(vec![minter.public_key()]);
        (app, minter, user)
    }

    #[test]
    fn mint_and_spend_happy_path() {
        let (mut app, minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 100,
            }],
        };
        let req = signed_request(&minter, 10, 0, &mint);
        let result: TxResult = from_bytes(&app.execute(&req)).unwrap();
        let TxResult::Created { coins } = result else {
            panic!("mint rejected: {result:?}")
        };
        assert_eq!(app.balance(&minter.public_key()), 100);
        // Spend 60 to the user, 40 back.
        let spend = CoinTx::Spend {
            inputs: coins,
            outputs: vec![
                Output {
                    owner: user.public_key(),
                    value: 60,
                },
                Output {
                    owner: minter.public_key(),
                    value: 40,
                },
            ],
        };
        let req = signed_request(&minter, 10, 1, &spend);
        let result: TxResult = from_bytes(&app.execute(&req)).unwrap();
        assert!(matches!(result, TxResult::Created { .. }), "{result:?}");
        assert_eq!(app.balance(&user.public_key()), 60);
        assert_eq!(app.balance(&minter.public_key()), 40);
        assert_eq!(app.total_value(), 100, "value conserved");
    }

    #[test]
    fn non_minter_cannot_mint() {
        let (mut app, _minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: user.public_key(),
                value: 5,
            }],
        };
        let req = signed_request(&user, 11, 0, &mint);
        let result: TxResult = from_bytes(&app.execute(&req)).unwrap();
        assert_eq!(
            result,
            TxResult::Rejected {
                reason: RejectReason::NotAMinter
            }
        );
        assert_eq!(app.total_value(), 0);
    }

    #[test]
    fn cannot_spend_others_coins() {
        let (mut app, minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 10,
            }],
        };
        let req = signed_request(&minter, 10, 0, &mint);
        let result: TxResult = from_bytes(&app.execute(&req)).unwrap();
        let TxResult::Created { coins } = result else {
            panic!()
        };
        // The user tries to spend the minter's coin.
        let theft = CoinTx::Spend {
            inputs: coins,
            outputs: vec![Output {
                owner: user.public_key(),
                value: 10,
            }],
        };
        let req = signed_request(&user, 11, 0, &theft);
        let result: TxResult = from_bytes(&app.execute(&req)).unwrap();
        assert_eq!(
            result,
            TxResult::Rejected {
                reason: RejectReason::NotOwner
            }
        );
        assert_eq!(app.balance(&minter.public_key()), 10);
    }

    #[test]
    fn double_spend_rejected() {
        let (mut app, minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 10,
            }],
        };
        let req = signed_request(&minter, 10, 0, &mint);
        let TxResult::Created { coins } = from_bytes(&app.execute(&req)).unwrap() else {
            panic!()
        };
        let spend = CoinTx::Spend {
            inputs: coins.clone(),
            outputs: vec![Output {
                owner: user.public_key(),
                value: 10,
            }],
        };
        let req1 = signed_request(&minter, 10, 1, &spend);
        let r1: TxResult = from_bytes(&app.execute(&req1)).unwrap();
        assert!(matches!(r1, TxResult::Created { .. }));
        // Second spend of the same input.
        let req2 = signed_request(&minter, 10, 2, &spend);
        let r2: TxResult = from_bytes(&app.execute(&req2)).unwrap();
        assert_eq!(
            r2,
            TxResult::Rejected {
                reason: RejectReason::UnknownInput
            }
        );
        assert_eq!(app.total_value(), 10);
    }

    #[test]
    fn cannot_create_value_from_nothing() {
        let (mut app, minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 10,
            }],
        };
        let req = signed_request(&minter, 10, 0, &mint);
        let TxResult::Created { coins } = from_bytes(&app.execute(&req)).unwrap() else {
            panic!()
        };
        let inflate = CoinTx::Spend {
            inputs: coins,
            outputs: vec![Output {
                owner: user.public_key(),
                value: 11,
            }],
        };
        let req = signed_request(&minter, 10, 1, &inflate);
        let r: TxResult = from_bytes(&app.execute(&req)).unwrap();
        assert_eq!(
            r,
            TxResult::Rejected {
                reason: RejectReason::ValueMismatch
            }
        );
    }

    #[test]
    fn unsigned_requests_rejected() {
        let (mut app, minter, _) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 10,
            }],
        };
        let req = Request {
            client: 1,
            seq: 0,
            payload: to_bytes(&mint),
            signature: None,
        };
        let r: TxResult = from_bytes(&app.execute(&req)).unwrap();
        assert_eq!(
            r,
            TxResult::Rejected {
                reason: RejectReason::Unsigned
            }
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let (mut app, minter, user) = setup();
        let mint = CoinTx::Mint {
            outputs: vec![
                Output {
                    owner: minter.public_key(),
                    value: 7,
                },
                Output {
                    owner: user.public_key(),
                    value: 3,
                },
            ],
        };
        let req = signed_request(&minter, 10, 0, &mint);
        app.execute(&req);
        let snap = app.take_snapshot();
        let mut restored = SmartCoinApp::new(Vec::new());
        restored.install_snapshot(&snap);
        assert_eq!(restored.balance(&minter.public_key()), 7);
        assert_eq!(restored.balance(&user.public_key()), 3);
        assert_eq!(restored.total_value(), 10);
        // The minter list travels with the snapshot.
        let mint2 = CoinTx::Mint {
            outputs: vec![Output {
                owner: user.public_key(),
                value: 1,
            }],
        };
        let req2 = signed_request(&minter, 10, 1, &mint2);
        let r: TxResult = from_bytes(&restored.execute(&req2)).unwrap();
        assert!(matches!(r, TxResult::Created { .. }));
    }

    #[test]
    fn genesis_data_roundtrip() {
        let minters = vec![key(1).public_key(), key(2).public_key()];
        let data = SmartCoinApp::encode_minters(&minters);
        let app = SmartCoinApp::from_genesis_data(&data);
        assert!(app.minters.contains(&minters[0]));
        assert!(app.minters.contains(&minters[1]));
    }

    #[test]
    fn synthetic_population() {
        let (mut app, minter, _) = setup();
        app.populate_synthetic(minter.public_key(), 1000);
        assert_eq!(app.utxo_count(), 1000);
        assert_eq!(app.total_value(), 1000);
    }

    #[test]
    fn deterministic_across_replicas() {
        let (mut a, minter, user) = setup();
        let (mut b, _, _) = setup();
        for seq in 0..10u64 {
            let tx = if seq % 2 == 0 {
                CoinTx::Mint {
                    outputs: vec![Output {
                        owner: user.public_key(),
                        value: seq,
                    }],
                }
            } else {
                CoinTx::Spend {
                    inputs: vec![coin_id(10, seq - 1, 0)],
                    outputs: vec![Output {
                        owner: minter.public_key(),
                        value: seq - 1,
                    }],
                }
            };
            let req = signed_request(if seq % 2 == 0 { &minter } else { &user }, 10, seq, &tx);
            assert_eq!(a.execute(&req), b.execute(&req), "seq {seq}");
        }
        assert_eq!(a.take_snapshot(), b.take_snapshot());
    }

    #[test]
    fn resharding_preserves_state_and_snapshot_bytes() {
        let (mut app, minter, _) = setup();
        app.populate_synthetic(minter.public_key(), 100);
        let baseline = app.take_snapshot();
        for lanes in [4usize, 8, 3, 1] {
            app.configure_lanes(lanes);
            assert_eq!(app.lanes(), lanes);
            assert_eq!(app.utxo_count(), 100);
            assert_eq!(
                app.take_snapshot(),
                baseline,
                "{lanes}-lane snapshot must be byte-identical to the single-table encoding"
            );
        }
    }

    #[test]
    fn lane_hint_matches_footprint() {
        let (mut app, minter, _) = setup();
        app.configure_lanes(4);
        // A single-output mint touches exactly one derived id.
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 1,
            }],
        };
        let req = signed_request(&minter, 3, 0, &mint);
        let expected = lane_of(&coin_id(3, 0, 0), 4);
        assert_eq!(app.lane_hint(&req, 4), LaneHint::Single(expected));
        // A spend whose input and output shard differently is cross-lane.
        let (mut input_seq, mut lanes_differ) = (0u64, None);
        while lanes_differ.is_none() {
            let input = coin_id(3, input_seq, 0);
            if lane_of(&input, 4) != lane_of(&coin_id(3, 1000, 0), 4) {
                lanes_differ = Some(input);
            }
            input_seq += 1;
        }
        let spend = CoinTx::Spend {
            inputs: vec![lanes_differ.unwrap()],
            outputs: vec![Output {
                owner: minter.public_key(),
                value: 1,
            }],
        };
        let req = signed_request(&minter, 3, 1000, &spend);
        assert_eq!(app.lane_hint(&req, 4), LaneHint::Cross);
        // One lane: everything is Single(0).
        assert_eq!(app.lane_hint(&req, 1), LaneHint::Single(0));
    }
}
