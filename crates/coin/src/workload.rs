//! The paper's two-phase workload (§VI-A): a MINT phase creating coins,
//! followed by a SPEND phase issuing single-input single-output transfers of
//! the previously minted coins.

use crate::tx::{coin_id, CoinTx, Output};
use smartchain_codec::to_bytes;
use smartchain_crypto::keys::{Backend, PublicKey, SecretKey};
use smartchain_smr::client::RequestFactory;
use smartchain_smr::types::Request;
use std::collections::HashMap;

/// Derives the deterministic wallet key of a logical client.
pub fn client_key(client: u64) -> SecretKey {
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&client.to_le_bytes());
    seed[8] = 0xc0;
    seed[9] = 0x1e;
    SecretKey::from_seed(Backend::Sim, &seed)
}

/// The minter key used by workloads (registered in genesis app data).
pub fn minter_key() -> SecretKey {
    SecretKey::from_seed(Backend::Sim, &[0xA1; 32])
}

/// Request factory implementing the MINT-then-SPEND workload.
///
/// Each logical client's first `mints_per_client` requests are MINTs of one
/// coin each (issued with the shared minter key in the paper's first phase —
/// here each client mints for itself using the minter identity registered at
/// genesis); subsequent requests SPEND those coins one at a time to a peer
/// address, single-input single-output, exactly like the evaluation setup.
pub struct CoinFactory {
    mints_per_client: u64,
    /// Pad MINT payloads to ≈ this size (paper: 180 B requests).
    mint_pad: usize,
    /// Pad SPEND payloads to ≈ this size (paper: 310 B requests).
    spend_pad: usize,
    keys: HashMap<u64, SecretKey>,
}

impl CoinFactory {
    /// Creates the workload; clients mint `mints_per_client` coins then
    /// spend them.
    pub fn new(mints_per_client: u64) -> CoinFactory {
        CoinFactory {
            mints_per_client,
            mint_pad: 180,
            spend_pad: 310,
            keys: HashMap::new(),
        }
    }

    fn key_for(&mut self, client: u64) -> &SecretKey {
        self.keys
            .entry(client)
            .or_insert_with(|| client_key(client))
    }

    /// The recipient address a client spends to (its "peer").
    fn peer_address(client: u64) -> PublicKey {
        client_key(client ^ 1).public_key()
    }
}

impl RequestFactory for CoinFactory {
    fn make(&mut self, client: u64, seq: u64) -> Request {
        // The workload authorizes every client as a minter via genesis data
        // produced by `authorized_minters`.
        let sk = self.key_for(client).clone();
        let (tx, pad) = if seq < self.mints_per_client {
            (
                CoinTx::Mint {
                    outputs: vec![Output {
                        owner: sk.public_key(),
                        value: 1,
                    }],
                },
                self.mint_pad,
            )
        } else {
            // Spend the coin minted in request (seq - mints_per_client).
            let mint_seq = seq - self.mints_per_client;
            let input = coin_id(client, mint_seq, 0);
            (
                CoinTx::Spend {
                    inputs: vec![input],
                    outputs: vec![Output {
                        owner: Self::peer_address(client),
                        value: 1,
                    }],
                },
                self.spend_pad,
            )
        };
        let mut payload = to_bytes(&tx);
        if payload.len() < pad {
            payload.resize(pad, 0);
        }
        let sig = sk.sign(&Request::sign_payload(client, seq, &payload));
        Request {
            client,
            seq,
            payload,
            signature: Some((sk.public_key(), sig)),
        }
    }
}

/// Builds genesis app data authorizing the workload clients as minters.
///
/// `clients` lists the logical client ids that will issue MINTs.
pub fn authorized_minters(clients: impl IntoIterator<Item = u64>) -> Vec<u8> {
    let keys: Vec<PublicKey> = clients
        .into_iter()
        .map(|c| client_key(c).public_key())
        .collect();
    crate::app::SmartCoinApp::encode_minters(&keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::SmartCoinApp;
    use crate::tx::TxResult;
    use smartchain_codec::from_bytes;
    use smartchain_smr::app::Application;

    /// Trailing zero padding must not break transaction decoding.
    #[test]
    fn padded_payloads_still_execute() {
        let mut factory = CoinFactory::new(2);
        let data = authorized_minters([7]);
        let mut app = SmartCoinApp::from_genesis_data(&data);
        // Two mints then two spends.
        for seq in 0..4u64 {
            let req = factory.make(7, seq);
            // The app must tolerate padded payloads: decode prefix.
            let trimmed = Request {
                payload: req.payload.clone(),
                ..req.clone()
            };
            let result: TxResult = from_bytes(&app.execute(&trimmed)).unwrap();
            assert!(
                matches!(result, TxResult::Created { .. }),
                "seq {seq}: {result:?}"
            );
        }
        assert_eq!(app.executed(), 4);
    }

    #[test]
    fn workload_is_deterministic() {
        let mut f1 = CoinFactory::new(1);
        let mut f2 = CoinFactory::new(1);
        assert_eq!(f1.make(3, 0), f2.make(3, 0));
        assert_eq!(f1.make(3, 1), f2.make(3, 1));
    }

    #[test]
    fn sizes_match_paper() {
        let mut f = CoinFactory::new(1);
        let mint = f.make(1, 0);
        let spend = f.make(1, 1);
        assert!(
            mint.wire_size() >= 180 && mint.wire_size() < 350,
            "{}",
            mint.wire_size()
        );
        assert!(
            spend.wire_size() >= 310 && spend.wire_size() < 480,
            "{}",
            spend.wire_size()
        );
    }
}
