//! SMaRtCoin transactions (MINT / SPEND) and their results.

use smartchain_codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};
use smartchain_crypto::keys::PublicKey;
use smartchain_crypto::{sha256, Hash};

/// Identifies one unspent transaction output.
pub type CoinId = Hash;

/// Derives the id of output `index` of the transaction issued by
/// `(client, seq)` — deterministic, so issuers can predict their coin ids.
pub fn coin_id(client: u64, seq: u64, index: u32) -> CoinId {
    let mut buf = Vec::with_capacity(24);
    client.encode(&mut buf);
    seq.encode(&mut buf);
    index.encode(&mut buf);
    sha256::digest_parts(&[b"sc-coin", &buf])
}

/// A coin transfer output: `(recipient, amount)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Output {
    /// Receiving address (a public key).
    pub owner: PublicKey,
    /// Amount.
    pub value: u64,
}

impl Encode for Output {
    fn encode(&self, out: &mut Vec<u8>) {
        self.owner.to_wire().encode(out);
        self.value.encode(out);
    }
}

impl Decode for Output {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Output {
            owner: PublicKey::from_wire(&<[u8; 33]>::decode(input)?),
            value: u64::decode(input)?,
        })
    }
}

/// A SMaRtCoin transaction.
#[derive(Clone, Debug, PartialEq)]
pub enum CoinTx {
    /// Creates coins (issuer must be an authorized minter).
    Mint {
        /// The coins to create.
        outputs: Vec<Output>,
    },
    /// Transfers coins: consumes `inputs` (owned by the issuer), creates
    /// `outputs`.
    Spend {
        /// Input coin ids.
        inputs: Vec<CoinId>,
        /// New outputs.
        outputs: Vec<Output>,
    },
}

impl Encode for CoinTx {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CoinTx::Mint { outputs } => {
                0u8.encode(out);
                encode_seq(outputs, out);
            }
            CoinTx::Spend { inputs, outputs } => {
                1u8.encode(out);
                encode_seq(inputs, out);
                encode_seq(outputs, out);
            }
        }
    }
}

impl Decode for CoinTx {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(CoinTx::Mint {
                outputs: decode_seq(input)?,
            }),
            1 => Ok(CoinTx::Spend {
                inputs: decode_seq(input)?,
                outputs: decode_seq(input)?,
            }),
            d => Err(DecodeError::BadDiscriminant(d as u32)),
        }
    }
}

impl CoinTx {
    /// The coin ids this transaction reads or writes when issued by
    /// `(client, seq)` — its complete static read/write set. Inputs are
    /// explicit in a SPEND; output ids are derived (the same
    /// [`coin_id`] derivation `create` uses), so the footprint is known
    /// *before* execution. This is what makes conflict-free parallel
    /// execution plannable from the ordered batch alone.
    pub fn touched_ids(&self, client: u64, seq: u64) -> Vec<CoinId> {
        let outputs_of =
            |outputs: &[Output]| (0..outputs.len()).map(|i| coin_id(client, seq, i as u32));
        match self {
            CoinTx::Mint { outputs } => outputs_of(outputs).collect(),
            CoinTx::Spend { inputs, outputs } => {
                inputs.iter().copied().chain(outputs_of(outputs)).collect()
            }
        }
    }
}

/// Hash-shards a coin id onto one of `lanes` execution lanes: the first 8
/// bytes of the (SHA-256) id, little-endian, mod the lane count. Ids are
/// uniformly distributed, so so are the lanes.
pub fn lane_of(id: &CoinId, lanes: usize) -> usize {
    if lanes <= 1 {
        return 0;
    }
    let mut prefix = [0u8; 8];
    prefix.copy_from_slice(&id[..8]);
    (u64::from_le_bytes(prefix) % lanes as u64) as usize
}

/// Result of executing a coin transaction (stored in the block body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxResult {
    /// Coins created with these ids.
    Created {
        /// Ids of the new coins, in output order.
        coins: Vec<CoinId>,
    },
    /// The transaction was rejected.
    Rejected {
        /// Machine-readable reason.
        reason: RejectReason,
    },
}

/// Why a coin transaction was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// MINT from a key not on the minter list.
    NotAMinter,
    /// SPEND referencing a missing (or already spent) input.
    UnknownInput,
    /// SPEND of a coin the issuer does not own.
    NotOwner,
    /// Output total exceeds input total.
    ValueMismatch,
    /// Request carried no signature (ownership unprovable).
    Unsigned,
    /// Payload did not decode as a coin transaction.
    Malformed,
}

impl Encode for TxResult {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TxResult::Created { coins } => {
                0u8.encode(out);
                encode_seq(coins, out);
            }
            TxResult::Rejected { reason } => {
                1u8.encode(out);
                (*reason as u8).encode(out);
            }
        }
    }
}

impl Decode for TxResult {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(TxResult::Created {
                coins: decode_seq(input)?,
            }),
            1 => {
                let reason = match u8::decode(input)? {
                    0 => RejectReason::NotAMinter,
                    1 => RejectReason::UnknownInput,
                    2 => RejectReason::NotOwner,
                    3 => RejectReason::ValueMismatch,
                    4 => RejectReason::Unsigned,
                    5 => RejectReason::Malformed,
                    d => return Err(DecodeError::BadDiscriminant(d as u32)),
                };
                Ok(TxResult::Rejected { reason })
            }
            d => Err(DecodeError::BadDiscriminant(d as u32)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_crypto::keys::{Backend, SecretKey};

    fn pk(seed: u8) -> PublicKey {
        SecretKey::from_seed(Backend::Sim, &[seed; 32]).public_key()
    }

    #[test]
    fn tx_codec_roundtrip() {
        let txs = vec![
            CoinTx::Mint {
                outputs: vec![Output {
                    owner: pk(1),
                    value: 100,
                }],
            },
            CoinTx::Spend {
                inputs: vec![coin_id(1, 2, 0), coin_id(1, 3, 1)],
                outputs: vec![
                    Output {
                        owner: pk(2),
                        value: 60,
                    },
                    Output {
                        owner: pk(1),
                        value: 40,
                    },
                ],
            },
        ];
        for tx in txs {
            let bytes = smartchain_codec::to_bytes(&tx);
            assert_eq!(smartchain_codec::from_bytes::<CoinTx>(&bytes).unwrap(), tx);
        }
    }

    #[test]
    fn result_codec_roundtrip() {
        let results = vec![
            TxResult::Created {
                coins: vec![coin_id(1, 0, 0)],
            },
            TxResult::Rejected {
                reason: RejectReason::NotOwner,
            },
        ];
        for r in results {
            let bytes = smartchain_codec::to_bytes(&r);
            assert_eq!(smartchain_codec::from_bytes::<TxResult>(&bytes).unwrap(), r);
        }
    }

    #[test]
    fn touched_ids_cover_inputs_and_derived_outputs() {
        let spend = CoinTx::Spend {
            inputs: vec![coin_id(9, 4, 0)],
            outputs: vec![
                Output {
                    owner: pk(2),
                    value: 1,
                },
                Output {
                    owner: pk(3),
                    value: 2,
                },
            ],
        };
        let ids = spend.touched_ids(7, 11);
        assert_eq!(
            ids,
            vec![coin_id(9, 4, 0), coin_id(7, 11, 0), coin_id(7, 11, 1)]
        );
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: pk(1),
                value: 5,
            }],
        };
        assert_eq!(mint.touched_ids(3, 0), vec![coin_id(3, 0, 0)]);
    }

    #[test]
    fn lane_of_is_stable_and_in_range() {
        for lanes in [1usize, 2, 3, 8] {
            for seq in 0..32u64 {
                let id = coin_id(1, seq, 0);
                let lane = lane_of(&id, lanes);
                assert!(lane < lanes);
                assert_eq!(lane, lane_of(&id, lanes), "pure function of the id");
            }
        }
        // With one lane everything lands on lane 0.
        assert_eq!(lane_of(&coin_id(5, 5, 0), 1), 0);
    }

    #[test]
    fn coin_ids_unique_per_output() {
        assert_ne!(coin_id(1, 1, 0), coin_id(1, 1, 1));
        assert_ne!(coin_id(1, 1, 0), coin_id(1, 2, 0));
        assert_ne!(coin_id(1, 1, 0), coin_id(2, 1, 0));
    }

    #[test]
    fn tx_sizes_match_paper_scale() {
        // Paper: MINT ≈ 180 B, SPEND ≈ 310 B (request side, with signature
        // overhead added by the Request wrapper).
        let mint = CoinTx::Mint {
            outputs: vec![Output {
                owner: pk(1),
                value: 10,
            }],
        };
        let spend = CoinTx::Spend {
            inputs: vec![coin_id(1, 0, 0)],
            outputs: vec![Output {
                owner: pk(2),
                value: 10,
            }],
        };
        let mint_len = smartchain_codec::to_bytes(&mint).len();
        let spend_len = smartchain_codec::to_bytes(&spend).len();
        assert!(mint_len < spend_len);
        assert!((30..200).contains(&mint_len), "{mint_len}");
        assert!((60..320).contains(&spend_len), "{spend_len}");
    }
}
