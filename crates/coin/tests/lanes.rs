//! Conflict-correctness of the laned EXECUTE stage at the application
//! level: for ANY batch, planning over [`SmartCoinApp`]'s static lane
//! hints and executing the plan — with or without a real worker pool —
//! must produce exactly the serial results, state and counters.

use smartchain_codec::to_bytes;
use smartchain_coin::tx::{coin_id, CoinTx, Output};
use smartchain_coin::workload::client_key;
use smartchain_coin::SmartCoinApp;
use smartchain_smr::app::Application;
use smartchain_smr::exec::{plan_batch, run_plan, ExecPool};
use smartchain_smr::types::Request;

fn signed(client: u64, seq: u64, tx: &CoinTx) -> Request {
    let sk = client_key(client);
    let payload = to_bytes(tx);
    let sig = sk.sign(&Request::sign_payload(client, seq, &payload));
    Request {
        client,
        seq,
        payload,
        signature: Some((sk.public_key(), sig)),
    }
}

fn app_for(clients: impl IntoIterator<Item = u64>) -> SmartCoinApp {
    let keys: Vec<_> = clients
        .into_iter()
        .map(|c| client_key(c).public_key())
        .collect();
    SmartCoinApp::new(keys)
}

/// Runs `batch` serially on one app and laned (at `lanes`, optionally on a
/// real pool) on an identical app; asserts results, snapshot and counters
/// agree bit for bit.
fn assert_laned_matches_serial(
    make_app: impl Fn() -> SmartCoinApp,
    batch: &[Request],
    lanes: usize,
    pool: Option<&ExecPool>,
) {
    let mut serial = make_app();
    let serial_results: Vec<Vec<u8>> = batch.iter().map(|r| serial.execute(r)).collect();

    let mut laned = make_app();
    laned.configure_lanes(lanes);
    let hints: Vec<_> = batch.iter().map(|r| laned.lane_hint(r, lanes)).collect();
    let plan = plan_batch(&hints, lanes);
    let refs: Vec<&Request> = batch.iter().collect();
    let laned_results = run_plan(&mut laned, &refs, &plan, pool);

    assert_eq!(laned_results, serial_results, "lanes={lanes}");
    assert_eq!(laned.executed(), serial.executed(), "lanes={lanes}");
    assert_eq!(laned.rejected(), serial.rejected(), "lanes={lanes}");
    assert_eq!(
        laned.take_snapshot(),
        serial.take_snapshot(),
        "lanes={lanes}: snapshots must be byte-identical"
    );
}

fn check_all_modes(make_app: impl Fn() -> SmartCoinApp, batch: &[Request]) {
    for lanes in [2usize, 4, 8] {
        assert_laned_matches_serial(&make_app, batch, lanes, None);
        let pool = ExecPool::new(lanes);
        assert_laned_matches_serial(&make_app, batch, lanes, Some(&pool));
    }
}

/// Transfer chains inside one batch: A mints, A spends to B, B re-spends
/// the received coin. Each hop depends on the previous one's output, so
/// any plan that breaks dependency order (or merges lanes wrongly) diverges
/// from serial immediately.
#[test]
fn transfer_chains_match_serial() {
    let clients = [100u64, 101, 102, 103];
    let make_app = || app_for(clients);
    let mut batch = Vec::new();
    for &a in &clients {
        let b = a ^ 1;
        batch.push(signed(
            a,
            0,
            &CoinTx::Mint {
                outputs: vec![Output {
                    owner: client_key(a).public_key(),
                    value: 10,
                }],
            },
        ));
        // A -> B (spends the coin minted above).
        batch.push(signed(
            a,
            1,
            &CoinTx::Spend {
                inputs: vec![coin_id(a, 0, 0)],
                outputs: vec![Output {
                    owner: client_key(b).public_key(),
                    value: 10,
                }],
            },
        ));
        // B -> A (re-spends the coin it just received).
        batch.push(signed(
            b,
            0,
            &CoinTx::Spend {
                inputs: vec![coin_id(a, 1, 0)],
                outputs: vec![Output {
                    owner: client_key(a).public_key(),
                    value: 10,
                }],
            },
        ));
    }
    check_all_modes(make_app, &batch);
}

/// Multi-output spends whose inputs and outputs hash to different lanes are
/// planned as cross-lane barriers; serial equivalence must survive a batch
/// that is mostly barriers.
#[test]
fn cross_shard_transfers_match_serial() {
    let clients: Vec<u64> = (200..208).collect();
    let make_app = || app_for(clients.iter().copied());
    let mut batch = Vec::new();
    for &c in &clients {
        batch.push(signed(
            c,
            0,
            &CoinTx::Mint {
                outputs: vec![Output {
                    owner: client_key(c).public_key(),
                    value: 6,
                }],
            },
        ));
        // Fan out to three recipients — four touched ids, almost surely on
        // several lanes.
        batch.push(signed(
            c,
            1,
            &CoinTx::Spend {
                inputs: vec![coin_id(c, 0, 0)],
                outputs: (0..3)
                    .map(|i| Output {
                        owner: client_key(clients[(c as usize + i) % clients.len()]).public_key(),
                        value: 2,
                    })
                    .collect(),
            },
        ));
    }
    check_all_modes(make_app, &batch);
}

/// A hot spot: every transaction in the batch spends the SAME coin. Exactly
/// one wins (the first in batch order), the rest bounce with UnknownInput —
/// identically to serial, with no deadlock or livelock.
#[test]
fn same_coin_hot_spot_degrades_to_serial() {
    let owner = 300u64;
    let make_app = || app_for([owner]);
    let mut batch = vec![signed(
        owner,
        0,
        &CoinTx::Mint {
            outputs: vec![Output {
                owner: client_key(owner).public_key(),
                value: 1,
            }],
        },
    )];
    for seq in 1..12u64 {
        batch.push(signed(
            owner,
            seq,
            &CoinTx::Spend {
                inputs: vec![coin_id(owner, 0, 0)],
                outputs: vec![Output {
                    owner: client_key(owner ^ 1).public_key(),
                    value: 1,
                }],
            },
        ));
    }
    check_all_modes(make_app, &batch);
    // Sanity: exactly one spend won.
    let mut app = make_app();
    app.configure_lanes(4);
    let hints: Vec<_> = batch.iter().map(|r| app.lane_hint(r, 4)).collect();
    let plan = plan_batch(&hints, 4);
    let refs: Vec<&Request> = batch.iter().collect();
    run_plan(&mut app, &refs, &plan, None);
    assert_eq!(app.executed(), 2, "mint + first spend");
    assert_eq!(app.rejected(), 10, "every later spend of the same coin");
}

/// Seeded pseudo-random batches (valid spends, double spends, thefts,
/// unsigned junk) across several lane counts, with and without a pool.
#[test]
fn fuzzed_batches_match_serial() {
    let clients: Vec<u64> = (400..410).collect();
    let make_app = || app_for(clients.iter().copied());
    let mut rng: u64 = 0x5eed_1a9e_5eed_1a9e;
    let mut next = move || {
        // xorshift64* — deterministic, dependency-free.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for round in 0..6 {
        let mut batch = Vec::new();
        let mut seqs = vec![0u64; clients.len()];
        // Mint phase: everyone gets a few coins.
        for (ci, &c) in clients.iter().enumerate() {
            for _ in 0..1 + next() % 3 {
                batch.push(signed(
                    c,
                    seqs[ci],
                    &CoinTx::Mint {
                        outputs: vec![Output {
                            owner: client_key(c).public_key(),
                            value: 1 + next() % 5,
                        }],
                    },
                ));
                seqs[ci] += 1;
            }
        }
        // Chaos phase: spends of random (often nonexistent or foreign) coins.
        for _ in 0..20 {
            let ci = (next() % clients.len() as u64) as usize;
            let c = clients[ci];
            let target_ci = (next() % clients.len() as u64) as usize;
            let input = coin_id(clients[target_ci], next() % 4, 0);
            let tx = CoinTx::Spend {
                inputs: vec![input],
                outputs: vec![Output {
                    owner: client_key(clients[(ci + 1) % clients.len()]).public_key(),
                    value: 1,
                }],
            };
            if next() % 5 == 0 {
                // Unsigned junk rides the fallback lane.
                batch.push(Request {
                    client: c,
                    seq: seqs[ci],
                    payload: to_bytes(&tx),
                    signature: None,
                });
            } else {
                batch.push(signed(c, seqs[ci], &tx));
            }
            seqs[ci] += 1;
        }
        for lanes in [2usize, 5, 8] {
            assert_laned_matches_serial(make_app, &batch, lanes, None);
            let pool = ExecPool::new(lanes);
            assert_laned_matches_serial(make_app, &batch, lanes, Some(&pool));
        }
        let _ = round;
    }
}
