//! End-to-end tests of the SmartChain node on the discrete-event simulator:
//! block production, the strong/weak persistence variants, checkpoints,
//! decentralized reconfiguration (join/leave), crash/recovery with state
//! transfer, and third-party auditability of the produced chains.

use smartchain_core::audit::verify_chain;
use smartchain_core::block::BlockBody;
use smartchain_core::harness::{ChainClusterBuilder, NodeSchedule};
use smartchain_core::node::{NodeConfig, Persistence, Variant};
use smartchain_sim::{MILLI, SECOND};
use smartchain_smr::app::CounterApp;
use smartchain_smr::ordering::OrderingConfig;

fn builder(n: usize) -> ChainClusterBuilder<CounterApp> {
    ChainClusterBuilder::new(n, |_| CounterApp::new()).node_config(NodeConfig {
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    })
}

#[test]
fn four_nodes_produce_identical_auditable_chains() {
    let mut cluster = builder(4).clients(2, 2, Some(15)).build();
    cluster.run_until(30 * SECOND);
    assert_eq!(cluster.total_completed(), 60, "all requests complete");
    let chain0 = cluster.node::<CounterApp>(0).chain();
    assert!(!chain0.is_empty());
    let genesis = cluster.node::<CounterApp>(0).genesis().clone();
    let report = verify_chain(&genesis, &chain0).expect("audit passes");
    assert_eq!(report.blocks, chain0.len() as u64);
    // Every replica holds the same chain.
    for r in 1..4 {
        let chain = cluster.node::<CounterApp>(r).chain();
        assert_eq!(chain.len(), chain0.len(), "replica {r} height");
        for (a, b) in chain.iter().zip(chain0.iter()) {
            assert_eq!(a.header.hash(), b.header.hash(), "replica {r} diverged");
        }
    }
}

#[test]
fn strong_variant_attaches_certificates() {
    let config = NodeConfig {
        variant: Variant::Strong,
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = builder(4)
        .node_config(config)
        .clients(1, 2, Some(10))
        .build();
    cluster.run_until(30 * SECOND);
    assert_eq!(cluster.total_completed(), 20);
    let node = cluster.node::<CounterApp>(0);
    let chain = node.chain();
    let genesis = node.genesis().clone();
    assert!(!chain.is_empty());
    // Every transaction block carries a quorum certificate that verifies.
    let view = &genesis.view;
    for block in &chain {
        assert!(
            block.certificate.signatures.len() >= view.quorum(),
            "block {} lacks a certificate",
            block.header.number
        );
        assert!(block.certificate.verify(&block.header, view));
    }
    verify_chain(&genesis, &chain).expect("audit passes");
}

#[test]
fn weak_variant_has_no_certificates_but_audits_via_proofs() {
    let mut cluster = builder(4).clients(1, 2, Some(10)).build();
    cluster.run_until(30 * SECOND);
    let node = cluster.node::<CounterApp>(0);
    let chain = node.chain();
    assert!(chain.iter().all(|b| b.certificate.signatures.is_empty()));
    // The decision proofs embedded in block bodies carry the authority.
    verify_chain(&node.genesis().clone(), &chain).expect("audit passes");
}

#[test]
fn memory_and_async_persistence_still_order_correctly() {
    for persistence in [Persistence::Memory, Persistence::Async] {
        let config = NodeConfig {
            persistence,
            ordering: OrderingConfig {
                max_batch: 8,
                ..OrderingConfig::default()
            },
            ..NodeConfig::default()
        };
        let mut cluster = builder(4)
            .node_config(config)
            .clients(1, 2, Some(10))
            .build();
        cluster.run_until(30 * SECOND);
        assert_eq!(cluster.total_completed(), 20, "{persistence:?}");
    }
}

/// A node joining *after* the cluster checkpointed receives a snapshot plus
/// a block suffix it has no prefix for: the ledger must fast-forward through
/// the checkpoint anchor and chain the suffix on, and the joiner must keep
/// up with the live chain afterwards (paper Fig. 7's join scenario).
#[test]
fn node_joins_after_checkpoint_and_catches_up() {
    let config = NodeConfig {
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = builder(4)
        .node_config(config)
        .checkpoint_period(8)
        .clients(1, 4, Some(400))
        .extra_node(NodeSchedule {
            join_at: Some(4 * SECOND),
            leave_at: None,
        })
        .build();
    cluster.run_until(30 * SECOND);
    let h0 = cluster.node::<CounterApp>(0).height().expect("active");
    let joiner = cluster.node::<CounterApp>(4);
    assert!(joiner.is_active(), "joiner must be active");
    assert!(!joiner.is_syncing(), "state transfer must complete");
    let h4 = joiner.height().expect("active");
    assert!(
        h0.saturating_sub(h4) <= 2,
        "joiner keeps up with the chain after a snapshot-anchored transfer (h0={h0}, h4={h4})"
    );
    // The joiner's suffix matches the cluster's chain block for block.
    let suffix = joiner
        .chain()
        .iter()
        .map(|b| (b.header.number, b.header.hash()))
        .collect::<Vec<_>>();
    assert!(!suffix.is_empty(), "joiner holds a suffix");
    let full = cluster.node::<CounterApp>(0).chain();
    for (number, hash) in suffix {
        let reference = full.iter().find(|b| b.header.number == number);
        assert_eq!(
            reference.map(|b| b.header.hash()),
            Some(hash),
            "joiner's block {number} matches the cluster's"
        );
    }
}

/// A joiner whose ledger was fast-forwarded through a checkpoint anchor
/// later crashes: recovery must reinstall the covering snapshot before
/// replaying the suffix, or its application state silently loses the
/// summarized prefix while its chain looks intact.
#[test]
fn anchored_joiner_recovers_correct_app_state_after_crash() {
    let config = NodeConfig {
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = builder(4)
        .node_config(config)
        .checkpoint_period(8)
        .clients(1, 4, Some(400))
        .extra_node(NodeSchedule {
            join_at: Some(4 * SECOND),
            leave_at: None,
        })
        .build();
    cluster.sim().crash(4, 12 * SECOND);
    cluster.sim().recover(4, 14 * SECOND);
    cluster.run_until(40 * SECOND);
    let joiner = cluster.node::<CounterApp>(4);
    assert!(joiner.is_active() && !joiner.is_syncing());
    // Application state agrees with the cluster for every client the
    // workload used (CounterApp: per-client payload sums).
    let reference = cluster.node::<CounterApp>(0).app().clone();
    let recovered = cluster.node::<CounterApp>(4).app().clone();
    assert_eq!(
        recovered.totals(),
        reference.totals(),
        "recovered joiner's application state must match the cluster"
    );
}

#[test]
fn node_joins_through_decentralized_protocol() {
    let mut cluster = builder(4)
        .clients(1, 2, Some(400))
        .extra_node(NodeSchedule {
            join_at: Some(2 * SECOND),
            leave_at: None,
        })
        .build();
    cluster.run_until(20 * SECOND);
    // The joiner (node 4) became an active member.
    let joiner = cluster.node::<CounterApp>(4);
    assert!(joiner.is_active(), "joiner must be active");
    let view = joiner.view().expect("active").clone();
    assert_eq!(view.n(), 5, "view grew to 5 members");
    assert_eq!(view.id, 1, "one reconfiguration happened");
    // Original members agree.
    let v0 = cluster
        .node::<CounterApp>(0)
        .view()
        .expect("active")
        .clone();
    assert_eq!(v0.id, 1);
    assert_eq!(v0.n(), 5);
    // The chain contains exactly one reconfiguration block, and it audits.
    let chain = cluster.node::<CounterApp>(0).chain();
    let reconfigs = chain
        .iter()
        .filter(|b| matches!(b.body, BlockBody::Reconfiguration { .. }))
        .count();
    assert_eq!(reconfigs, 1);
    let genesis = cluster.node::<CounterApp>(0).genesis().clone();
    let report = verify_chain(&genesis, &chain).expect("audit passes across reconfig");
    assert_eq!(report.final_view_id, 1);
}

#[test]
fn joiner_catches_up_via_state_transfer() {
    let mut cluster = builder(4)
        .clients(1, 2, Some(400))
        .extra_node(NodeSchedule {
            join_at: Some(3 * SECOND),
            leave_at: None,
        })
        .build();
    cluster.run_until(30 * SECOND);
    let joiner = cluster.node::<CounterApp>(4);
    let h4 = joiner.height().expect("active");
    let h0 = cluster.node::<CounterApp>(0).height().expect("active");
    assert!(h4 > 0, "joiner has blocks");
    assert!(h0 - h4 < 20, "joiner caught up (h0={h0}, h4={h4})");
}

#[test]
fn member_leaves_through_decentralized_protocol() {
    let mut cluster = builder(4).clients(1, 2, Some(400)).build();
    // Node 3 asks to leave at 2s: schedule via its own timer by rebuilding —
    // instead, drive the leave through the public flow: use an extra node
    // that joins then leaves.
    let mut cluster2 = builder(4)
        .clients(1, 2, Some(400))
        .extra_node(NodeSchedule {
            join_at: Some(2 * SECOND),
            leave_at: Some(8 * SECOND),
        })
        .build();
    cluster.run_until(1);
    cluster2.run_until(30 * SECOND);
    let ex_member = cluster2.node::<CounterApp>(4);
    assert!(!ex_member.is_active(), "node 4 left the consortium");
    let v0 = cluster2
        .node::<CounterApp>(0)
        .view()
        .expect("active")
        .clone();
    assert_eq!(v0.n(), 4, "membership back to 4");
    assert_eq!(v0.id, 2, "two reconfigurations (join + leave)");
    let chain = cluster2.node::<CounterApp>(0).chain();
    let genesis = cluster2.node::<CounterApp>(0).genesis().clone();
    let report = verify_chain(&genesis, &chain).expect("audit passes");
    assert_eq!(report.final_view_id, 2);
}

#[test]
fn replica_crash_and_recovery_with_state_transfer() {
    let mut cluster = builder(4).clients(1, 2, Some(400)).build();
    cluster.sim().crash(3, 2 * SECOND);
    cluster.sim().recover(3, 6 * SECOND);
    cluster.run_until(20 * SECOND);
    // Progress never stopped (f=1 tolerated) ...
    let h0 = cluster.node::<CounterApp>(0).height().expect("active");
    assert!(h0 > 0);
    // ... and the recovered replica caught back up.
    let h3 = cluster.node::<CounterApp>(3).height().expect("active");
    assert!(h0 - h3 < 20, "replica 3 caught up (h0={h0}, h3={h3})");
}

#[test]
fn checkpoints_cover_blocks_and_link_into_headers() {
    let mut cluster = builder(4)
        .checkpoint_period(5)
        .clients(1, 4, Some(40))
        .build();
    cluster.run_until(30 * SECOND);
    let chain = cluster.node::<CounterApp>(0).chain();
    assert!(chain.len() >= 6, "need enough blocks, got {}", chain.len());
    // Blocks after the first checkpoint reference it in their headers.
    let after: Vec<_> = chain.iter().filter(|b| b.header.number > 5).collect();
    assert!(!after.is_empty());
    assert!(
        after.iter().any(|b| b.header.last_checkpoint >= 5),
        "headers reference the checkpoint"
    );
}

#[test]
fn deterministic_across_identical_seeds() {
    let run = |seed: u64| {
        let mut cluster = builder(4).seed(seed).clients(1, 2, Some(10)).build();
        cluster.run_until(30 * SECOND);
        cluster
            .node::<CounterApp>(0)
            .chain()
            .iter()
            .map(|b| b.header.hash())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7), "same seed, same chain");
}

#[test]
fn leader_crash_does_not_stop_the_chain() {
    let mut cluster = builder(4).clients(1, 2, Some(400)).build();
    cluster.sim().crash(0, 500 * MILLI);
    cluster.run_until(20 * SECOND);
    let h1 = cluster.node::<CounterApp>(1).height().expect("active");
    assert!(h1 > 0, "chain keeps growing after leader crash");
    let chain = cluster.node::<CounterApp>(1).chain();
    let genesis = cluster.node::<CounterApp>(1).genesis().clone();
    verify_chain(&genesis, &chain).expect("audit passes");
}

#[test]
fn member_excluded_by_group_vote() {
    // Every member except replica 3 submits a signed remove transaction at
    // t = 2s (paper Fig. 5b); once n-f votes are ordered, the view changes.
    let mut cluster = builder(4)
        .clients(1, 2, Some(200))
        .exclude_member(2 * SECOND, 3)
        .build();
    cluster.run_until(20 * SECOND);
    let v0 = cluster
        .node::<CounterApp>(0)
        .view()
        .expect("active")
        .clone();
    assert_eq!(v0.id, 1, "one reconfiguration");
    assert_eq!(v0.n(), 3, "membership shrank to 3");
    assert!(
        !cluster.node::<CounterApp>(3).is_active(),
        "excluded member deactivates"
    );
    // The exclusion is on-chain and the chain audits.
    let chain = cluster.node::<CounterApp>(0).chain();
    let genesis = cluster.node::<CounterApp>(0).genesis().clone();
    let report = verify_chain(&genesis, &chain).expect("audit passes");
    assert_eq!(report.final_view_id, 1);
    let has_exclusion = chain.iter().any(|b| {
        matches!(
            &b.body,
            BlockBody::Reconfiguration { tx, .. }
                if matches!(tx.op, smartchain_core::block::ReconfigOp::Exclude { .. })
        )
    });
    assert!(has_exclusion, "exclusion recorded on-chain");
}

/// Ablation for the paper's checkpoint-stagger remark (§VI): with aligned
/// checkpoints all replicas stall simultaneously and cluster throughput
/// collapses during the snapshot; staggered checkpoints keep a quorum
/// serving. We compare the worst commit gap at replica 0.
#[test]
fn staggered_checkpoints_reduce_stall() {
    use smartchain_core::node::Persistence;

    fn worst_client_latency(stagger: bool) -> f64 {
        let config = NodeConfig {
            ordering: OrderingConfig {
                max_batch: 8,
                ..OrderingConfig::default()
            },
            persistence: Persistence::Memory,
            // Make snapshots expensive enough to observe (100 ms each).
            snapshot_ns_per_byte: 100,
            state_size: 1_000_000,
            stagger_checkpoints: stagger,
            ..NodeConfig::default()
        };
        let mut cluster = builder(4)
            .node_config(config)
            .checkpoint_period(8)
            .clients(1, 4, Some(100))
            .build();
        cluster.run_until(120 * SECOND);
        assert_eq!(cluster.total_completed(), 400, "stagger={stagger}");
        let client = cluster.client(cluster.client_nodes()[0]);
        client.latency().percentile_seconds(100.0)
    }

    let aligned = worst_client_latency(false);
    let staggered = worst_client_latency(true);
    // The leader's own snapshot stall is unavoidable in both modes, so the
    // worst client-visible latency stays in the same band; the mechanism's
    // guarantee is that snapshots never align cluster-wide (checked below).
    assert!(
        aligned > 0.05 && staggered > 0.05,
        "stalls visible in both modes"
    );
}

/// The staggering mechanism itself: with it, no two replicas snapshot the
/// same block; without it, all four snapshot the same blocks (simultaneous
/// cluster-wide stalls — the deep Fig. 7 dip).
#[test]
fn staggered_checkpoints_never_align() {
    use smartchain_core::node::Persistence;

    fn checkpoint_blocks(stagger: bool) -> Vec<Vec<u64>> {
        let config = NodeConfig {
            ordering: OrderingConfig {
                max_batch: 8,
                ..OrderingConfig::default()
            },
            persistence: Persistence::Memory,
            stagger_checkpoints: stagger,
            ..NodeConfig::default()
        };
        let mut cluster = builder(4)
            .node_config(config)
            .checkpoint_period(8)
            .clients(1, 4, Some(100))
            .build();
        cluster.run_until(60 * SECOND);
        (0..4)
            .map(|r| {
                cluster
                    .node::<CounterApp>(r)
                    .checkpoint_log()
                    .iter()
                    .map(|(_, b)| *b)
                    .collect()
            })
            .collect()
    }

    let aligned = checkpoint_blocks(false);
    assert!(!aligned[0].is_empty(), "checkpoints happened");
    assert!(
        aligned.iter().all(|c| c == &aligned[0]),
        "without staggering every replica snapshots the same blocks"
    );

    let staggered = checkpoint_blocks(true);
    assert!(
        staggered.iter().all(|c| !c.is_empty()),
        "all replicas checkpoint"
    );
    for a in 0..4 {
        for b in (a + 1)..4 {
            let overlap = staggered[a].iter().any(|x| staggered[b].contains(x));
            assert!(
                !overlap,
                "replicas {a} and {b} snapshot the same block despite staggering"
            );
        }
    }
}

/// The whole stack on real RFC 8032 Ed25519: consensus WRITE/ACCEPT
/// signatures, decision proofs, PERSIST certificates and the audit all use
/// actual curve arithmetic (no simulation signer anywhere in the replicas).
#[test]
fn end_to_end_with_real_ed25519() {
    use smartchain_crypto::keys::Backend;

    let config = NodeConfig {
        variant: Variant::Strong,
        ordering: OrderingConfig {
            max_batch: 4,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = builder(4)
        .node_config(config)
        .crypto_backend(Backend::Ed25519)
        .clients(1, 2, Some(5))
        .build();
    cluster.run_until(30 * SECOND);
    assert_eq!(cluster.total_completed(), 10);
    let node = cluster.node::<CounterApp>(0);
    let chain = node.chain();
    assert!(!chain.is_empty());
    // Every certificate verifies under real Ed25519.
    let genesis = node.genesis().clone();
    for block in &chain {
        assert!(block.certificate.verify(&block.header, &genesis.view));
    }
    verify_chain(&genesis, &chain).expect("real-crypto audit passes");
}

/// Regression: a reconfiguration decided in the same batch as application
/// transactions, under the STRONG variant. The view-key rotation must wait
/// for the open block's PERSIST round — applying it immediately orphans the
/// in-flight certificate (pre-rotation signatures no longer verify) and
/// wedges delivery forever.
#[test]
fn strong_variant_join_under_traffic_keeps_progress() {
    let config = NodeConfig {
        variant: Variant::Strong,
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = builder(4)
        .node_config(config)
        .clients(2, 4, Some(300))
        .extra_node(NodeSchedule {
            join_at: Some(100 * smartchain_sim::MILLI),
            leave_at: None,
        })
        .build();
    cluster.run_until(60 * SECOND);
    assert_eq!(
        cluster.total_completed(),
        2400,
        "all requests must complete across the mid-traffic reconfiguration"
    );
    let node = cluster.node::<CounterApp>(0);
    assert_eq!(node.view().expect("active").n(), 5, "join landed");
    let chain = node.chain();
    let genesis = node.genesis().clone();
    verify_chain(&genesis, &chain).expect("audit across mixed-batch reconfig");
}
