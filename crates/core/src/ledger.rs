//! The replica-local ledger: an append-only chain of blocks over a
//! [`RecordLog`], with the in-memory tail cache used for state transfer
//! (Algorithm 1's `resetCached`/`Txs[]`/`Res[]` arrays).

use crate::block::{Block, BlockBody, Certificate, Genesis};
use smartchain_codec::{from_bytes, to_bytes};
use smartchain_crypto::Hash;
use smartchain_storage::RecordLog;
use std::io;

/// Tag framing the record that anchors a checkpoint-based fast-forward
/// (see [`Ledger::install_checkpoint_anchor`]).
const ANCHOR_TAG: &[u8; 8] = b"SCANCHOR";

fn anchor_record(covered: u64, anchor: &Hash) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + 32);
    out.extend_from_slice(ANCHOR_TAG);
    out.extend_from_slice(&covered.to_le_bytes());
    out.extend_from_slice(anchor);
    out
}

fn parse_anchor(record: &[u8]) -> Option<(u64, Hash)> {
    if record.len() != 48 || &record[..8] != ANCHOR_TAG {
        return None;
    }
    let covered = u64::from_le_bytes(record[8..16].try_into().ok()?);
    let mut anchor = Hash::default();
    anchor.copy_from_slice(&record[16..48]);
    Some((covered, anchor))
}

/// A chain of blocks rooted in a genesis configuration.
///
/// Record 0 of the underlying log is the encoded genesis; record `i` is
/// block `i` (or, after a checkpoint-based fast-forward, an anchor marker /
/// padding for the summarized prefix). The ledger keeps lightweight tail
/// state (`last hash`, counters) in memory and can be fully rebuilt from
/// the log on recovery.
pub struct Ledger<L: RecordLog> {
    log: L,
    genesis: Genesis,
    /// Number of the next block to append (= current length incl. genesis).
    next_number: u64,
    last_block_hash: Hash,
    last_reconfig: u64,
    last_checkpoint: u64,
    /// Certificate amendments applied after append (strong variant); most
    /// recent entry per block number wins.
    amendments: Vec<(u64, Block)>,
}

impl<L: RecordLog> std::fmt::Debug for Ledger<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ledger")
            .field("next_number", &self.next_number)
            .field("last_reconfig", &self.last_reconfig)
            .field("last_checkpoint", &self.last_checkpoint)
            .finish_non_exhaustive()
    }
}

impl<L: RecordLog> Ledger<L> {
    /// Creates a fresh ledger, writing the genesis record (Algorithm 1,
    /// line 10), or recovers an existing one from the log.
    ///
    /// # Errors
    ///
    /// Fails on storage errors or if the log contains a different genesis.
    pub fn open(log: L, genesis: Genesis) -> io::Result<Ledger<L>> {
        // A compacted log (checkpoint-driven truncation) has dropped the
        // genesis record; the snapshot covering the truncated prefix is the
        // authority then, so the genesis check is skipped.
        if !log.is_empty() && log.first_index() == 0 {
            // Recovering an existing log: it must belong to this genesis.
            let stored: Genesis = log
                .read(0)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing genesis"))
                .and_then(|bytes| {
                    from_bytes(&bytes)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                })?;
            if stored != genesis {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "genesis mismatch",
                ));
            }
        }
        let mut ledger = Ledger {
            log,
            genesis,
            next_number: 1,
            last_block_hash: Hash::default(),
            last_reconfig: 0,
            last_checkpoint: 0,
            amendments: Vec::new(),
        };
        // One recovery scan for both fresh opens and crash reloads.
        ledger.reload()?;
        Ok(ledger)
    }

    /// The genesis configuration.
    pub fn genesis(&self) -> &Genesis {
        &self.genesis
    }

    /// Number the next block will get.
    pub fn next_number(&self) -> u64 {
        self.next_number
    }

    /// Height (number of the last appended block; 0 = only genesis).
    pub fn height(&self) -> u64 {
        self.next_number - 1
    }

    /// Hash chained into the next block.
    pub fn last_block_hash(&self) -> Hash {
        self.last_block_hash
    }

    /// Number of the last reconfiguration block (0 = none).
    pub fn last_reconfig(&self) -> u64 {
        self.last_reconfig
    }

    /// Number of the last block covered by a checkpoint (0 = none).
    pub fn last_checkpoint(&self) -> u64 {
        self.last_checkpoint
    }

    /// Records that a checkpoint now covers everything up to `block`.
    pub fn set_last_checkpoint(&mut self, block: u64) {
        self.last_checkpoint = self.last_checkpoint.max(block);
    }

    /// Builds the next block from a body (hashes, linkage, counters).
    /// `state_root` is the Merkle root of the application state after this
    /// block executes; the header's `hash_results` binds it.
    pub fn build_next(&self, body: BlockBody, state_root: Hash) -> Block {
        Block::build(
            self.next_number,
            self.last_reconfig,
            self.last_checkpoint,
            self.last_block_hash,
            body,
            state_root,
        )
    }

    /// Appends a built block.
    ///
    /// # Errors
    ///
    /// Rejects blocks whose number or parent hash do not extend the chain,
    /// and propagates storage errors.
    pub fn append(&mut self, block: &Block) -> io::Result<()> {
        if block.header.number != self.next_number {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "expected block {}, got {}",
                    self.next_number, block.header.number
                ),
            ));
        }
        if block.header.hash_last_block != self.last_block_hash {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "parent hash mismatch",
            ));
        }
        if !block.commitments_valid() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "commitment hash mismatch",
            ));
        }
        self.log.append(&to_bytes(block))?;
        self.last_block_hash = block.header.hash();
        if matches!(block.body, BlockBody::Reconfiguration { .. }) {
            self.last_reconfig = block.header.number;
        }
        self.next_number += 1;
        Ok(())
    }

    /// Forces buffered blocks to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn sync(&mut self) -> io::Result<()> {
        self.log.sync()
    }

    /// Attaches a certificate to the last appended block (strong variant:
    /// the certificate is written after the PERSIST phase completes,
    /// Algorithm 1 line 34). The block is rewritten in place in the cache;
    /// on disk the certificate is appended as an amendment record in real
    /// deployments — here we re-append for simplicity of the block log.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn set_certificate(&mut self, number: u64, certificate: Certificate) -> io::Result<()> {
        if let Some(bytes) = self.log.read(number)? {
            if let Ok(mut block) = from_bytes::<Block>(&bytes) {
                block.certificate = certificate;
                // RecordLog has no in-place update; model the amendment by
                // tracking it in memory for reads via `block()` below.
                self.amendments.push((number, block));
            }
        }
        Ok(())
    }

    /// Reads block `number` (1-based; 0 returns `None` — use
    /// [`Ledger::genesis`]).
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn block(&self, number: u64) -> io::Result<Option<Block>> {
        if number == 0 || number >= self.next_number {
            return Ok(None);
        }
        if let Some((_, amended)) = self.amendments.iter().rev().find(|(n, _)| *n == number) {
            return Ok(Some(amended.clone()));
        }
        match self.log.read(number)? {
            Some(bytes) => Ok(from_bytes(&bytes).ok()),
            None => Ok(None),
        }
    }

    /// All blocks from `from` (inclusive) to the tip, for state transfer.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn blocks_from(&self, from: u64) -> io::Result<Vec<Block>> {
        let mut out = Vec::new();
        for n in from.max(1)..self.next_number {
            if let Some(b) = self.block(n)? {
                out.push(b);
            }
        }
        Ok(out)
    }
}

impl<L: RecordLog> Ledger<L> {
    /// Number of certificate amendments applied (test/diagnostic hook).
    pub fn amendment_count(&self) -> usize {
        self.amendments.len()
    }

    /// The underlying log (e.g. a durability engine, for policy queries).
    pub fn log(&self) -> &L {
        &self.log
    }

    /// Mutable access to the underlying log (e.g. to drive a durability
    /// engine's group-commit flush point).
    pub fn log_mut(&mut self) -> &mut L {
        &mut self.log
    }

    /// Re-derives the in-memory tail state from the log — used after a
    /// (simulated) crash dropped the log's non-durable suffix. Volatile
    /// certificate amendments are discarded; if even the genesis record is
    /// gone (∞-persistence), it is rewritten so the chain can regrow.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn reload(&mut self) -> io::Result<()> {
        self.amendments.clear();
        self.next_number = 1;
        self.last_block_hash = self.genesis.hash();
        self.last_reconfig = 0;
        self.last_checkpoint = 0;
        if self.log.is_empty() {
            self.log.append(&to_bytes(&self.genesis))?;
            self.log.sync()?;
            return Ok(());
        }
        let first = self.log.first_index();
        if first > 0 {
            // Compacted log: the genesis record and a block prefix are
            // gone, summarized by a checkpoint. If the retained suffix
            // survived, the loop below re-derives the tail from it; if a
            // crash also took the suffix, restart at the watermark with an
            // unknown parent hash — state transfer re-anchors the chain.
            self.next_number = first.max(1);
            self.last_block_hash = Hash::default();
            self.last_checkpoint = first;
        }
        for i in first.max(1)..self.log.len() {
            if let Some(bytes) = self.log.read(i)? {
                if let Some((covered, anchor)) = parse_anchor(&bytes) {
                    self.next_number = covered + 1;
                    self.last_block_hash = anchor;
                    self.last_checkpoint = self.last_checkpoint.max(covered);
                } else if let Ok(block) = from_bytes::<Block>(&bytes) {
                    self.next_number = block.header.number + 1;
                    self.last_block_hash = block.header.hash();
                    if matches!(block.body, BlockBody::Reconfiguration { .. }) {
                        self.last_reconfig = block.header.number;
                    }
                    self.last_checkpoint = block.header.last_checkpoint;
                }
            }
        }
        Ok(())
    }

    /// The hash that a block chaining onto block `number` must carry: the
    /// block's header hash, or — when record `number` is a checkpoint
    /// anchor from an earlier fast-forward — the anchored hash itself.
    pub fn chain_hash_at(&self, number: u64) -> Option<Hash> {
        if number == 0 {
            return Some(self.genesis.hash());
        }
        if number >= self.next_number {
            return None;
        }
        if let Some(block) = self.block(number).ok().flatten() {
            return Some(block.header.hash());
        }
        match self.log.read(number) {
            Ok(Some(bytes)) => parse_anchor(&bytes)
                .filter(|(covered, _)| *covered == number)
                .map(|(_, anchor)| anchor),
            _ => None,
        }
    }

    /// Fast-forwards an (almost) empty chain through a checkpoint received
    /// via state transfer: blocks 1..=`covered` are summarized by a snapshot
    /// the caller installed into the application, and `anchor` is the hash
    /// of block `covered`, so block `covered + 1` can chain onto it.
    ///
    /// The log is padded so record index == block number stays true for the
    /// suffix; record `covered` holds an anchor marker that survives
    /// restarts (reload re-derives the tail from it even if the whole
    /// suffix was lost).
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn install_checkpoint_anchor(&mut self, covered: u64, anchor: Hash) -> io::Result<()> {
        if covered < self.next_number {
            return Ok(()); // we already have (at least) that prefix
        }
        while self.log.len() < covered {
            self.log.append(&[])?;
        }
        if self.log.len() == covered {
            self.log.append(&anchor_record(covered, &anchor))?;
        }
        self.next_number = covered + 1;
        self.last_block_hash = anchor;
        self.last_checkpoint = self.last_checkpoint.max(covered);
        Ok(())
    }

    /// Compacts the log up to a durably checkpointed block: every record
    /// below `covered` is truncated away (block `covered` itself is kept —
    /// it is the anchor the next block's parent hash chains onto). On a
    /// segmented backend this is an O(segment-delete) operation; reads of
    /// truncated blocks return `None` and state transfer serves the prefix
    /// from the snapshot instead.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn compact_to(&mut self, covered: u64) -> io::Result<()> {
        if covered == 0 {
            return Ok(());
        }
        self.amendments.retain(|(n, _)| *n >= covered);
        self.log.truncate_prefix(covered)
    }

    /// Lowest block number the log can still read (0 = genesis onward).
    pub fn first_retained(&self) -> u64 {
        self.log.first_index()
    }

    /// Consumes the ledger, returning the underlying log (crash simulation
    /// in tests: reopen the log with [`Ledger::open`]).
    pub fn into_log(self) -> L {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{persist_sign_payload, BlockHeader};
    use crate::view_keys::KeyStore;
    use smartchain_consensus::proof::DecisionProof;
    use smartchain_crypto::keys::{Backend, SecretKey};
    use smartchain_smr::types::Request;
    use smartchain_storage::mem::MemLog;

    fn genesis() -> Genesis {
        let stores: Vec<KeyStore> = (0..4)
            .map(|i| {
                KeyStore::new(
                    SecretKey::from_seed(Backend::Sim, &[i as u8 + 130; 32]),
                    Backend::Sim,
                )
            })
            .collect();
        Genesis {
            view: crate::block::ViewInfo {
                id: 0,
                members: stores.iter().map(|s| s.certified_key_for(0)).collect(),
            },
            checkpoint_period: 10,
            app_data: Vec::new(),
        }
    }

    fn tx_body(consensus_id: u64) -> BlockBody {
        BlockBody::Transactions {
            consensus_id,
            requests: vec![Request {
                client: 1,
                seq: consensus_id,
                payload: vec![consensus_id as u8],
                signature: None,
            }],
            proof: DecisionProof {
                instance: consensus_id,
                epoch: 0,
                value_hash: [0u8; 32],
                accepts: Vec::new(),
            },
            results: vec![vec![1]],
        }
    }

    #[test]
    fn fresh_ledger_has_genesis() {
        let ledger = Ledger::open(MemLog::new(), genesis()).unwrap();
        assert_eq!(ledger.height(), 0);
        assert_eq!(ledger.next_number(), 1);
        assert_eq!(ledger.last_block_hash(), ledger.genesis().hash());
    }

    #[test]
    fn append_chains_blocks() {
        let mut ledger = Ledger::open(MemLog::new(), genesis()).unwrap();
        for i in 1..=5u64 {
            let block = ledger.build_next(tx_body(i), [0u8; 32]);
            ledger.append(&block).unwrap();
        }
        assert_eq!(ledger.height(), 5);
        let b3 = ledger.block(3).unwrap().unwrap();
        let b4 = ledger.block(4).unwrap().unwrap();
        assert_eq!(b4.header.hash_last_block, b3.header.hash());
    }

    #[test]
    fn append_rejects_wrong_parent() {
        let mut ledger = Ledger::open(MemLog::new(), genesis()).unwrap();
        let block = ledger.build_next(tx_body(1), [0u8; 32]);
        ledger.append(&block).unwrap();
        // Re-appending the same block must fail (wrong number + parent).
        assert!(ledger.append(&block).is_err());
        // A block with a forged parent hash must fail.
        let mut forged = ledger.build_next(tx_body(2), [0u8; 32]);
        forged.header.hash_last_block = [9u8; 32];
        forged.header.number = ledger.next_number();
        assert!(ledger.append(&forged).is_err());
    }

    #[test]
    fn recovery_rebuilds_tail_state() {
        let g = genesis();
        let mut ledger = Ledger::open(MemLog::new(), g.clone()).unwrap();
        for i in 1..=3u64 {
            let block = ledger.build_next(tx_body(i), [0u8; 32]);
            ledger.append(&block).unwrap();
        }
        ledger.sync().unwrap();
        let log = ledger.into_log();
        let recovered = Ledger::open(log, g).unwrap();
        assert_eq!(recovered.height(), 3);
        let b3 = recovered.block(3).unwrap().unwrap();
        assert_eq!(recovered.last_block_hash(), b3.header.hash());
        assert_eq!(recovered.next_number(), 4);
    }

    #[test]
    fn genesis_mismatch_rejected() {
        let g1 = genesis();
        let mut g2 = g1.clone();
        g2.checkpoint_period = 99;
        let mut log = MemLog::new();
        log.append(&to_bytes(&g1)).unwrap();
        assert!(Ledger::open(log, g2).is_err());
    }

    #[test]
    fn certificates_attach_to_blocks() {
        let mut ledger = Ledger::open(MemLog::new(), genesis()).unwrap();
        let block = ledger.build_next(tx_body(1), [0u8; 32]);
        ledger.append(&block).unwrap();
        let header: BlockHeader = block.header;
        let ks = KeyStore::new(
            SecretKey::from_seed(Backend::Sim, &[130u8; 32]),
            Backend::Sim,
        );
        let sig = ks
            .consensus()
            .sign(&persist_sign_payload(1, &header.hash()));
        ledger
            .set_certificate(
                1,
                Certificate {
                    signatures: vec![(0, sig)],
                },
            )
            .unwrap();
        let read_back = ledger.block(1).unwrap().unwrap();
        assert_eq!(read_back.certificate.signatures.len(), 1);
    }

    #[test]
    fn blocks_from_returns_suffix() {
        let mut ledger = Ledger::open(MemLog::new(), genesis()).unwrap();
        for i in 1..=6u64 {
            let block = ledger.build_next(tx_body(i), [0u8; 32]);
            ledger.append(&block).unwrap();
        }
        let suffix = ledger.blocks_from(4).unwrap();
        assert_eq!(suffix.len(), 3);
        assert_eq!(suffix[0].header.number, 4);
        assert_eq!(suffix[2].header.number, 6);
    }
}
