//! The SmartChain wire vocabulary: [`ChainMsg`], a superset of the SMR
//! messages carrying the PERSIST phase, state transfer, and decentralized
//! reconfiguration.
//!
//! Sizes for the simulator's NIC model derive from the canonical
//! [`Encode`] output (`FRAME_BYTES + encoded_len`), with one deliberate
//! exception: `StateRep` carries *modeled* state (the paper's Fig. 7 uses a
//! 1 GB application state that is never materialized), so its wire size is
//! the modeled transfer size.

use crate::block::{Block, ReconfigOp, ReconfigVote, ViewInfo};
use crate::pipeline::checkpoint::SnapshotCommit;
use crate::view_keys::CertifiedKey;
use smartchain_codec::{decode_seq, encode_seq, seq_encoded_len, Decode, DecodeError, Encode};
use smartchain_crypto::keys::Signature;
use smartchain_crypto::Hash;
use smartchain_smr::ordering::SmrMsg;

/// Messages exchanged by SmartChain nodes (a superset of the SMR messages).
// Variant sizes intentionally differ (StateRep carries whole block suffixes);
// the simulator moves messages by value and boxing would only add churn.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ChainMsg {
    /// Ordering/SMR traffic.
    Smr(SmrMsg),
    /// PERSIST-phase signature share (strong variant).
    Persist {
        /// Block number being certified.
        block: u64,
        /// Hash of the block header.
        header_hash: Hash,
        /// Signature with the sender's consensus key.
        signature: Signature,
    },
    /// Request for state from `from_block` onward.
    StateReq {
        /// First block the requester is missing.
        from_block: u64,
    },
    /// State transfer reply.
    StateRep {
        /// Application snapshot (bytes) and the block it covers.
        snapshot: Option<(u64, Vec<u8>)>,
        /// The snapshot's certified commitment (covered block's header plus
        /// the results/state roots that open its `hash_results`): the
        /// receiver verifies the shipped state chunk-by-chunk against it
        /// before installing.
        commit: Option<SnapshotCommit>,
        /// Hash of the snapshot's covered block, so the receiver's ledger
        /// can chain the shipped suffix onto the summarized prefix.
        snapshot_anchor: Option<Hash>,
        /// The ordering core's per-client dedup frontier at the snapshot's
        /// covered block, so the receiver rejects retransmissions of
        /// requests inside the summarized prefix.
        snapshot_dedup: Vec<(u64, u64)>,
        /// Block suffix after the snapshot.
        blocks: Vec<Block>,
        /// Modeled wire size (1 GB states are modeled, not materialized).
        modeled_size: u64,
        /// Only one designated replica sends the full state; the rest send
        /// hash-sized acknowledgements (PBFT-style optimization).
        full: bool,
        /// The sender's chain digests: `(height, chain hash)` at its tip and
        /// at exponentially receding heights (tip−1, tip−2, tip−4, …), so a
        /// requester can find a common height with senders ahead of or
        /// behind the shipped suffix. The requester installs a full reply
        /// only once `f+1` distinct members (the shipper included) report
        /// digests consistent with the shipped content — the PBFT rule: at
        /// least one correct replica vouches for the installed history.
        digests: Vec<(u64, Hash)>,
    },
    /// A prospective member asks to join — or a member asks to leave
    /// (paper Fig. 5a, step 1; §V-D leave flow).
    JoinAsk {
        /// The asker's certified consensus key for the next view.
        joiner: CertifiedKey,
    },
    /// A member's signed acceptance (step 2).
    JoinVote {
        /// The vote (carries the voter's new consensus key).
        vote: ReconfigVote,
        /// The operation being voted for.
        op: ReconfigOp,
        /// The view id the vote creates.
        new_view_id: u64,
        /// Current view (so the asker learns the membership).
        current_view: ViewInfo,
    },
    /// Tells a just-admitted member it is part of `view` (triggers its
    /// state transfer).
    Welcome {
        /// The view that now includes the recipient.
        view: ViewInfo,
    },
}

impl ChainMsg {
    /// Wire size in bytes for the simulator's NIC model, derived from the
    /// canonical [`Encode`] output plus shared transport framing.
    ///
    /// `StateRep` is the exception: its payload is a *modeled* transfer
    /// (snapshot sizes are configured, not materialized), so the modeled
    /// size wins.
    pub fn wire_size(&self) -> usize {
        match self {
            ChainMsg::StateRep { modeled_size, .. } => (*modeled_size as usize).max(64),
            _ => smartchain_codec::FRAME_BYTES + self.encoded_len(),
        }
    }
}

impl Encode for ChainMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChainMsg::Smr(m) => {
                0u8.encode(out);
                m.encode(out);
            }
            ChainMsg::Persist {
                block,
                header_hash,
                signature,
            } => {
                1u8.encode(out);
                block.encode(out);
                header_hash.encode(out);
                signature.to_wire().encode(out);
            }
            ChainMsg::StateReq { from_block } => {
                2u8.encode(out);
                from_block.encode(out);
            }
            ChainMsg::StateRep {
                snapshot,
                commit,
                snapshot_anchor,
                snapshot_dedup,
                blocks,
                modeled_size,
                full,
                digests,
            } => {
                3u8.encode(out);
                snapshot.encode(out);
                commit.encode(out);
                snapshot_anchor.encode(out);
                encode_seq(snapshot_dedup, out);
                encode_seq(blocks, out);
                modeled_size.encode(out);
                full.encode(out);
                encode_seq(digests, out);
            }
            ChainMsg::JoinAsk { joiner } => {
                4u8.encode(out);
                joiner.encode(out);
            }
            ChainMsg::JoinVote {
                vote,
                op,
                new_view_id,
                current_view,
            } => {
                5u8.encode(out);
                vote.encode(out);
                op.encode(out);
                new_view_id.encode(out);
                current_view.encode(out);
            }
            ChainMsg::Welcome { view } => {
                6u8.encode(out);
                view.encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        // Compose from per-field `encoded_len` so large payloads (blocks,
        // proposals) are sized without materializing a copy.
        1 + match self {
            ChainMsg::Smr(m) => m.encoded_len(),
            ChainMsg::Persist {
                block,
                header_hash,
                signature,
            } => block.encoded_len() + header_hash.encoded_len() + signature.to_wire().len(),
            ChainMsg::StateReq { from_block } => from_block.encoded_len(),
            ChainMsg::StateRep {
                snapshot,
                commit,
                snapshot_anchor,
                snapshot_dedup,
                blocks,
                modeled_size,
                full,
                digests,
            } => {
                snapshot.encoded_len()
                    + commit.encoded_len()
                    + snapshot_anchor.encoded_len()
                    + seq_encoded_len(snapshot_dedup)
                    + seq_encoded_len(blocks)
                    + modeled_size.encoded_len()
                    + full.encoded_len()
                    + seq_encoded_len(digests)
            }
            ChainMsg::JoinAsk { joiner } => joiner.encoded_len(),
            ChainMsg::JoinVote {
                vote,
                op,
                new_view_id,
                current_view,
            } => {
                vote.encoded_len()
                    + op.encoded_len()
                    + new_view_id.encoded_len()
                    + current_view.encoded_len()
            }
            ChainMsg::Welcome { view } => view.encoded_len(),
        }
    }
}

impl Decode for ChainMsg {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(ChainMsg::Smr(SmrMsg::decode(input)?)),
            1 => Ok(ChainMsg::Persist {
                block: u64::decode(input)?,
                header_hash: <[u8; 32]>::decode(input)?,
                signature: Signature::from_wire(&<[u8; 65]>::decode(input)?),
            }),
            2 => Ok(ChainMsg::StateReq {
                from_block: u64::decode(input)?,
            }),
            3 => Ok(ChainMsg::StateRep {
                snapshot: Option::<(u64, Vec<u8>)>::decode(input)?,
                commit: Option::<SnapshotCommit>::decode(input)?,
                snapshot_anchor: Option::<Hash>::decode(input)?,
                snapshot_dedup: decode_seq(input)?,
                blocks: decode_seq(input)?,
                modeled_size: u64::decode(input)?,
                full: bool::decode(input)?,
                digests: decode_seq(input)?,
            }),
            4 => Ok(ChainMsg::JoinAsk {
                joiner: CertifiedKey::decode(input)?,
            }),
            5 => Ok(ChainMsg::JoinVote {
                vote: ReconfigVote::decode(input)?,
                op: ReconfigOp::decode(input)?,
                new_view_id: u64::decode(input)?,
                current_view: ViewInfo::decode(input)?,
            }),
            6 => Ok(ChainMsg::Welcome {
                view: ViewInfo::decode(input)?,
            }),
            d => Err(DecodeError::BadDiscriminant(d as u32)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_codec::{from_bytes, to_bytes};
    use smartchain_smr::types::Request;

    #[test]
    fn wire_size_matches_encoding() {
        let msgs = vec![
            ChainMsg::Smr(SmrMsg::Request(Request {
                client: 7,
                seq: 1,
                payload: vec![1, 2, 3],
                signature: None,
            })),
            ChainMsg::StateReq { from_block: 4 },
        ];
        for m in msgs {
            assert_eq!(
                m.wire_size(),
                smartchain_codec::FRAME_BYTES + to_bytes(&m).len(),
                "wire_size must equal framed canonical encoding"
            );
        }
    }

    #[test]
    fn state_rep_uses_modeled_size() {
        let m = ChainMsg::StateRep {
            snapshot: None,
            commit: None,
            snapshot_anchor: None,
            snapshot_dedup: Vec::new(),
            blocks: Vec::new(),
            modeled_size: 1_000_000_000,
            full: true,
            digests: vec![(9, [7u8; 32])],
        };
        assert_eq!(m.wire_size(), 1_000_000_000);
        let ack = ChainMsg::StateRep {
            snapshot: None,
            commit: None,
            snapshot_anchor: None,
            snapshot_dedup: Vec::new(),
            blocks: Vec::new(),
            modeled_size: 0,
            full: false,
            digests: vec![(9, [7u8; 32])],
        };
        assert_eq!(ack.wire_size(), 64, "hash-sized acknowledgement floor");
    }

    #[test]
    fn chain_msgs_roundtrip() {
        let msgs = vec![
            ChainMsg::Smr(SmrMsg::Request(Request {
                client: 9,
                seq: 2,
                payload: vec![5; 10],
                signature: None,
            })),
            ChainMsg::StateReq { from_block: 11 },
            ChainMsg::StateRep {
                snapshot: Some((3, vec![1, 2])),
                commit: None,
                snapshot_anchor: Some([9u8; 32]),
                snapshot_dedup: vec![(7, 3), (9, 1)],
                blocks: Vec::new(),
                modeled_size: 128,
                full: true,
                digests: vec![(3, [4u8; 32]), (2, [5u8; 32])],
            },
        ];
        for m in msgs {
            let bytes = to_bytes(&m);
            let back: ChainMsg = from_bytes(&bytes).unwrap();
            assert_eq!(to_bytes(&back), bytes, "canonical roundtrip");
        }
    }
}
