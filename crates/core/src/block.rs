//! The SmartChain block structure (paper Fig. 2) and genesis configuration.
//!
//! A block has three parts:
//!
//! * **header** — block number, number of the last reconfiguration block,
//!   number of the last checkpoint block, hash of the transactions, hash of
//!   the results, hash of the previous block;
//! * **body** — the consensus metadata, the ordered transactions with their
//!   decision proof, and the per-transaction results (reconfiguration blocks
//!   carry the reconfiguration transaction and the new view instead);
//! * **certificate** — ⌈(n+f+1)/2⌉ signatures over the header by the view's
//!   consensus keys (strong variant; the weak variant relies on the decision
//!   proof in the body).

use crate::view_keys::CertifiedKey;
use smartchain_codec::{decode_seq, encode_seq, seq_encoded_len, Decode, DecodeError, Encode};
use smartchain_consensus::proof::DecisionProof;
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::{PublicKey, Signature};
use smartchain_crypto::{sha256, Hash};
use smartchain_merkle as merkle;
use smartchain_smr::types::Request;

/// Members and key material of one consortium view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewInfo {
    /// Monotonic view number (0 = genesis view).
    pub id: u64,
    /// The members' certified consensus keys, indexed by replica id.
    pub members: Vec<CertifiedKey>,
}

impl ViewInfo {
    /// Number of members.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// Tolerated faults ⌊(n-1)/3⌋.
    pub fn f(&self) -> usize {
        (self.n().saturating_sub(1)) / 3
    }

    /// Certificate quorum ⌈(n+f+1)/2⌉.
    pub fn quorum(&self) -> usize {
        (self.n() + self.f() + 2) / 2
    }

    /// The consensus-layer view (consensus public keys only).
    pub fn to_consensus_view(&self) -> View {
        View {
            id: self.id,
            members: self.members.iter().map(|m| m.consensus).collect(),
        }
    }

    /// All key certifications are valid for this view id.
    pub fn keys_certified(&self) -> bool {
        self.members.iter().all(|m| m.verify(self.id))
    }

    /// Index of the member with the given permanent key.
    pub fn position_of(&self, permanent: &PublicKey) -> Option<ReplicaId> {
        self.members.iter().position(|m| m.permanent == *permanent)
    }
}

impl Encode for ViewInfo {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        encode_seq(&self.members, out);
    }

    fn encoded_len(&self) -> usize {
        self.id.encoded_len() + seq_encoded_len(&self.members)
    }
}

impl Decode for ViewInfo {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ViewInfo {
            id: u64::decode(input)?,
            members: decode_seq(input)?,
        })
    }
}

/// Genesis configuration: initial consortium, checkpoint period, app data.
#[derive(Clone, Debug, PartialEq)]
pub struct Genesis {
    /// The initial view (vinit), with certified consensus keys.
    pub view: ViewInfo,
    /// Checkpoint period `z` in blocks (paper §V-B3: defined in genesis).
    pub checkpoint_period: u64,
    /// Application bootstrap data (e.g. SMaRtCoin's authorized minters).
    pub app_data: Vec<u8>,
}

impl Encode for Genesis {
    fn encode(&self, out: &mut Vec<u8>) {
        self.view.encode(out);
        self.checkpoint_period.encode(out);
        self.app_data.encode(out);
    }

    fn encoded_len(&self) -> usize {
        self.view.encoded_len() + self.checkpoint_period.encoded_len() + self.app_data.encoded_len()
    }
}

impl Decode for Genesis {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Genesis {
            view: ViewInfo::decode(input)?,
            checkpoint_period: u64::decode(input)?,
            app_data: Vec::<u8>::decode(input)?,
        })
    }
}

impl Genesis {
    /// Hash of the genesis configuration — the chain's trust anchor and the
    /// `hash_last_block` of block 1.
    pub fn hash(&self) -> Hash {
        sha256::digest_parts(&[b"sc-genesis", &smartchain_codec::to_bytes(self)])
    }
}

/// Block header (paper Fig. 2, top).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Block number (genesis = 0).
    pub number: u64,
    /// Number of the closest reconfiguration block at or before this one
    /// (0 = none since genesis).
    pub last_reconfig: u64,
    /// Number of the last block covered by the most recent checkpoint at
    /// creation time (0 = no checkpoint yet).
    pub last_checkpoint: u64,
    /// Merkle root over the transaction leaves (consensus id, then each
    /// encoded request), so single transactions are provable to light
    /// clients without the whole block.
    pub hash_transactions: Hash,
    /// `node_hash(results root, state root)`: binds both the per-request
    /// execution results and the application state root after this block.
    pub hash_results: Hash,
    /// SHA-256 of the previous block's header (genesis hash for block 1).
    pub hash_last_block: Hash,
}

impl BlockHeader {
    /// Hash of this header (chained into the next block).
    pub fn hash(&self) -> Hash {
        sha256::digest_parts(&[b"sc-header", &smartchain_codec::to_bytes(self)])
    }
}

impl Encode for BlockHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        self.number.encode(out);
        self.last_reconfig.encode(out);
        self.last_checkpoint.encode(out);
        self.hash_transactions.encode(out);
        self.hash_results.encode(out);
        self.hash_last_block.encode(out);
    }

    fn encoded_len(&self) -> usize {
        3 * 8 + 3 * 32
    }
}

impl Decode for BlockHeader {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            number: u64::decode(input)?,
            last_reconfig: u64::decode(input)?,
            last_checkpoint: u64::decode(input)?,
            hash_transactions: <[u8; 32]>::decode(input)?,
            hash_results: <[u8; 32]>::decode(input)?,
            hash_last_block: <[u8; 32]>::decode(input)?,
        })
    }
}

/// The reconfiguration operation carried by a reconfiguration block.
#[derive(Clone, Debug, PartialEq)]
pub enum ReconfigOp {
    /// A new node joins; it collected acceptance votes from the view.
    Join {
        /// The joining node's certified consensus key for the new view.
        joiner: CertifiedKey,
    },
    /// A member leaves voluntarily.
    Leave {
        /// Permanent key of the departing member.
        leaver: PublicKey,
    },
    /// The view expels a member (requires n-f remove votes).
    Exclude {
        /// Permanent key of the expelled member.
        target: PublicKey,
    },
}

impl Encode for ReconfigOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ReconfigOp::Join { joiner } => {
                0u8.encode(out);
                joiner.encode(out);
            }
            ReconfigOp::Leave { leaver } => {
                1u8.encode(out);
                leaver.to_wire().encode(out);
            }
            ReconfigOp::Exclude { target } => {
                2u8.encode(out);
                target.to_wire().encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ReconfigOp::Join { joiner } => joiner.encoded_len(),
            ReconfigOp::Leave { .. } | ReconfigOp::Exclude { .. } => 33,
        }
    }
}

impl Decode for ReconfigOp {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(ReconfigOp::Join {
                joiner: CertifiedKey::decode(input)?,
            }),
            1 => Ok(ReconfigOp::Leave {
                leaver: PublicKey::from_wire(&<[u8; 33]>::decode(input)?),
            }),
            2 => Ok(ReconfigOp::Exclude {
                target: PublicKey::from_wire(&<[u8; 33]>::decode(input)?),
            }),
            d => Err(DecodeError::BadDiscriminant(d as u32)),
        }
    }
}

/// A member's signed acceptance of a reconfiguration, carrying its own new
/// consensus key for the next view (paper §V-D, step 2 of the join flow).
#[derive(Clone, Debug, PartialEq)]
pub struct ReconfigVote {
    /// The voting member's replica id in the current view.
    pub voter: ReplicaId,
    /// The voter's certified consensus key for the *new* view.
    pub new_key: CertifiedKey,
    /// Signature by the voter's permanent key over [`vote_payload`].
    pub signature: Signature,
}

impl Encode for ReconfigVote {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.voter as u64).encode(out);
        self.new_key.encode(out);
        self.signature.to_wire().encode(out);
    }

    fn encoded_len(&self) -> usize {
        8 + self.new_key.encoded_len() + 65
    }
}

impl Decode for ReconfigVote {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ReconfigVote {
            voter: u64::decode(input)? as usize,
            new_key: CertifiedKey::decode(input)?,
            signature: Signature::from_wire(&<[u8; 65]>::decode(input)?),
        })
    }
}

/// Canonical bytes a member signs when voting for a reconfiguration.
pub fn vote_payload(new_view_id: u64, op: &ReconfigOp, new_key: &CertifiedKey) -> Vec<u8> {
    let mut out = Vec::new();
    b"sc-recvote".as_slice().encode(&mut out);
    new_view_id.encode(&mut out);
    op.encode(&mut out);
    new_key.encode(&mut out);
    out
}

/// A complete reconfiguration transaction: the operation plus a quorum
/// (n-f of the current view) of acceptance votes.
#[derive(Clone, Debug, PartialEq)]
pub struct ReconfigTx {
    /// The view this reconfiguration creates (current view id + 1).
    pub new_view_id: u64,
    /// The operation.
    pub op: ReconfigOp,
    /// Acceptance votes carrying new consensus keys.
    pub votes: Vec<ReconfigVote>,
}

impl ReconfigTx {
    /// Validates the vote certificate against the current view: at least
    /// n−f distinct members, correct signatures, certified new keys.
    pub fn verify(&self, current: &ViewInfo) -> bool {
        if self.new_view_id != current.id + 1 {
            return false;
        }
        let mut seen = vec![false; current.n()];
        let mut valid = 0usize;
        for vote in &self.votes {
            let Some(member) = current.members.get(vote.voter) else {
                return false;
            };
            if seen[vote.voter] {
                return false;
            }
            seen[vote.voter] = true;
            if vote.new_key.permanent != member.permanent {
                return false;
            }
            if !vote.new_key.verify(self.new_view_id) {
                return false;
            }
            let payload = vote_payload(self.new_view_id, &self.op, &vote.new_key);
            if !member.permanent.verify(&payload, &vote.signature) {
                return false;
            }
            valid += 1;
        }
        if let ReconfigOp::Join { joiner } = &self.op {
            if !joiner.verify(self.new_view_id) {
                return false;
            }
        }
        valid >= current.n() - current.f()
    }

    /// Derives the new view from the current one by applying the operation:
    /// voters' keys are rotated to their published new keys; joiners are
    /// appended; leavers/excluded members are removed. Members who did not
    /// manage to get a vote into the transaction keep their slot but their
    /// old key is *not* trusted for the new view's certificates (their
    /// fresh key is disseminated in-band; see DESIGN.md).
    pub fn apply(&self, current: &ViewInfo) -> ViewInfo {
        let mut members: Vec<CertifiedKey> = Vec::new();
        for (idx, member) in current.members.iter().enumerate() {
            // Drop leaving/excluded members.
            let drop = match &self.op {
                ReconfigOp::Leave { leaver } => member.permanent == *leaver,
                ReconfigOp::Exclude { target } => member.permanent == *target,
                ReconfigOp::Join { .. } => false,
            };
            if drop {
                continue;
            }
            let rotated = self
                .votes
                .iter()
                .find(|v| v.voter == idx)
                .map(|v| v.new_key)
                .unwrap_or(*member);
            members.push(rotated);
        }
        if let ReconfigOp::Join { joiner } = &self.op {
            members.push(*joiner);
        }
        ViewInfo {
            id: self.new_view_id,
            members,
        }
    }
}

impl Encode for ReconfigTx {
    fn encode(&self, out: &mut Vec<u8>) {
        self.new_view_id.encode(out);
        self.op.encode(out);
        encode_seq(&self.votes, out);
    }

    fn encoded_len(&self) -> usize {
        self.new_view_id.encoded_len() + self.op.encoded_len() + seq_encoded_len(&self.votes)
    }
}

impl Decode for ReconfigTx {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ReconfigTx {
            new_view_id: u64::decode(input)?,
            op: ReconfigOp::decode(input)?,
            votes: decode_seq(input)?,
        })
    }
}

/// Block body (paper Fig. 2, middle).
#[derive(Clone, Debug, PartialEq)]
pub enum BlockBody {
    /// An ordinary batch of application transactions.
    Transactions {
        /// Consensus instance that decided the batch.
        consensus_id: u64,
        /// Ordered requests.
        requests: Vec<Request>,
        /// Decision proof for the batch.
        proof: DecisionProof,
        /// Per-request execution results (auditability, paper §V-A1 req. 3).
        results: Vec<Vec<u8>>,
    },
    /// A reconfiguration (paper Fig. 2, block l).
    Reconfiguration {
        /// Consensus instance that ordered the reconfiguration.
        consensus_id: u64,
        /// The reconfiguration transaction with its vote certificate.
        tx: ReconfigTx,
        /// Decision proof.
        proof: DecisionProof,
        /// The view the reconfiguration installs.
        new_view: ViewInfo,
    },
}

impl BlockBody {
    /// Encoded transactions (what `hash_transactions` commits to).
    ///
    /// Deliberately excludes the decision proof: each replica assembles its
    /// own quorum of ACCEPT signatures, so proofs differ across replicas
    /// while the *decided content* is identical. Headers must hash equally
    /// everywhere (the PERSIST phase signs them), so only the content is
    /// committed; proofs remain in the body as transferable authority
    /// evidence.
    pub fn transactions_bytes(&self) -> Vec<u8> {
        match self {
            BlockBody::Transactions {
                consensus_id,
                requests,
                ..
            } => {
                let mut out = Vec::new();
                consensus_id.encode(&mut out);
                encode_seq(requests, &mut out);
                out
            }
            BlockBody::Reconfiguration {
                consensus_id, tx, ..
            } => {
                let mut out = Vec::new();
                consensus_id.encode(&mut out);
                tx.encode(&mut out);
                out
            }
        }
    }

    /// The Merkle leaves `hash_transactions` commits to: the consensus id
    /// first, then each request (or the reconfiguration transaction),
    /// individually — so a light client can verify one transaction's
    /// inclusion with a log-sized proof.
    ///
    /// Like [`BlockBody::transactions_bytes`], the decision proof is
    /// excluded: proofs differ across replicas while the decided content is
    /// identical, and headers must hash equally everywhere.
    pub fn transaction_leaves(&self) -> Vec<Vec<u8>> {
        match self {
            BlockBody::Transactions {
                consensus_id,
                requests,
                ..
            } => {
                let mut leaves = Vec::with_capacity(1 + requests.len());
                leaves.push(smartchain_codec::to_bytes(consensus_id));
                leaves.extend(requests.iter().map(smartchain_codec::to_bytes));
                leaves
            }
            BlockBody::Reconfiguration {
                consensus_id, tx, ..
            } => {
                vec![
                    smartchain_codec::to_bytes(consensus_id),
                    smartchain_codec::to_bytes(tx),
                ]
            }
        }
    }

    /// Merkle root over [`BlockBody::transaction_leaves`].
    pub fn transactions_root(&self) -> Hash {
        merkle::root(&self.transaction_leaves())
    }

    /// The per-result Merkle leaves that `hash_results` commits to.
    ///
    /// Using a Merkle root (instead of a flat hash) implements the paper's
    /// footnote 4: results become individually provable, so light verifiers
    /// can check one transaction's outcome without the whole block — the
    /// hook for EVM-style execution engines.
    pub fn results_leaves(&self) -> Vec<Vec<u8>> {
        match self {
            BlockBody::Transactions { results, .. } => results.clone(),
            BlockBody::Reconfiguration { new_view, .. } => {
                vec![smartchain_codec::to_bytes(new_view)]
            }
        }
    }

    /// Merkle root over [`BlockBody::results_leaves`].
    pub fn results_root(&self) -> Hash {
        merkle::root(&self.results_leaves())
    }
}

impl Encode for BlockBody {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BlockBody::Transactions {
                consensus_id,
                requests,
                proof,
                results,
            } => {
                0u8.encode(out);
                consensus_id.encode(out);
                encode_seq(requests, out);
                proof.encode(out);
                encode_seq(results, out);
            }
            BlockBody::Reconfiguration {
                consensus_id,
                tx,
                proof,
                new_view,
            } => {
                1u8.encode(out);
                consensus_id.encode(out);
                tx.encode(out);
                proof.encode(out);
                new_view.encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            BlockBody::Transactions {
                consensus_id,
                requests,
                proof,
                results,
            } => {
                consensus_id.encoded_len()
                    + seq_encoded_len(requests)
                    + proof.encoded_len()
                    + seq_encoded_len(results)
            }
            BlockBody::Reconfiguration {
                consensus_id,
                tx,
                proof,
                new_view,
            } => {
                consensus_id.encoded_len()
                    + tx.encoded_len()
                    + proof.encoded_len()
                    + new_view.encoded_len()
            }
        }
    }
}

impl Decode for BlockBody {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(BlockBody::Transactions {
                consensus_id: u64::decode(input)?,
                requests: decode_seq(input)?,
                proof: DecisionProof::decode(input)?,
                results: decode_results(input)?,
            }),
            1 => Ok(BlockBody::Reconfiguration {
                consensus_id: u64::decode(input)?,
                tx: ReconfigTx::decode(input)?,
                proof: DecisionProof::decode(input)?,
                new_view: ViewInfo::decode(input)?,
            }),
            d => Err(DecodeError::BadDiscriminant(d as u32)),
        }
    }
}

fn decode_results(input: &mut &[u8]) -> Result<Vec<Vec<u8>>, DecodeError> {
    let len = u32::decode(input)? as usize;
    if len > input.len() {
        return Err(DecodeError::BadLength(len as u64));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(Vec::<u8>::decode(input)?);
    }
    Ok(out)
}

/// Canonical bytes signed by replicas in the PERSIST phase.
pub fn persist_sign_payload(block_number: u64, header_hash: &Hash) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    b"sc-persist".as_slice().encode(&mut out);
    block_number.encode(&mut out);
    header_hash.encode(&mut out);
    out
}

/// A block certificate: signatures over the header hash by the view's
/// consensus keys (paper §V-C).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Certificate {
    /// `(replica, signature)` pairs.
    pub signatures: Vec<(ReplicaId, Signature)>,
}

impl Certificate {
    /// Verifies the certificate for a block's header under `view`.
    pub fn verify(&self, header: &BlockHeader, view: &ViewInfo) -> bool {
        let payload = persist_sign_payload(header.number, &header.hash());
        let mut seen = vec![false; view.n()];
        let mut valid = 0usize;
        for (signer, signature) in &self.signatures {
            let Some(member) = view.members.get(*signer) else {
                return false;
            };
            if seen[*signer] {
                return false;
            }
            seen[*signer] = true;
            if !member.consensus.verify(&payload, signature) {
                return false;
            }
            valid += 1;
        }
        valid >= view.quorum()
    }
}

impl Encode for Certificate {
    fn encode(&self, out: &mut Vec<u8>) {
        let entries: Vec<(u64, [u8; 65])> = self
            .signatures
            .iter()
            .map(|(r, s)| (*r as u64, s.to_wire()))
            .collect();
        encode_seq(&entries, out);
    }

    fn encoded_len(&self) -> usize {
        4 + self.signatures.len() * (8 + 65)
    }
}

impl Decode for Certificate {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let entries: Vec<(u64, [u8; 65])> = decode_seq(input)?;
        Ok(Certificate {
            signatures: entries
                .into_iter()
                .map(|(r, s)| (r as usize, Signature::from_wire(&s)))
                .collect(),
        })
    }
}

/// A complete block.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// The body.
    pub body: BlockBody,
    /// The certificate (may be empty in the weak variant).
    pub certificate: Certificate,
}

impl Block {
    /// Builds a block, computing the commitment hashes. `state_root` is the
    /// Merkle root of the application state after executing this block
    /// ([`merkle::chunked_root`] with [`merkle::STATE_CHUNK`]-byte leaves);
    /// it is folded into `hash_results`, so the PERSIST certificate over the
    /// header also certifies the post-block state — the anchor snapshot
    /// installers verify chunks against.
    pub fn build(
        number: u64,
        last_reconfig: u64,
        last_checkpoint: u64,
        hash_last_block: Hash,
        body: BlockBody,
        state_root: Hash,
    ) -> Block {
        let header = BlockHeader {
            number,
            last_reconfig,
            last_checkpoint,
            hash_transactions: body.transactions_root(),
            hash_results: merkle::node_hash(&body.results_root(), &state_root),
            hash_last_block,
        };
        Block {
            header,
            body,
            certificate: Certificate::default(),
        }
    }

    /// Header/body consistency: the transaction commitment matches the body.
    ///
    /// `hash_results` folds in the state root, which is not carried by the
    /// block itself — use [`Block::commitments_valid_with_state`] when the
    /// expected state root is known (checkpoint verification, audits with
    /// replay).
    pub fn commitments_valid(&self) -> bool {
        self.header.hash_transactions == self.body.transactions_root()
    }

    /// Full header/body consistency given the expected post-block state
    /// root: transaction commitment plus the results/state binding.
    pub fn commitments_valid_with_state(&self, state_root: &Hash) -> bool {
        self.commitments_valid()
            && self.header.hash_results == merkle::node_hash(&self.body.results_root(), state_root)
    }

    /// Merkle inclusion proof for result `index` (light-client API).
    ///
    /// The final path element is the block's state root, so the proof folds
    /// up to `hash_results` and verifies against the header alone.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for this block's results.
    pub fn prove_result(&self, index: usize, state_root: &Hash) -> merkle::Proof {
        let mut proof = merkle::prove(&self.body.results_leaves(), index);
        proof.path.push((*state_root, true));
        proof
    }

    /// Verifies a result inclusion proof against a (trusted) header.
    pub fn verify_result(header: &BlockHeader, result: &[u8], proof: &merkle::Proof) -> bool {
        merkle::verify(&header.hash_results, result, proof)
    }

    /// Merkle inclusion proof for transaction leaf `index` of
    /// [`BlockBody::transaction_leaves`] (leaf 0 is the consensus id; leaf
    /// `i + 1` is the `i`-th request).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for this block's leaves.
    pub fn prove_transaction(&self, index: usize) -> merkle::Proof {
        merkle::prove(&self.body.transaction_leaves(), index)
    }

    /// Verifies a transaction inclusion proof against a (trusted) header.
    pub fn verify_transaction(header: &BlockHeader, leaf: &[u8], proof: &merkle::Proof) -> bool {
        merkle::verify(&header.hash_transactions, leaf, proof)
    }

    /// Exact serialized size (for the simulator's disk accounting),
    /// computed without materializing the encoding.
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for Block {
    fn encode(&self, out: &mut Vec<u8>) {
        self.header.encode(out);
        self.body.encode(out);
        self.certificate.encode(out);
    }

    fn encoded_len(&self) -> usize {
        self.header.encoded_len() + self.body.encoded_len() + self.certificate.encoded_len()
    }
}

impl Decode for Block {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Block {
            header: BlockHeader::decode(input)?,
            body: BlockBody::decode(input)?,
            certificate: Certificate::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view_keys::KeyStore;
    use smartchain_crypto::keys::{Backend, SecretKey};

    pub(crate) fn stores(n: usize) -> Vec<KeyStore> {
        (0..n)
            .map(|i| {
                KeyStore::new(
                    SecretKey::from_seed(Backend::Sim, &[i as u8 + 120; 32]),
                    Backend::Sim,
                )
            })
            .collect()
    }

    pub(crate) fn view_info(stores: &[KeyStore], id: u64) -> ViewInfo {
        ViewInfo {
            id,
            members: stores.iter().map(|s| s.certified_key_for(id)).collect(),
        }
    }

    fn dummy_proof() -> DecisionProof {
        DecisionProof {
            instance: 1,
            epoch: 0,
            value_hash: [0u8; 32],
            accepts: Vec::new(),
        }
    }

    fn tx_body() -> BlockBody {
        BlockBody::Transactions {
            consensus_id: 1,
            requests: vec![Request {
                client: 1,
                seq: 0,
                payload: vec![1, 2],
                signature: None,
            }],
            proof: dummy_proof(),
            results: vec![vec![9]],
        }
    }

    /// The compositional `encoded_len` overrides must stay exact — they are
    /// the NIC/disk models' size source and must never drift from encode().
    #[test]
    fn encoded_len_overrides_match_encoding() {
        let st = stores(4);
        let view = view_info(&st, 1);
        let vote = ReconfigVote {
            voter: 2,
            new_key: st[2].certified_key_for(1),
            signature: st[2].permanent().sign(b"v"),
        };
        let tx = ReconfigTx {
            new_view_id: 1,
            op: ReconfigOp::Join {
                joiner: st[0].certified_key_for(1),
            },
            votes: vec![vote.clone()],
        };
        let genesis = Genesis {
            view: view.clone(),
            checkpoint_period: 10,
            app_data: vec![1, 2, 3],
        };
        let body = tx_body();
        let block = Block::build(1, 0, 0, [7u8; 32], body.clone(), [8u8; 32]);
        let cert = Certificate {
            signatures: vec![(0, st[0].consensus().sign(b"c"))],
        };
        fn check<T: Encode + ?Sized>(v: &T, what: &str) {
            assert_eq!(v.encoded_len(), v.to_vec().len(), "{what}");
        }
        check(&view, "ViewInfo");
        check(&genesis, "Genesis");
        check(&block.header, "BlockHeader");
        check(&body, "BlockBody");
        check(&block, "Block");
        check(&cert, "Certificate");
        check(&vote, "ReconfigVote");
        check(&tx, "ReconfigTx");
        check(&tx.op, "ReconfigOp");
        check(&st[0].certified_key_for(1), "CertifiedKey");
        assert_eq!(block.wire_size(), smartchain_codec::to_bytes(&block).len());
    }

    #[test]
    fn header_hash_changes_with_any_field() {
        let base = BlockHeader {
            number: 1,
            last_reconfig: 0,
            last_checkpoint: 0,
            hash_transactions: [1u8; 32],
            hash_results: [2u8; 32],
            hash_last_block: [3u8; 32],
        };
        let h = base.hash();
        let variants = [
            BlockHeader { number: 2, ..base },
            BlockHeader {
                last_reconfig: 1,
                ..base
            },
            BlockHeader {
                last_checkpoint: 1,
                ..base
            },
            BlockHeader {
                hash_transactions: [9u8; 32],
                ..base
            },
            BlockHeader {
                hash_results: [9u8; 32],
                ..base
            },
            BlockHeader {
                hash_last_block: [9u8; 32],
                ..base
            },
        ];
        for v in variants {
            assert_ne!(v.hash(), h);
        }
    }

    #[test]
    fn block_build_commits_to_body() {
        let state_root = [5u8; 32];
        let b = Block::build(1, 0, 0, [0u8; 32], tx_body(), state_root);
        assert!(b.commitments_valid());
        assert!(b.commitments_valid_with_state(&state_root));
        // The header binds the state root even though the block doesn't
        // carry it: a different root fails the full check.
        assert!(!b.commitments_valid_with_state(&[6u8; 32]));
        let mut tampered = b.clone();
        if let BlockBody::Transactions { requests, .. } = &mut tampered.body {
            requests[0].payload = vec![9, 9];
        }
        assert!(!tampered.commitments_valid());
    }

    #[test]
    fn block_codec_roundtrip() {
        let b = Block::build(3, 1, 2, [7u8; 32], tx_body(), [0u8; 32]);
        let bytes = smartchain_codec::to_bytes(&b);
        let back: Block = smartchain_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn certificate_quorum_rules() {
        let ks = stores(4);
        let view = view_info(&ks, 0);
        let block = Block::build(1, 0, 0, [0u8; 32], tx_body(), [0u8; 32]);
        let payload = persist_sign_payload(1, &block.header.hash());
        let sign = |i: usize| (i, ks[i].consensus().sign(&payload));
        let full = Certificate {
            signatures: (0..4).map(sign).collect(),
        };
        assert!(full.verify(&block.header, &view));
        let quorum = Certificate {
            signatures: (0..3).map(sign).collect(),
        };
        assert!(quorum.verify(&block.header, &view));
        let sub = Certificate {
            signatures: (0..2).map(sign).collect(),
        };
        assert!(!sub.verify(&block.header, &view));
    }

    #[test]
    fn certificate_rejects_wrong_view_keys() {
        let ks = stores(4);
        let view0 = view_info(&ks, 0);
        let view1 = view_info(&ks, 1); // rotated keys
        let block = Block::build(1, 0, 0, [0u8; 32], tx_body(), [0u8; 32]);
        let payload = persist_sign_payload(1, &block.header.hash());
        // Signatures with view-0 keys must not verify under view 1.
        let cert = Certificate {
            signatures: (0..3)
                .map(|i| (i, ks[i].consensus().sign(&payload)))
                .collect(),
        };
        assert!(cert.verify(&block.header, &view0));
        assert!(!cert.verify(&block.header, &view1));
    }

    #[test]
    fn reconfig_tx_join_verify_and_apply() {
        let ks = stores(4);
        let current = view_info(&ks, 0);
        let joiner_store = KeyStore::new(
            SecretKey::from_seed(Backend::Sim, &[200u8; 32]),
            Backend::Sim,
        );
        let joiner = joiner_store.certified_key_for(1);
        let op = ReconfigOp::Join { joiner };
        let votes: Vec<ReconfigVote> = (0..3)
            .map(|i| {
                let new_key = ks[i].certified_key_for(1);
                let payload = vote_payload(1, &op, &new_key);
                ReconfigVote {
                    voter: i,
                    new_key,
                    signature: ks[i].permanent().sign(&payload),
                }
            })
            .collect();
        let tx = ReconfigTx {
            new_view_id: 1,
            op,
            votes,
        };
        assert!(tx.verify(&current));
        let next = tx.apply(&current);
        assert_eq!(next.id, 1);
        assert_eq!(next.n(), 5);
        assert_eq!(next.members[4].permanent, joiner_store.permanent_public());
        // Voters' keys rotated; member 3 (no vote) kept its old entry.
        assert_ne!(next.members[0].consensus, current.members[0].consensus);
        assert_eq!(next.members[3].consensus, current.members[3].consensus);
    }

    #[test]
    fn reconfig_tx_subquorum_rejected() {
        let ks = stores(4);
        let current = view_info(&ks, 0);
        let op = ReconfigOp::Leave {
            leaver: ks[3].permanent_public(),
        };
        let votes: Vec<ReconfigVote> = (0..2)
            .map(|i| {
                let new_key = ks[i].certified_key_for(1);
                let payload = vote_payload(1, &op, &new_key);
                ReconfigVote {
                    voter: i,
                    new_key,
                    signature: ks[i].permanent().sign(&payload),
                }
            })
            .collect();
        let tx = ReconfigTx {
            new_view_id: 1,
            op,
            votes,
        };
        assert!(!tx.verify(&current), "2 < n-f = 3 votes");
    }

    #[test]
    fn reconfig_leave_removes_member() {
        let ks = stores(4);
        let current = view_info(&ks, 0);
        let op = ReconfigOp::Leave {
            leaver: ks[2].permanent_public(),
        };
        let votes: Vec<ReconfigVote> = [0usize, 1, 3]
            .iter()
            .map(|&i| {
                let new_key = ks[i].certified_key_for(1);
                let payload = vote_payload(1, &op, &new_key);
                ReconfigVote {
                    voter: i,
                    new_key,
                    signature: ks[i].permanent().sign(&payload),
                }
            })
            .collect();
        let tx = ReconfigTx {
            new_view_id: 1,
            op,
            votes,
        };
        assert!(tx.verify(&current));
        let next = tx.apply(&current);
        assert_eq!(next.n(), 3);
        assert!(next.position_of(&ks[2].permanent_public()).is_none());
    }

    #[test]
    fn vote_from_non_member_rejected() {
        let ks = stores(4);
        let current = view_info(&ks, 0);
        let outsider = KeyStore::new(
            SecretKey::from_seed(Backend::Sim, &[222u8; 32]),
            Backend::Sim,
        );
        let op = ReconfigOp::Leave {
            leaver: ks[3].permanent_public(),
        };
        let mut votes: Vec<ReconfigVote> = [0usize, 1]
            .iter()
            .map(|&i| {
                let new_key = ks[i].certified_key_for(1);
                let payload = vote_payload(1, &op, &new_key);
                ReconfigVote {
                    voter: i,
                    new_key,
                    signature: ks[i].permanent().sign(&payload),
                }
            })
            .collect();
        // The outsider pretends to be voter 2.
        let fake_key = outsider.certified_key_for(1);
        let payload = vote_payload(1, &op, &fake_key);
        votes.push(ReconfigVote {
            voter: 2,
            new_key: fake_key,
            signature: outsider.permanent().sign(&payload),
        });
        let tx = ReconfigTx {
            new_view_id: 1,
            op,
            votes,
        };
        assert!(!tx.verify(&current));
    }

    #[test]
    fn genesis_hash_is_stable_and_binding() {
        let ks = stores(4);
        let g = Genesis {
            view: view_info(&ks, 0),
            checkpoint_period: 100,
            app_data: vec![1, 2, 3],
        };
        assert_eq!(g.hash(), g.clone().hash());
        let g2 = Genesis {
            checkpoint_period: 101,
            ..g.clone()
        };
        assert_ne!(g.hash(), g2.hash());
    }
}

#[cfg(test)]
mod merkle_result_tests {
    use super::*;
    use smartchain_consensus::proof::DecisionProof;
    use smartchain_smr::types::Request;

    fn body(results: Vec<Vec<u8>>) -> BlockBody {
        BlockBody::Transactions {
            consensus_id: 1,
            requests: results
                .iter()
                .enumerate()
                .map(|(i, _)| Request {
                    client: 1,
                    seq: i as u64,
                    payload: vec![i as u8],
                    signature: None,
                })
                .collect(),
            proof: DecisionProof {
                instance: 1,
                epoch: 0,
                value_hash: [0u8; 32],
                accepts: vec![],
            },
            results,
        }
    }

    #[test]
    fn result_proofs_verify() {
        let state_root = [3u8; 32];
        let results: Vec<Vec<u8>> = (0..7u8).map(|i| vec![i; 20]).collect();
        let block = Block::build(1, 0, 0, [0u8; 32], body(results.clone()), state_root);
        for (i, result) in results.iter().enumerate() {
            let proof = block.prove_result(i, &state_root);
            assert!(
                Block::verify_result(&block.header, result, &proof),
                "result {i}"
            );
            assert!(!Block::verify_result(&block.header, b"forged", &proof));
        }
    }

    #[test]
    fn transaction_proofs_verify() {
        let results: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 9]).collect();
        let block = Block::build(1, 0, 0, [0u8; 32], body(results), [0u8; 32]);
        let leaves = block.body.transaction_leaves();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = block.prove_transaction(i);
            assert!(
                Block::verify_transaction(&block.header, leaf, &proof),
                "leaf {i}"
            );
            assert!(!Block::verify_transaction(&block.header, b"forged", &proof));
        }
    }

    #[test]
    fn tampered_result_breaks_commitment() {
        let state_root = [4u8; 32];
        let mut block = Block::build(1, 0, 0, [0u8; 32], body(vec![vec![1], vec![2]]), state_root);
        assert!(block.commitments_valid_with_state(&state_root));
        if let BlockBody::Transactions { results, .. } = &mut block.body {
            results[1] = vec![9];
        }
        assert!(!block.commitments_valid_with_state(&state_root));
    }

    #[test]
    fn proof_from_one_block_fails_on_another() {
        let state_root = [0u8; 32];
        let a = Block::build(1, 0, 0, [0u8; 32], body(vec![vec![1], vec![2]]), state_root);
        let b = Block::build(1, 0, 0, [0u8; 32], body(vec![vec![3], vec![4]]), state_root);
        let proof = a.prove_result(0, &state_root);
        assert!(!Block::verify_result(&b.header, &[1], &proof));
    }
}
