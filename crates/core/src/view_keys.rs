//! Per-view consensus keys and the forgetting protocol (paper §V-D).
//!
//! Every replica holds a *permanent* keypair (its long-term identity) and a
//! *consensus* keypair that is regenerated for every view it participates in.
//! Consensus public keys are certified by the permanent key and published in
//! reconfiguration blocks; the private halves are **destroyed on view
//! change**, so a node compromised after leaving the consortium cannot vouch
//! for blocks in views it used to belong to — the mechanism that prevents the
//! Figure-4 fork.

use smartchain_codec::{Decode, DecodeError, Encode};
use smartchain_crypto::keys::{Backend, PublicKey, SecretKey, Signature};
use smartchain_crypto::sha256;

/// Canonical bytes certified when a permanent key vouches for a consensus
/// key in a given view.
pub fn key_cert_payload(view_id: u64, consensus_key: &PublicKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    b"sc-viewkey".as_slice().encode(&mut out);
    view_id.encode(&mut out);
    consensus_key.to_wire().encode(&mut out);
    out
}

/// A consensus public key certified by its owner's permanent key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CertifiedKey {
    /// The owner's permanent public key.
    pub permanent: PublicKey,
    /// The consensus public key for the view.
    pub consensus: PublicKey,
    /// Signature by `permanent` over [`key_cert_payload`].
    pub cert: Signature,
}

impl CertifiedKey {
    /// Validates the certification for `view_id`.
    pub fn verify(&self, view_id: u64) -> bool {
        self.permanent
            .verify(&key_cert_payload(view_id, &self.consensus), &self.cert)
    }
}

impl Encode for CertifiedKey {
    fn encode(&self, out: &mut Vec<u8>) {
        self.permanent.to_wire().encode(out);
        self.consensus.to_wire().encode(out);
        self.cert.to_wire().encode(out);
    }

    fn encoded_len(&self) -> usize {
        33 + 33 + 65
    }
}

impl Decode for CertifiedKey {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(CertifiedKey {
            permanent: PublicKey::from_wire(&<[u8; 33]>::decode(input)?),
            consensus: PublicKey::from_wire(&<[u8; 33]>::decode(input)?),
            cert: Signature::from_wire(&<[u8; 65]>::decode(input)?),
        })
    }
}

/// A replica's key material: the permanent identity plus the consensus key of
/// the current view. Old consensus secrets are destroyed on rotation.
pub struct KeyStore {
    permanent: SecretKey,
    backend: Backend,
    view_id: u64,
    consensus: SecretKey,
}

impl std::fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyStore")
            .field("permanent", &self.permanent.public_key())
            .field("view_id", &self.view_id)
            .finish_non_exhaustive()
    }
}

impl KeyStore {
    /// Creates a key store from a permanent secret, deriving the view-0
    /// consensus key.
    pub fn new(permanent: SecretKey, backend: Backend) -> KeyStore {
        let consensus = Self::derive(&permanent, backend, 0);
        KeyStore {
            permanent,
            backend,
            view_id: 0,
            consensus,
        }
    }

    fn derive(permanent: &SecretKey, backend: Backend, view_id: u64) -> SecretKey {
        // Deterministic per-(identity, view) derivation keeps simulations
        // reproducible. Real deployments may use fresh randomness — the
        // protocol only requires that old secrets are destroyed.
        let pk = permanent.public_key();
        let mut seed_input = Vec::new();
        seed_input.extend_from_slice(b"sc-consensus-key");
        seed_input.extend_from_slice(pk.as_bytes());
        seed_input.extend_from_slice(&view_id.to_le_bytes());
        // Sign to bind the derivation to the *secret* (public inputs alone
        // would let anyone derive the key).
        let sig = permanent.sign(&seed_input);
        let seed = sha256::digest(sig.as_bytes());
        SecretKey::from_seed(backend, &seed)
    }

    /// The permanent public identity.
    pub fn permanent_public(&self) -> PublicKey {
        self.permanent.public_key()
    }

    /// The permanent secret (for reconfiguration votes).
    pub fn permanent(&self) -> &SecretKey {
        &self.permanent
    }

    /// The view this store currently holds a consensus key for.
    pub fn view_id(&self) -> u64 {
        self.view_id
    }

    /// The current consensus secret key.
    pub fn consensus(&self) -> &SecretKey {
        &self.consensus
    }

    /// Certified public consensus key for `view_id` (current or precomputed
    /// next view during reconfiguration voting).
    pub fn certified_key_for(&self, view_id: u64) -> CertifiedKey {
        let consensus = if view_id == self.view_id {
            self.consensus.clone()
        } else {
            Self::derive(&self.permanent, self.backend, view_id)
        };
        let consensus_pub = consensus.public_key();
        let cert = self
            .permanent
            .sign(&key_cert_payload(view_id, &consensus_pub));
        CertifiedKey {
            permanent: self.permanent.public_key(),
            consensus: consensus_pub,
            cert,
        }
    }

    /// Rotates to `view_id`: derives the new consensus key and **destroys**
    /// the previous one (the forgetting protocol). Rotating backwards is a
    /// no-op — old keys cannot be resurrected.
    pub fn rotate_to(&mut self, view_id: u64) {
        if view_id <= self.view_id {
            return;
        }
        let next = Self::derive(&self.permanent, self.backend, view_id);
        // Overwrite: the old secret is dropped here and cannot be rebuilt
        // without the permanent secret *and* this code path (which refuses
        // to go backwards).
        self.consensus = next;
        self.view_id = view_id;
    }

    /// TEST/ATTACK USE ONLY: re-derives an old view's consensus secret,
    /// modelling an adversary that compromised a machine which *failed to
    /// run the forgetting protocol*. The fork-prevention tests use this to
    /// show the attack works without rotation and fails with it.
    #[doc(hidden)]
    pub fn leak_old_key_for_attack(&self, view_id: u64) -> SecretKey {
        Self::derive(&self.permanent, self.backend, view_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(seed: u8) -> KeyStore {
        KeyStore::new(
            SecretKey::from_seed(Backend::Sim, &[seed; 32]),
            Backend::Sim,
        )
    }

    #[test]
    fn certified_key_verifies() {
        let ks = store(1);
        let ck = ks.certified_key_for(0);
        assert!(ck.verify(0));
        assert!(!ck.verify(1), "cert is view-specific");
    }

    #[test]
    fn rotation_changes_key_and_is_deterministic() {
        let mut a = store(2);
        let mut b = store(2);
        let k0 = a.consensus().public_key();
        a.rotate_to(1);
        b.rotate_to(1);
        assert_ne!(a.consensus().public_key(), k0);
        assert_eq!(a.consensus().public_key(), b.consensus().public_key());
    }

    #[test]
    fn rotation_never_goes_backwards() {
        let mut ks = store(3);
        ks.rotate_to(5);
        let k5 = ks.consensus().public_key();
        ks.rotate_to(2);
        assert_eq!(ks.consensus().public_key(), k5);
        assert_eq!(ks.view_id(), 5);
    }

    #[test]
    fn different_identities_different_keys() {
        let a = store(4);
        let b = store(5);
        assert_ne!(
            a.certified_key_for(0).consensus,
            b.certified_key_for(0).consensus
        );
    }

    #[test]
    fn codec_roundtrip() {
        let ck = store(6).certified_key_for(3);
        let bytes = smartchain_codec::to_bytes(&ck);
        let back: CertifiedKey = smartchain_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
        assert!(back.verify(3));
    }

    #[test]
    fn forged_cert_rejected() {
        let a = store(7);
        let b = store(8);
        let mut ck = a.certified_key_for(0);
        // Swap in another node's permanent key: cert no longer matches.
        ck.permanent = b.permanent_public();
        assert!(!ck.verify(0));
    }
}
