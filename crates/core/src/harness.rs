//! Reusable simulation-cluster builder for SmartChain experiments: wires up
//! [`ChainNode`]s, prospective joiners and closed-loop clients on the
//! discrete-event kernel. Used by the integration tests, the examples and
//! every benchmark binary.

use crate::block::{Genesis, ViewInfo};
use crate::node::{app_payload, ChainMsg, ChainNode, NodeConfig};
use crate::view_keys::KeyStore;
use smartchain_crypto::keys::{Backend, PublicKey, SecretKey};
use smartchain_sim::hw::HwSpec;
use smartchain_sim::{Actor, Cluster, NodeId, Time};
use smartchain_smr::app::Application;
use smartchain_smr::client::{ClientActor, ClientConfig, RequestFactory};
use smartchain_smr::ordering::{SmrEnvelope, SmrMsg};
use smartchain_smr::types::{Reply, Request};
use std::collections::HashMap;

impl SmrEnvelope for ChainMsg {
    fn from_smr(msg: SmrMsg) -> Self {
        ChainMsg::Smr(msg)
    }
    fn as_reply(&self) -> Option<&Reply> {
        match self {
            ChainMsg::Smr(SmrMsg::Reply(r)) => Some(r),
            _ => None,
        }
    }
    fn envelope_size(&self) -> usize {
        self.wire_size()
    }
}

/// Wraps an inner factory's payloads in the SmartChain app envelope.
pub struct EnvelopeFactory {
    inner: Box<dyn RequestFactory>,
}

impl EnvelopeFactory {
    /// Wraps `inner`.
    pub fn new(inner: Box<dyn RequestFactory>) -> EnvelopeFactory {
        EnvelopeFactory { inner }
    }
}

impl RequestFactory for EnvelopeFactory {
    fn make(&mut self, client: u64, seq: u64) -> Request {
        let mut req = self.inner.make(client, seq);
        // The signature produced by the inner factory covers the app bytes;
        // nodes verify accordingly (see `verify_envelope_signature`).
        req.payload = app_payload(&req.payload);
        req
    }
}

/// Per-node schedule for prospective members.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeSchedule {
    /// Ask to join at this time.
    pub join_at: Option<Time>,
    /// Ask to leave at this time.
    pub leave_at: Option<Time>,
}

/// Constructor for per-client request factories.
type FactoryMaker = Box<dyn Fn() -> Box<dyn RequestFactory>>;

/// Constructor for application instances (receives the genesis app data).
type AppMaker<A> = Box<dyn Fn(&[u8]) -> A>;

/// Builder for a SmartChain simulation cluster.
pub struct ChainClusterBuilder<A: Application> {
    make_app: AppMaker<A>,
    genesis_members: usize,
    extra_nodes: Vec<NodeSchedule>,
    node_config: NodeConfig,
    hw: HwSpec,
    seed: u64,
    checkpoint_period: u64,
    app_data: Vec<u8>,
    client_actors: usize,
    logical_per_actor: u32,
    requests_per_client: Option<u64>,
    client_factory: FactoryMaker,
    durable_quorum: bool,
    key_seed: u8,
    exclusion: Option<(Time, usize)>,
    backend: Backend,
}

impl<A: Application> ChainClusterBuilder<A> {
    /// Starts a builder with `n` genesis members whose application instances
    /// come from `make_app` (receiving the genesis app data).
    pub fn new(n: usize, make_app: impl Fn(&[u8]) -> A + 'static) -> ChainClusterBuilder<A> {
        ChainClusterBuilder {
            make_app: Box::new(make_app),
            genesis_members: n,
            extra_nodes: Vec::new(),
            node_config: NodeConfig::default(),
            hw: HwSpec::test_fast(),
            seed: 42,
            checkpoint_period: 1_000_000, // effectively off unless set
            app_data: Vec::new(),
            client_actors: 1,
            logical_per_actor: 1,
            requests_per_client: Some(10),
            client_factory: Box::new(|| {
                Box::new(smartchain_smr::client::CounterFactory::new(false))
            }),
            durable_quorum: false,
            key_seed: 50,
            exclusion: None,
            backend: Backend::Sim,
        }
    }

    /// Sets the node configuration.
    pub fn node_config(mut self, config: NodeConfig) -> Self {
        self.node_config = config;
        self
    }

    /// Sets the hardware model.
    pub fn hw(mut self, hw: HwSpec) -> Self {
        self.hw = hw;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the checkpoint period `z` (blocks).
    pub fn checkpoint_period(mut self, z: u64) -> Self {
        self.checkpoint_period = z;
        self
    }

    /// Sets genesis application data.
    pub fn app_data(mut self, data: Vec<u8>) -> Self {
        self.app_data = data;
        self
    }

    /// Adds a prospective node with a join/leave schedule.
    pub fn extra_node(mut self, schedule: NodeSchedule) -> Self {
        self.extra_nodes.push(schedule);
        self
    }

    /// Configures the client fleet.
    pub fn clients(
        mut self,
        actors: usize,
        logical_per_actor: u32,
        requests_per_client: Option<u64>,
    ) -> Self {
        self.client_actors = actors;
        self.logical_per_actor = logical_per_actor;
        self.requests_per_client = requests_per_client;
        self
    }

    /// Uses a custom request factory for clients.
    pub fn client_factory(
        mut self,
        factory: impl Fn() -> Box<dyn RequestFactory> + 'static,
    ) -> Self {
        self.client_factory = Box::new(factory);
        self
    }

    /// Requires durable (2f+1) reply quorums at clients.
    pub fn durable_quorum(mut self, durable: bool) -> Self {
        self.durable_quorum = durable;
        self
    }

    /// At time `at`, every member advocates excluding genesis member
    /// `target` (the paper's Fig. 5b flow).
    pub fn exclude_member(mut self, at: Time, target: usize) -> Self {
        self.exclusion = Some((at, target));
        self
    }

    /// Selects the signature backend for replica keys. [`Backend::Sim`]
    /// (default) keeps big sweeps fast; [`Backend::Ed25519`] runs the whole
    /// stack on real RFC 8032 crypto (slower, used by end-to-end tests).
    pub fn crypto_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Builds the cluster.
    pub fn build(self) -> ChainCluster {
        let total_nodes = self.genesis_members + self.extra_nodes.len();
        // Key stores for all (potential) members.
        let stores: Vec<KeyStore> = (0..total_nodes)
            .map(|i| {
                KeyStore::new(
                    SecretKey::from_seed(self.backend, &[i as u8 + self.key_seed; 32]),
                    self.backend,
                )
            })
            .collect();
        let genesis_view = ViewInfo {
            id: 0,
            members: stores[..self.genesis_members]
                .iter()
                .map(|s| s.certified_key_for(0))
                .collect(),
        };
        let genesis = Genesis {
            view: genesis_view,
            checkpoint_period: self.checkpoint_period,
            app_data: self.app_data.clone(),
        };
        let directory: HashMap<PublicKey, NodeId> = stores
            .iter()
            .enumerate()
            .map(|(i, s)| (s.permanent_public(), i))
            .collect();
        let target_pk = self
            .exclusion
            .map(|(_, idx)| genesis.view.members[idx].permanent);
        let mut actors: Vec<Box<dyn Actor<ChainMsg>>> = Vec::new();
        for (i, store) in stores.into_iter().enumerate() {
            let schedule = if i < self.genesis_members {
                NodeSchedule::default()
            } else {
                self.extra_nodes[i - self.genesis_members]
            };
            let my_pk = store.permanent_public();
            let mut node = ChainNode::new(
                store,
                genesis.clone(),
                (self.make_app)(&self.app_data),
                self.node_config,
                directory.clone(),
                schedule.join_at,
                schedule.leave_at,
            );
            if let (Some((at, _)), Some(target)) = (self.exclusion, target_pk) {
                // Everyone except the target advocates the removal.
                if i < self.genesis_members && my_pk != target {
                    node.schedule_exclusion(at, target);
                }
            }
            actors.push(Box::new(node));
        }
        let replica_nodes: Vec<NodeId> = (0..self.genesis_members).collect();
        let f = (self.genesis_members - 1) / 3;
        let mut client_nodes = Vec::new();
        for c in 0..self.client_actors {
            let node = total_nodes + c;
            client_nodes.push(node);
            let factory = EnvelopeFactory::new((self.client_factory)());
            actors.push(Box::new(ClientActor::<ChainMsg>::new(
                node,
                replica_nodes.clone(),
                f,
                ClientConfig {
                    logical_clients: self.logical_per_actor,
                    requests_per_client: self.requests_per_client,
                    durable_quorum: self.durable_quorum,
                    ..ClientConfig::default()
                },
                Box::new(factory),
            )));
        }
        ChainCluster {
            cluster: Cluster::new(actors, self.hw, self.seed),
            replicas: self.genesis_members,
            extra: self.extra_nodes.len(),
            client_nodes,
        }
    }
}

/// A built SmartChain simulation cluster.
pub struct ChainCluster {
    cluster: Cluster<ChainMsg>,
    replicas: usize,
    extra: usize,
    client_nodes: Vec<NodeId>,
}

impl ChainCluster {
    /// Runs the simulation until virtual `deadline`.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        self.cluster.run_until(deadline)
    }

    /// Kernel access (fault injection, accounting).
    pub fn sim(&mut self) -> &mut smartchain_sim::Sim<ChainMsg> {
        self.cluster.sim()
    }

    /// Number of genesis replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas
    }

    /// Number of prospective extra nodes.
    pub fn extra_count(&self) -> usize {
        self.extra
    }

    /// Simulation node ids of the client actors.
    pub fn client_nodes(&self) -> &[NodeId] {
        &self.client_nodes
    }

    /// Typed access to a chain node.
    pub fn node<A: Application>(&self, id: NodeId) -> &ChainNode<A> {
        self.cluster
            .actor(id)
            .as_any()
            .downcast_ref::<ChainNode<A>>()
            .expect("chain node at this id")
    }

    /// Typed access to a client actor.
    pub fn client(&self, id: NodeId) -> &ClientActor<ChainMsg> {
        self.cluster
            .actor(id)
            .as_any()
            .downcast_ref::<ClientActor<ChainMsg>>()
            .expect("client actor at this id")
    }

    /// Total requests completed across all clients.
    pub fn total_completed(&self) -> u64 {
        self.client_nodes
            .iter()
            .map(|&c| self.client(c).completed())
            .sum()
    }
}
