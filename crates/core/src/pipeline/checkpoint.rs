//! Side stage — chain-linked checkpoints (§V-B3): a snapshot every `z`
//! blocks, stored outside the chain, referenced by later headers.
//!
//! With `stagger_checkpoints` (paper §VI / Dura-SMaRt's sequential
//! checkpoints) replica `r` snapshots at an offset of `r·z/n` blocks, so the
//! whole cluster never stalls at once — the mechanism behind the shallow
//! (vs. catastrophic) Fig. 7 dips.

use crate::messages::ChainMsg;
use crate::node::ChainNode;
use crate::pipeline::persist::Persistence;
use smartchain_sim::Ctx;
use smartchain_smr::app::Application;

impl<A: Application> ChainNode<A> {
    /// Modeled application state size (configured, else the real snapshot).
    pub(crate) fn state_size(&self) -> u64 {
        if self.config.state_size > 0 {
            self.config.state_size
        } else {
            self.app.take_snapshot().len() as u64
        }
    }

    /// Called by the persist stage when block `number` completes: takes a
    /// checkpoint if the (possibly staggered) period elapsed.
    pub(crate) fn maybe_checkpoint(&mut self, number: u64, ctx: &mut Ctx<'_, ChainMsg>) {
        let z = self.genesis.checkpoint_period;
        if z == 0 {
            return;
        }
        // Optionally offset the trigger per replica so snapshot stalls
        // never align cluster-wide (paper §VI; Dura-SMaRt §II-C2).
        let offset = if self.config.stagger_checkpoints {
            let (me, n) = self
                .member
                .as_ref()
                .map(|m| (self.my_replica_id().unwrap_or(0) as u64, m.view.n() as u64))
                .unwrap_or((0, 1));
            me * z / n.max(1)
        } else {
            0
        };
        if (number + offset).is_multiple_of(z) {
            self.take_checkpoint(number, ctx);
        }
    }

    /// Serializes the application state (stalling the sequential lane for
    /// the modeled duration), records the snapshot, and lets the ledger
    /// truncate its replay obligation.
    pub(crate) fn take_checkpoint(&mut self, covered_block: u64, ctx: &mut Ctx<'_, ChainMsg>) {
        self.checkpoint_log.push((ctx.now(), covered_block));
        // Serialize once; the modeled size falls back to the real length.
        let snapshot = self.app.take_snapshot();
        let size = if self.config.state_size > 0 {
            self.config.state_size
        } else {
            snapshot.len() as u64
        };
        ctx.charge(self.config.snapshot_ns_per_byte * size);
        if self.config.persistence != Persistence::Memory {
            ctx.disk_write(size as usize, false, 0);
        }
        if let Some(m) = self.member.as_mut() {
            m.snapshot = Some((covered_block, snapshot));
            m.ledger.set_last_checkpoint(covered_block);
        }
    }
}
