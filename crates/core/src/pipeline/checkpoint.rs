//! Side stage — chain-linked checkpoints (§V-B3): a snapshot every `z`
//! blocks, stored outside the chain, referenced by later headers.
//!
//! With `stagger_checkpoints` (paper §VI / Dura-SMaRt's sequential
//! checkpoints) replica `r` snapshots at an offset of `r·z/n` blocks, so the
//! whole cluster never stalls at once — the mechanism behind the shallow
//! (vs. catastrophic) Fig. 7 dips.
//!
//! Snapshot *durability* is modeled, not assumed: the snapshot's device
//! write is tracked while in flight, so a crash before completion falls
//! back to the previous durable snapshot (Async rung: modeled completion
//! time; Sync rung: an explicit fsync completion event). The snapshot also
//! carries the ordering core's per-client dedup frontier, so a joiner
//! anchored on it can reject retransmissions of requests inside the
//! summarized prefix.

use crate::block::BlockHeader;
use crate::messages::ChainMsg;
use crate::node::ChainNode;
use crate::pipeline::persist::Persistence;
use crate::pipeline::KIND_SNAPSHOT;
use smartchain_codec::{Decode, DecodeError, Encode};
use smartchain_crypto::Hash;
use smartchain_merkle as merkle;
use smartchain_sim::{Ctx, Time};
use smartchain_smr::app::Application;

/// The commitment a snapshot is verified against at install time: the
/// header of the covered block (whose `hash_results` folds the state root
/// in), plus the opening `(results_root, state_root)` pair. The header is
/// what the quorum's PERSIST certificate / decision proof signed, so a
/// receiver that trusts the covered block's hash can check shipped state
/// chunk-by-chunk without trusting the shipper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotCommit {
    /// Header of the snapshot's covered block.
    pub header: BlockHeader,
    /// Merkle root of the covered block's results list.
    pub results_root: Hash,
    /// Merkle root of the application state after the covered block
    /// ([`merkle::chunked_root`] with [`merkle::STATE_CHUNK`]-byte chunks).
    pub state_root: Hash,
}

impl SnapshotCommit {
    /// The commitment opens the header: `hash_results` really is the node
    /// hash of the claimed results root and state root.
    pub fn opens_header(&self) -> bool {
        self.header.hash_results == merkle::node_hash(&self.results_root, &self.state_root)
    }
}

impl Encode for SnapshotCommit {
    fn encode(&self, out: &mut Vec<u8>) {
        self.header.encode(out);
        self.results_root.encode(out);
        self.state_root.encode(out);
    }

    fn encoded_len(&self) -> usize {
        self.header.encoded_len() + 32 + 32
    }
}

impl Decode for SnapshotCommit {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(SnapshotCommit {
            header: BlockHeader::decode(input)?,
            results_root: <[u8; 32]>::decode(input)?,
            state_root: <[u8; 32]>::decode(input)?,
        })
    }
}

/// A checkpoint snapshot: the serialized application state, the block it
/// covers, and the ordering core's duplicate-filter frontier at that block.
#[derive(Clone, Debug)]
pub(crate) struct SnapshotState {
    /// Highest block the snapshot summarizes.
    pub(crate) covered: u64,
    /// Serialized application state.
    pub(crate) state: Vec<u8>,
    /// Per-client highest delivered sequence number at `covered` — shipped
    /// with the snapshot so a snapshot-anchored joiner's dedup filter covers
    /// the summarized prefix.
    pub(crate) dedup: Vec<(u64, u64)>,
    /// The certified commitment receivers verify the state against
    /// (`None` only for legacy snapshots whose covered block was already
    /// truncated when the checkpoint was taken).
    pub(crate) commit: Option<SnapshotCommit>,
}

impl<A: Application> ChainNode<A> {
    /// Modeled application state size (configured, else the real snapshot).
    pub(crate) fn state_size(&self) -> u64 {
        if self.config.state_size > 0 {
            self.config.state_size
        } else {
            self.app.take_snapshot().len() as u64
        }
    }

    /// Called by the produce stage right after block `number` executes:
    /// takes a checkpoint if the (possibly staggered) period elapsed. The
    /// trigger sits at EXECUTE time, not reply release, so the snapshot
    /// captures the application state at exactly block `number` on every
    /// replica — with α > 1 later blocks may otherwise already be executing,
    /// and a release-time covered point would be a replica-local timing
    /// artifact that diverges the `last_checkpoint` header field.
    pub(crate) fn maybe_checkpoint(&mut self, number: u64, ctx: &mut Ctx<'_, ChainMsg>) {
        let z = self.genesis.checkpoint_period;
        if z == 0 {
            return;
        }
        // Optionally offset the trigger per replica so snapshot stalls
        // never align cluster-wide (paper §VI; Dura-SMaRt §II-C2).
        let offset = if self.config.stagger_checkpoints {
            let (me, n) = self
                .member
                .as_ref()
                .map(|m| (self.my_replica_id().unwrap_or(0) as u64, m.view.n() as u64))
                .unwrap_or((0, 1));
            me * z / n.max(1)
        } else {
            0
        };
        if (number + offset).is_multiple_of(z) {
            self.take_checkpoint(number, ctx);
        }
    }

    /// Serializes the application state (stalling the sequential lane for
    /// the modeled duration), records the snapshot together with the dedup
    /// frontier, starts the device write the configured rung demands, and
    /// lets the ledger truncate its replay obligation.
    pub(crate) fn take_checkpoint(&mut self, covered_block: u64, ctx: &mut Ctx<'_, ChainMsg>) {
        self.checkpoint_log.push((ctx.now(), covered_block));
        // An earlier snapshot whose modeled (Async) write completed in the
        // meantime is durable now — resolve it so the fallback chain below
        // advances instead of pinning the very first snapshot forever (and,
        // with compaction on, so the log prefix it covers can be truncated).
        let mut resolved_covered = None;
        if let Some(m) = self.member.as_mut() {
            if let Some(at) = m.snapshot_inflight {
                if at != Time::MAX && ctx.now() >= at {
                    m.snapshot_inflight = None;
                    m.snapshot_fallback = None;
                    resolved_covered = m.snapshot.as_ref().map(|s| s.covered);
                }
            }
        }
        if let Some(covered) = resolved_covered {
            self.maybe_compact(covered);
        }
        // Serialize once; the modeled size falls back to the real length.
        let snapshot = self.app.take_snapshot();
        let size = if self.config.state_size > 0 {
            self.config.state_size
        } else {
            snapshot.len() as u64
        };
        let serialize_ns = self.config.snapshot_ns_per_byte * size;
        ctx.charge(serialize_ns);
        // The in-flight window: when (in virtual time) the snapshot's device
        // write completes. Memory rung never writes; Async completes after
        // the modeled streaming write (an approximation that ignores disk
        // queueing — buffered writes carry no completion event to wait on);
        // Sync completes at the explicit fsync OpDone.
        let inflight = match self.config.persistence {
            Persistence::Memory => None,
            Persistence::Async => {
                ctx.disk_write(size as usize, false, 0);
                Some(ctx.now() + serialize_ns + ctx.hw().disk.write_time(size as usize, false))
            }
            Persistence::Sync => {
                ctx.disk_write(size as usize, true, KIND_SNAPSHOT | covered_block);
                Some(Time::MAX)
            }
        };
        let Some(m) = self.member.as_mut() else {
            return;
        };
        // The frontier must describe exactly the snapshotted state: derive
        // it from the chain (plus the summarized prefix carried by the
        // previous snapshot — its dedup covers blocks up to its own covered
        // block, so only the suffix after it needs scanning). The ordering
        // core's own frontier can run ahead of execution — batches sitting
        // in the delivery queue are already marked delivered there but are
        // not in this snapshot.
        let mut frontier: std::collections::BTreeMap<u64, u64> = m
            .snapshot
            .as_ref()
            .map(|s| s.dedup.iter().copied().collect())
            .unwrap_or_default();
        let scan_from = m.snapshot.as_ref().map(|s| s.covered + 1).unwrap_or(1);
        for block in m.ledger.blocks_from(scan_from).unwrap_or_default() {
            if let crate::block::BlockBody::Transactions { requests, .. } = &block.body {
                for req in requests {
                    frontier
                        .entry(req.client)
                        .and_modify(|s| *s = (*s).max(req.seq))
                        .or_insert(req.seq);
                }
            }
        }
        // The snapshot is taken at EXECUTE time of the covered block, so its
        // chunked root is exactly the state root the block's header bound —
        // capture the header as the commitment receivers verify against.
        let commit = m
            .ledger
            .block(covered_block)
            .ok()
            .flatten()
            .map(|block| SnapshotCommit {
                header: block.header,
                results_root: block.body.results_root(),
                state_root: merkle::chunked_root(&snapshot, merkle::STATE_CHUNK),
            });
        debug_assert!(
            commit.as_ref().is_none_or(SnapshotCommit::opens_header),
            "snapshot root must open the covered header"
        );
        let new = SnapshotState {
            covered: covered_block,
            state: snapshot,
            dedup: frontier.into_iter().collect(),
            commit,
        };
        // The superseded snapshot becomes the crash fallback, tagged with
        // when its own write completed/completes (0 = already durable): a
        // crash restores the newest snapshot whose write had finished, even
        // if that snapshot was superseded mid-flight.
        if let Some(prev) = m.snapshot.take() {
            let prev_at = m.snapshot_inflight.take().unwrap_or(0);
            let keep_old = m
                .snapshot_fallback
                .as_ref()
                .is_some_and(|&(_, at)| at == 0 && prev_at == Time::MAX);
            if !keep_old {
                m.snapshot_fallback = Some((prev, prev_at));
            }
        }
        m.snapshot = Some(new);
        m.snapshot_inflight = inflight;
        m.ledger.set_last_checkpoint(covered_block);
        // ∞-persistence: the snapshot is never "durable" (nothing is), so
        // the compaction point is the snapshot itself — a crash loses log
        // and snapshot together either way.
        if self.config.persistence == Persistence::Memory {
            self.maybe_compact(covered_block);
        }
    }

    /// Checkpoint-driven log truncation: once a checkpoint covering block
    /// `covered` is durable, the records below it are replay-dead — drop
    /// them so restart cost tracks the checkpoint interval, not the chain
    /// length. Opt-in (`compact_after_checkpoint`): full-history ledgers
    /// remain the default observable behavior.
    pub(crate) fn maybe_compact(&mut self, covered: u64) {
        if !self.config.compact_after_checkpoint || covered == 0 {
            return;
        }
        if let Some(m) = self.member.as_mut() {
            m.ledger.compact_to(covered).expect("ledger compaction");
        }
    }

    /// [`KIND_SNAPSHOT`] completion (Sync rung): the snapshot whose fsync
    /// this was is durable. The token carries the covered block, so a
    /// completion can only promote the snapshot it belongs to — the current
    /// one, or a superseded one now serving as the crash fallback.
    pub(crate) fn snapshot_write_done(&mut self, covered: u64, _ctx: &mut Ctx<'_, ChainMsg>) {
        let mut durable_now = false;
        if let Some(m) = self.member.as_mut() {
            if m.snapshot.as_ref().is_some_and(|s| s.covered == covered) {
                m.snapshot_inflight = None;
                m.snapshot_fallback = None;
                durable_now = true;
            } else if let Some((fallback, at)) = m.snapshot_fallback.as_mut() {
                if fallback.covered == covered {
                    *at = 0;
                }
            }
        }
        if durable_now {
            self.maybe_compact(covered);
        }
    }
}
