//! Side stage — state transfer: snapshot + block suffix from peers (joins,
//! recoveries, lagging replicas), and crash recovery from the local ledger.
//!
//! Only one designated replica ships the full state; the rest send
//! hash-sized acknowledgements (the PBFT optimization). The shipper is the
//! highest-id member other than the requester — never the leader, whose NIC
//! would wedge behind a multi-second transfer and stall ordering
//! cluster-wide.

use crate::block::{Block, BlockBody, ViewInfo};
use crate::messages::ChainMsg;
use crate::node::ChainNode;
use crate::pipeline::checkpoint::SnapshotState;
use crate::pipeline::persist::Persistence;
use crate::pipeline::unwrap_app_payload;
use smartchain_sim::{Ctx, NodeId};
use smartchain_smr::app::Application;
use smartchain_smr::ordering::OrderingCore;
use smartchain_smr::types::Request;

impl<A: Application> ChainNode<A> {
    /// Asks the membership for everything after our chain tip.
    pub(crate) fn start_state_transfer(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let from_block = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            if m.syncing {
                return;
            }
            m.syncing = true;
            m.ledger.height() + 1
        };
        let msg = ChainMsg::StateReq { from_block };
        self.send_to_members(&msg, ctx);
    }

    /// Serves a peer's state request (fully, if we are the designated
    /// shipper; as an acknowledgement otherwise).
    pub(crate) fn serve_state_request(
        &mut self,
        from_node: NodeId,
        from_block: u64,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let Some(m) = self.member.as_ref() else {
            return;
        };
        if m.syncing {
            return;
        }
        let me = self.my_replica_id().unwrap_or(usize::MAX);
        // The highest-id member other than the requester ships the full
        // state: picking the *leader* (id 0) would wedge its NIC behind a
        // multi-second transfer and stall ordering cluster-wide.
        let requester_id = (0..m.view.n()).find(|&r| self.node_of(&m.view, r) == Some(from_node));
        let candidate = if requester_id == Some(m.view.n() - 1) {
            m.view.n().saturating_sub(2)
        } else {
            m.view.n() - 1
        };
        let full = me == candidate;
        let snapshot = m.snapshot.clone();
        let snap_covered = snapshot.as_ref().map(|s| s.covered).unwrap_or(0);
        // Ship only what the requester is missing: the snapshot (if it
        // covers part of the gap) plus blocks after max(snapshot, what the
        // requester already has). Re-shipping from block 1 on every catch-up
        // round would make a lagging replica chase the chain forever.
        let start = (snap_covered + 1).max(from_block.max(1));
        let snapshot = if snap_covered + 1 > from_block {
            snapshot
        } else {
            None
        };
        // The hash of the snapshot's covered block lets the requester chain
        // the shipped suffix onto the summarized prefix (anchor-aware: the
        // shipper itself may have joined through a fast-forward, in which
        // case record `covered` is an anchor marker rather than a block).
        let snapshot_anchor = snapshot
            .as_ref()
            .and_then(|s| m.ledger.chain_hash_at(s.covered));
        let blocks = m.ledger.blocks_from(start).unwrap_or_default();
        let blocks_size: usize = blocks.iter().map(Block::wire_size).sum();
        let modeled = if full {
            let snap_size = if snapshot.is_some() {
                self.state_size()
            } else {
                0
            };
            snap_size + blocks_size as u64
        } else {
            64
        };
        if full && self.config.persistence != Persistence::Memory {
            ctx.disk_read(modeled as usize, 0);
        }
        let (snapshot, snapshot_dedup) = if full {
            match snapshot {
                Some(s) => (Some((s.covered, s.state)), s.dedup),
                None => (None, Vec::new()),
            }
        } else {
            (None, Vec::new())
        };
        let msg = ChainMsg::StateRep {
            snapshot,
            snapshot_anchor: if full { snapshot_anchor } else { None },
            snapshot_dedup,
            blocks: if full { blocks } else { Vec::new() },
            modeled_size: modeled,
            full,
        };
        let size = msg.wire_size();
        ctx.send(from_node, msg, size);
    }

    /// Installs a full state reply: snapshot, then block replay, then view
    /// catch-up.
    pub(crate) fn install_state(
        &mut self,
        snapshot: Option<(u64, Vec<u8>)>,
        snapshot_anchor: Option<smartchain_crypto::Hash>,
        snapshot_dedup: Vec<(u64, u64)>,
        blocks: Vec<Block>,
        modeled_size: u64,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            if !m.syncing {
                return;
            }
        }
        ctx.charge(self.config.install_ns_per_byte * modeled_size);
        if let Some((covered, state)) = snapshot {
            self.app.install_snapshot(&state);
            // The received snapshot must reach the LOCAL device to survive
            // this replica's crashes — same durability model as a locally
            // taken checkpoint (take_checkpoint).
            let size = if self.config.state_size > 0 {
                self.config.state_size
            } else {
                state.len() as u64
            };
            let inflight = match self.config.persistence {
                Persistence::Memory => None,
                Persistence::Async => {
                    ctx.disk_write(size as usize, false, 0);
                    Some(ctx.now() + ctx.hw().disk.write_time(size as usize, false))
                }
                Persistence::Sync => {
                    ctx.disk_write(
                        size as usize,
                        true,
                        crate::pipeline::KIND_SNAPSHOT | covered,
                    );
                    Some(smartchain_sim::Time::MAX)
                }
            };
            if let Some(m) = self.member.as_mut() {
                if covered > m.ledger.height() {
                    // The snapshot summarizes blocks we never had: fast-
                    // forward the ledger through it so the shipped suffix
                    // chains on.
                    if let Some(anchor) = snapshot_anchor {
                        m.ledger
                            .install_checkpoint_anchor(covered, anchor)
                            .expect("checkpoint anchor installs");
                    }
                }
                // The shipped dedup frontier covers the summarized prefix:
                // without it, a retransmission of a request the snapshot
                // already contains would be re-ordered and fork this
                // replica's delivered sequence.
                for &(client, seq) in &snapshot_dedup {
                    m.core.note_delivered(client, seq);
                }
                m.snapshot = Some(SnapshotState {
                    covered,
                    state,
                    dedup: snapshot_dedup,
                });
                // The installed snapshot replaces whatever local write was
                // in flight; its own write is tracked like a checkpoint's
                // (a crash before completion falls back to nothing — the
                // replica re-syncs).
                m.snapshot_inflight = inflight;
                m.snapshot_fallback = None;
                m.ledger.set_last_checkpoint(covered);
            }
        }
        let mut new_view: Option<ViewInfo> = None;
        for block in blocks {
            let skip = self
                .member
                .as_ref()
                .is_some_and(|m| block.header.number <= m.ledger.height());
            if skip {
                continue;
            }
            // Blocks the installed snapshot already summarizes must not
            // re-execute on top of it (they can be shipped when the sender's
            // snapshot ran ahead of this replica's surviving ledger prefix);
            // they still append and feed the duplicate filter.
            let in_snapshot = self
                .member
                .as_ref()
                .and_then(|m| m.snapshot.as_ref())
                .is_some_and(|s| block.header.number <= s.covered);
            match &block.body {
                BlockBody::Transactions { requests, .. } => {
                    for req in requests {
                        if let Some(m) = self.member.as_mut() {
                            m.core.note_delivered(req.client, req.seq);
                        }
                        if in_snapshot {
                            continue;
                        }
                        if let Some(bytes) = unwrap_app_payload(&req.payload) {
                            let inner = Request {
                                client: req.client,
                                seq: req.seq,
                                payload: bytes.to_vec(),
                                signature: req.signature,
                            };
                            let _ = self.app.execute(&inner);
                        }
                    }
                }
                BlockBody::Reconfiguration { new_view: v, .. } => {
                    new_view = Some(v.clone());
                }
            }
            if let Some(m) = self.member.as_mut() {
                let _ = m.ledger.append(&block);
            }
        }
        if let Some(v) = new_view {
            let my_pk = self.keys.permanent_public();
            if v.position_of(&my_pk).is_some() {
                self.keys.rotate_to(v.id);
                let height = self.member.as_ref().map(|m| m.ledger.height()).unwrap_or(0);
                if let Some(m) = self.member.as_mut() {
                    let me = v.position_of(&my_pk).expect("member");
                    m.generation += 1;
                    m.view = v;
                    m.core = OrderingCore::new(
                        me,
                        m.view.to_consensus_view(),
                        self.keys.consensus().clone(),
                        self.config.ordering,
                        height,
                    );
                }
                self.reseed_dedup_from_ledger();
            } else {
                self.member = None;
                return;
            }
        }
        if let Some(m) = self.member.as_mut() {
            let height = m.ledger.height();
            m.core.fast_forward(height);
            m.syncing = false;
        }
    }

    /// Rebuilds the ordering core's duplicate filter from the whole local
    /// chain plus the current snapshot's dedup frontier (used whenever a
    /// fresh core is paired with replayed history — the snapshot frontier is
    /// what covers a summarized prefix whose blocks we never held).
    pub(crate) fn reseed_dedup_from_ledger(&mut self) {
        let Some(m) = self.member.as_mut() else {
            return;
        };
        if let Some(snapshot) = &m.snapshot {
            for &(client, seq) in &snapshot.dedup {
                m.core.note_delivered(client, seq);
            }
        }
        let blocks = m.ledger.blocks_from(1).unwrap_or_default();
        for block in &blocks {
            if let BlockBody::Transactions { requests, .. } = &block.body {
                for req in requests {
                    m.core.note_delivered(req.client, req.seq);
                }
            }
        }
    }

    /// Crash recovery: volatile pipeline state is gone; reinstall the last
    /// durable snapshot (if any), replay the surviving ledger suffix into
    /// the application, fast-forward the core, and fetch the lost tail from
    /// peers.
    pub(crate) fn recover_from_ledger(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        self.app.reset();
        let replay = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            m.delivery_queue.clear();
            m.open.clear();
            m.pending_reconfig = None;
            m.reconfig_install = None;
            m.persist_stash.clear();
            m.verify.clear();
            m.timer_armed = false;
            m.syncing = false;
            // The crash dropped the engine's non-durable suffix; re-derive
            // the chain tail from what actually survived. This is where the
            // persistence ladder becomes observable: a Sync replica replays
            // almost everything locally, an Async/Memory replica must fetch
            // the lost suffix from its peers.
            m.ledger.reload().expect("ledger reload");
            // Checkpoints only reach the disk on the non-Memory rungs
            // (take_checkpoint); under ∞-persistence the snapshot was RAM
            // and died with it.
            if self.config.persistence == Persistence::Memory {
                m.snapshot = None;
            } else if let Some(covered) = m.snapshot.as_ref().map(|s| s.covered) {
                m.ledger.set_last_checkpoint(covered);
            }
            m.ledger.blocks_from(1).unwrap_or_default()
        };
        // A surviving snapshot restores the (possibly anchor-summarized)
        // prefix — state, and the dedup frontier for requests inside it;
        // blocks it covers must not re-execute on top of it.
        let mut replay_from = 1u64;
        if let Some(snapshot) = self.member.as_ref().and_then(|m| m.snapshot.clone()) {
            self.app.install_snapshot(&snapshot.state);
            replay_from = snapshot.covered + 1;
            if let Some(m) = self.member.as_mut() {
                for &(client, seq) in &snapshot.dedup {
                    m.core.note_delivered(client, seq);
                }
            }
        }
        let mut replayed = 0u64;
        for block in &replay {
            if let BlockBody::Transactions { requests, .. } = &block.body {
                for req in requests {
                    if let Some(m) = self.member.as_mut() {
                        m.core.note_delivered(req.client, req.seq);
                    }
                    if block.header.number < replay_from {
                        continue; // state already inside the snapshot
                    }
                    if let Some(bytes) = unwrap_app_payload(&req.payload) {
                        let inner = Request {
                            client: req.client,
                            seq: req.seq,
                            payload: bytes.to_vec(),
                            signature: req.signature,
                        };
                        let _ = self.app.execute(&inner);
                        replayed += 1;
                    }
                }
            }
        }
        ctx.charge(self.config.execute_ns * replayed);
        if let Some(m) = self.member.as_mut() {
            let height = m.ledger.height();
            m.core.fast_forward(height);
        }
        self.start_state_transfer(ctx);
    }
}
