//! Side stage — state transfer: snapshot + block suffix from peers (joins,
//! recoveries, lagging replicas), and crash recovery from the local ledger.
//!
//! Only one designated replica ships the full state; the rest send
//! hash-sized acknowledgements (the PBFT optimization). The shipper is the
//! highest-id member other than the requester — never the leader, whose NIC
//! would wedge behind a multi-second transfer and stall ordering
//! cluster-wide.

use crate::block::{Block, BlockBody, ViewInfo};
use crate::messages::ChainMsg;
use crate::node::ChainNode;
use crate::pipeline::persist::Persistence;
use crate::pipeline::unwrap_app_payload;
use smartchain_sim::{Ctx, NodeId};
use smartchain_smr::app::Application;
use smartchain_smr::ordering::OrderingCore;
use smartchain_smr::types::Request;

impl<A: Application> ChainNode<A> {
    /// Asks the membership for everything after our chain tip.
    pub(crate) fn start_state_transfer(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let from_block = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            if m.syncing {
                return;
            }
            m.syncing = true;
            m.ledger.height() + 1
        };
        let msg = ChainMsg::StateReq { from_block };
        self.send_to_members(&msg, ctx);
    }

    /// Serves a peer's state request (fully, if we are the designated
    /// shipper; as an acknowledgement otherwise).
    pub(crate) fn serve_state_request(
        &mut self,
        from_node: NodeId,
        from_block: u64,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let Some(m) = self.member.as_ref() else {
            return;
        };
        if m.syncing {
            return;
        }
        let me = self.my_replica_id().unwrap_or(usize::MAX);
        // The highest-id member other than the requester ships the full
        // state: picking the *leader* (id 0) would wedge its NIC behind a
        // multi-second transfer and stall ordering cluster-wide.
        let requester_id = (0..m.view.n()).find(|&r| self.node_of(&m.view, r) == Some(from_node));
        let candidate = if requester_id == Some(m.view.n() - 1) {
            m.view.n().saturating_sub(2)
        } else {
            m.view.n() - 1
        };
        let full = me == candidate;
        let snapshot = m.snapshot.clone();
        let snap_covered = snapshot.as_ref().map(|(b, _)| *b).unwrap_or(0);
        // Ship only what the requester is missing: the snapshot (if it
        // covers part of the gap) plus blocks after max(snapshot, what the
        // requester already has). Re-shipping from block 1 on every catch-up
        // round would make a lagging replica chase the chain forever.
        let start = (snap_covered + 1).max(from_block.max(1));
        let snapshot = if snap_covered + 1 > from_block {
            snapshot
        } else {
            None
        };
        // The hash of the snapshot's covered block lets the requester chain
        // the shipped suffix onto the summarized prefix (anchor-aware: the
        // shipper itself may have joined through a fast-forward, in which
        // case record `covered` is an anchor marker rather than a block).
        let snapshot_anchor = snapshot
            .as_ref()
            .and_then(|(covered, _)| m.ledger.chain_hash_at(*covered));
        let blocks = m.ledger.blocks_from(start).unwrap_or_default();
        let blocks_size: usize = blocks.iter().map(Block::wire_size).sum();
        let modeled = if full {
            let snap_size = if snapshot.is_some() {
                self.state_size()
            } else {
                0
            };
            snap_size + blocks_size as u64
        } else {
            64
        };
        if full && self.config.persistence != Persistence::Memory {
            ctx.disk_read(modeled as usize, 0);
        }
        let msg = ChainMsg::StateRep {
            snapshot: if full { snapshot } else { None },
            snapshot_anchor: if full { snapshot_anchor } else { None },
            blocks: if full { blocks } else { Vec::new() },
            modeled_size: modeled,
            full,
        };
        let size = msg.wire_size();
        ctx.send(from_node, msg, size);
    }

    /// Installs a full state reply: snapshot, then block replay, then view
    /// catch-up.
    pub(crate) fn install_state(
        &mut self,
        snapshot: Option<(u64, Vec<u8>)>,
        snapshot_anchor: Option<smartchain_crypto::Hash>,
        blocks: Vec<Block>,
        modeled_size: u64,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            if !m.syncing {
                return;
            }
        }
        ctx.charge(self.config.install_ns_per_byte * modeled_size);
        if let Some((covered, state)) = snapshot {
            self.app.install_snapshot(&state);
            if let Some(m) = self.member.as_mut() {
                if covered > m.ledger.height() {
                    // The snapshot summarizes blocks we never had: fast-
                    // forward the ledger through it so the shipped suffix
                    // chains on. (The dedup filter for requests inside the
                    // summarized prefix is rebuilt lazily from client
                    // retransmissions — see ROADMAP open items.)
                    if let Some(anchor) = snapshot_anchor {
                        m.ledger
                            .install_checkpoint_anchor(covered, anchor)
                            .expect("checkpoint anchor installs");
                    }
                }
                m.snapshot = Some((covered, state));
                m.ledger.set_last_checkpoint(covered);
            }
        }
        let mut new_view: Option<ViewInfo> = None;
        for block in blocks {
            let skip = self
                .member
                .as_ref()
                .is_some_and(|m| block.header.number <= m.ledger.height());
            if skip {
                continue;
            }
            match &block.body {
                BlockBody::Transactions { requests, .. } => {
                    for req in requests {
                        if let Some(m) = self.member.as_mut() {
                            m.core.note_delivered(req.client, req.seq);
                        }
                        if let Some(bytes) = unwrap_app_payload(&req.payload) {
                            let inner = Request {
                                client: req.client,
                                seq: req.seq,
                                payload: bytes.to_vec(),
                                signature: req.signature,
                            };
                            let _ = self.app.execute(&inner);
                        }
                    }
                }
                BlockBody::Reconfiguration { new_view: v, .. } => {
                    new_view = Some(v.clone());
                }
            }
            if let Some(m) = self.member.as_mut() {
                let _ = m.ledger.append(&block);
            }
        }
        if let Some(v) = new_view {
            let my_pk = self.keys.permanent_public();
            if v.position_of(&my_pk).is_some() {
                self.keys.rotate_to(v.id);
                let height = self.member.as_ref().map(|m| m.ledger.height()).unwrap_or(0);
                if let Some(m) = self.member.as_mut() {
                    let me = v.position_of(&my_pk).expect("member");
                    m.generation += 1;
                    m.view = v;
                    m.core = OrderingCore::new(
                        me,
                        m.view.to_consensus_view(),
                        self.keys.consensus().clone(),
                        self.config.ordering,
                        height,
                    );
                }
                self.reseed_dedup_from_ledger();
            } else {
                self.member = None;
                return;
            }
        }
        if let Some(m) = self.member.as_mut() {
            let height = m.ledger.height();
            m.core.fast_forward(height);
            m.syncing = false;
        }
    }

    /// Rebuilds the ordering core's duplicate filter from the whole local
    /// chain (used whenever a fresh core is paired with replayed history).
    pub(crate) fn reseed_dedup_from_ledger(&mut self) {
        let Some(m) = self.member.as_mut() else {
            return;
        };
        let blocks = m.ledger.blocks_from(1).unwrap_or_default();
        for block in &blocks {
            if let BlockBody::Transactions { requests, .. } = &block.body {
                for req in requests {
                    m.core.note_delivered(req.client, req.seq);
                }
            }
        }
    }

    /// Crash recovery: volatile pipeline state is gone; reinstall the last
    /// durable snapshot (if any), replay the surviving ledger suffix into
    /// the application, fast-forward the core, and fetch the lost tail from
    /// peers.
    pub(crate) fn recover_from_ledger(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        self.app.reset();
        let replay = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            m.delivery_queue.clear();
            m.open = None;
            m.persist_stash.clear();
            m.verify.clear();
            m.timer_armed = false;
            m.syncing = false;
            // The crash dropped the engine's non-durable suffix; re-derive
            // the chain tail from what actually survived. This is where the
            // persistence ladder becomes observable: a Sync replica replays
            // almost everything locally, an Async/Memory replica must fetch
            // the lost suffix from its peers.
            m.ledger.reload().expect("ledger reload");
            // Checkpoints only reach the disk on the non-Memory rungs
            // (take_checkpoint); under ∞-persistence the snapshot was RAM
            // and died with it.
            if self.config.persistence == Persistence::Memory {
                m.snapshot = None;
            } else if let Some((covered, _)) = m.snapshot {
                m.ledger.set_last_checkpoint(covered);
            }
            m.ledger.blocks_from(1).unwrap_or_default()
        };
        // A surviving snapshot restores the (possibly anchor-summarized)
        // prefix; blocks it covers must not re-execute on top of it.
        let mut replay_from = 1u64;
        if let Some((covered, state)) = self.member.as_ref().and_then(|m| m.snapshot.clone()) {
            self.app.install_snapshot(&state);
            replay_from = covered + 1;
        }
        let mut replayed = 0u64;
        for block in &replay {
            if let BlockBody::Transactions { requests, .. } = &block.body {
                for req in requests {
                    if let Some(m) = self.member.as_mut() {
                        m.core.note_delivered(req.client, req.seq);
                    }
                    if block.header.number < replay_from {
                        continue; // state already inside the snapshot
                    }
                    if let Some(bytes) = unwrap_app_payload(&req.payload) {
                        let inner = Request {
                            client: req.client,
                            seq: req.seq,
                            payload: bytes.to_vec(),
                            signature: req.signature,
                        };
                        let _ = self.app.execute(&inner);
                        replayed += 1;
                    }
                }
            }
        }
        ctx.charge(self.config.execute_ns * replayed);
        if let Some(m) = self.member.as_mut() {
            let height = m.ledger.height();
            m.core.fast_forward(height);
        }
        self.start_state_transfer(ctx);
    }
}
