//! Side stage — state transfer: snapshot + block suffix from peers (joins,
//! recoveries, lagging replicas), and crash recovery from the local ledger.
//!
//! Only one designated replica ships the full state; the rest send
//! hash-sized acknowledgements (the PBFT optimization). The shipper is the
//! highest-id member other than the requester — never the leader, whose NIC
//! would wedge behind a multi-second transfer and stall ordering
//! cluster-wide.
//!
//! Installation is gated on the PBFT agreement rule: every reply (full or
//! ack) carries the sender's `(height, chain hash)` digest, and the full
//! reply installs only once `f+1` distinct members' digests are consistent
//! with the shipped content — so at least one *correct* replica vouches for
//! the history, and a Byzantine shipper cannot feed a syncing replica a
//! forged snapshot/anchor/suffix on its own.

use crate::block::{Block, BlockBody, ViewInfo};
use crate::messages::ChainMsg;
use crate::node::{ChainNode, MemberState};
use crate::pipeline::checkpoint::{SnapshotCommit, SnapshotState};
use crate::pipeline::persist::Persistence;
use crate::pipeline::unwrap_app_payload;
use smartchain_merkle as merkle;
use smartchain_sim::{Ctx, NodeId};
use smartchain_smr::app::Application;
use smartchain_smr::ordering::OrderingCore;
use smartchain_smr::types::Request;

/// Consecutive recent heights carried in every state-reply digest set (the
/// exponential tail takes over beyond it). Sized so members within a normal
/// spread of the cluster tip land a digest *inside* a shipped suffix and can
/// vouch for its content rather than abstain.
const DIGEST_DENSE_WINDOW: u64 = 32;

/// A full state reply buffered until `f+1` members' digests corroborate it.
pub(crate) struct PendingState {
    pub(crate) snapshot: Option<(u64, Vec<u8>)>,
    pub(crate) commit: Option<SnapshotCommit>,
    pub(crate) snapshot_anchor: Option<smartchain_crypto::Hash>,
    pub(crate) snapshot_dedup: Vec<(u64, u64)>,
    pub(crate) blocks: Vec<Block>,
    pub(crate) modeled_size: u64,
}

impl<A: Application> ChainNode<A> {
    /// Asks the membership for everything after our chain tip.
    pub(crate) fn start_state_transfer(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let from_block = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            if m.syncing {
                return;
            }
            m.syncing = true;
            // A fresh sync round drops any stale full reply. Digest sets
            // from earlier rounds stay: a member's `(height, hash)` commits
            // to an append-only prefix, so it keeps vouching forever — and
            // it covers the race where a new round's full reply beats the
            // new acks.
            m.pending_state = None;
            m.ledger.height() + 1
        };
        let msg = ChainMsg::StateReq { from_block };
        self.send_to_members(&msg, ctx);
    }

    /// Serves a peer's state request (fully, if we are the designated
    /// shipper; as an acknowledgement otherwise).
    pub(crate) fn serve_state_request(
        &mut self,
        from_node: NodeId,
        from_block: u64,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let Some(m) = self.member.as_ref() else {
            return;
        };
        if m.syncing {
            return;
        }
        let me = self.my_replica_id().unwrap_or(usize::MAX);
        // The highest-id member other than the requester ships the full
        // state: picking the *leader* (id 0) would wedge its NIC behind a
        // multi-second transfer and stall ordering cluster-wide.
        let requester_id = (0..m.view.n()).find(|&r| self.node_of(&m.view, r) == Some(from_node));
        let candidate = if requester_id == Some(m.view.n() - 1) {
            m.view.n().saturating_sub(2)
        } else {
            m.view.n() - 1
        };
        let full = me == candidate;
        let snapshot = m.snapshot.clone();
        let snap_covered = snapshot.as_ref().map(|s| s.covered).unwrap_or(0);
        // Ship only what the requester is missing: the snapshot (if it
        // covers part of the gap) plus blocks after max(snapshot, what the
        // requester already has). Re-shipping from block 1 on every catch-up
        // round would make a lagging replica chase the chain forever.
        let start = (snap_covered + 1).max(from_block.max(1));
        let snapshot = if snap_covered + 1 > from_block {
            snapshot
        } else {
            None
        };
        // The hash of the snapshot's covered block lets the requester chain
        // the shipped suffix onto the summarized prefix (anchor-aware: the
        // shipper itself may have joined through a fast-forward, in which
        // case record `covered` is an anchor marker rather than a block).
        let snapshot_anchor = snapshot
            .as_ref()
            .and_then(|s| m.ledger.chain_hash_at(s.covered));
        let blocks = m.ledger.blocks_from(start).unwrap_or_default();
        let blocks_size: usize = blocks.iter().map(Block::wire_size).sum();
        let modeled = if full {
            let snap_size = if snapshot.is_some() {
                self.state_size()
            } else {
                0
            };
            snap_size + blocks_size as u64
        } else {
            64
        };
        if full && self.config.persistence != Persistence::Memory {
            ctx.disk_read(modeled as usize, 0);
        }
        let (snapshot, commit, snapshot_dedup) = if full {
            match snapshot {
                Some(s) => (Some((s.covered, s.state)), s.commit, s.dedup),
                None => (None, None, Vec::new()),
            }
        } else {
            (None, None, Vec::new())
        };
        // Every reply commits to the sender's chain: `f+1` consistent
        // digests are what authorizes the requester to install.
        let digests = Self::tip_digests(self.member.as_ref().expect("active"));
        let msg = ChainMsg::StateRep {
            snapshot,
            commit,
            snapshot_anchor: if full { snapshot_anchor } else { None },
            snapshot_dedup,
            blocks: if full { blocks } else { Vec::new() },
            modeled_size: modeled,
            full,
            digests,
        };
        let size = msg.wire_size();
        ctx.send(from_node, msg, size);
    }

    /// `(height, chain hash)` digests, highest first: a dense window over
    /// the sender's most recent [`DIGEST_DENSE_WINDOW`] blocks, then
    /// exponentially receding heights (−32, −64, …). The dense window is
    /// what lets a peer near the shipped suffix's tip vouch for (or refute)
    /// the suffix *content*; the exponential tail finds a common height
    /// with repliers much further ahead or behind.
    fn tip_digests(m: &MemberState) -> Vec<(u64, smartchain_crypto::Hash)> {
        let tip = m.ledger.height();
        let mut out = Vec::new();
        let mut back = 0u64;
        loop {
            let height = tip.saturating_sub(back);
            if height == 0 {
                break;
            }
            if out.last().map(|(h, _)| *h) != Some(height) {
                if let Some(hash) = m.ledger.chain_hash_at(height) {
                    out.push((height, hash));
                }
            }
            if height == 1 {
                break;
            }
            back = if back < DIGEST_DENSE_WINDOW {
                back + 1
            } else {
                back * 2
            };
        }
        out
    }

    /// Buffers a state reply (full or acknowledgement) for the current sync
    /// round and installs the pending full reply once `f+1` members' digests
    /// are consistent with its content.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_state_reply(
        &mut self,
        from_node: NodeId,
        snapshot: Option<(u64, Vec<u8>)>,
        commit: Option<SnapshotCommit>,
        snapshot_anchor: Option<smartchain_crypto::Hash>,
        snapshot_dedup: Vec<(u64, u64)>,
        blocks: Vec<Block>,
        modeled_size: u64,
        full: bool,
        digests: Vec<(u64, smartchain_crypto::Hash)>,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        {
            let member_ok = {
                let Some(m) = self.member.as_ref() else {
                    return;
                };
                if !m.syncing {
                    return;
                }
                // Only members may vouch (one digest set per member node).
                (0..m.view.n()).any(|r| self.node_of(&m.view, r) == Some(from_node))
            };
            if !member_ok {
                return;
            }
            let m = self.member.as_mut().expect("active");
            m.state_acks.insert(from_node, digests);
            if full && m.pending_state.is_none() {
                m.pending_state = Some(PendingState {
                    snapshot,
                    commit,
                    snapshot_anchor,
                    snapshot_dedup,
                    blocks,
                    modeled_size,
                });
            }
        }
        self.try_install_state(ctx);
    }

    /// Checks whether the buffered full reply is authorized — self-
    /// authenticating, or corroborated by `f+1` consistent digest sets —
    /// and installs it if so.
    fn try_install_state(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let ready = {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            let Some(pending) = m.pending_state.as_ref() else {
                return;
            };
            // `> f` is the PBFT `f+1` rule: at least one correct voucher.
            Self::candidate_self_authenticating(m, pending)
                || m.state_acks
                    .values()
                    .filter(|digests| Self::reply_vouches(m, pending, digests))
                    .count()
                    > m.view.f()
        };
        if !ready {
            return;
        }
        let m = self.member.as_mut().expect("active");
        let pending = m.pending_state.take().expect("pending state");
        m.state_acks.clear();
        self.install_state(
            pending.snapshot,
            pending.commit,
            pending.snapshot_anchor,
            pending.snapshot_dedup,
            pending.blocks,
            pending.modeled_size,
            ctx,
        );
    }

    /// A suffix-only candidate (no snapshot) is self-authenticating when
    /// every shipped block carries its own transferable authority: valid
    /// commitments, the decision proof at the block's own number, and a
    /// signature quorum under the *current* view's consensus keys — the
    /// same authority rule the third-party auditor applies. No network
    /// round is needed to accept it, so installs stay deterministic.
    /// Snapshot-bearing candidates (the state is not self-verifying) and
    /// suffixes spanning view changes (older views' keys) fall back to the
    /// `f+1` digest rule.
    fn candidate_self_authenticating(m: &MemberState, pending: &PendingState) -> bool {
        if pending.snapshot.is_some() {
            return false;
        }
        let view = m.view.to_consensus_view();
        pending.blocks.iter().all(|b| {
            let proof = match &b.body {
                BlockBody::Transactions { proof, .. } => proof,
                BlockBody::Reconfiguration { proof, .. } => proof,
            };
            b.commitments_valid() && proof.instance == b.header.number && proof.verify(&view)
        })
    }

    /// Whether one member's digest set corroborates the candidate state: its
    /// highest height the candidate can resolve must lie in the candidate's
    /// *new* content (above the requester's own tip) and carry the same
    /// hash. Hash chaining makes that one point vouch for everything below
    /// it; a forged suffix resolves to different hashes and turns the
    /// member into a rejecter. Members whose digests never reach the new
    /// content — far ahead of the suffix's tip with no dense-window
    /// overlap, at or below the requester's own tip, or behind it —
    /// abstain: a digest the requester's *own pre-install prefix* already
    /// explains would corroborate any forged suffix grafted onto that
    /// prefix.
    fn reply_vouches(
        m: &MemberState,
        pending: &PendingState,
        digests: &[(u64, smartchain_crypto::Hash)],
    ) -> bool {
        let own_tip = m.ledger.height();
        for (height, digest) in digests {
            if *height <= own_tip {
                return false; // descending: only prefix heights remain
            }
            if let Some(hash) = Self::candidate_hash_at(m, pending, *height) {
                return hash == *digest;
            }
        }
        false
    }

    /// The chain hash the requester would hold at `height` *after* installing
    /// `pending`: from the shipped blocks, the shipped snapshot anchor, or
    /// the local ledger (shared correct prefix). `None` when the candidate
    /// state cannot speak for that height.
    fn candidate_hash_at(
        m: &MemberState,
        pending: &PendingState,
        height: u64,
    ) -> Option<smartchain_crypto::Hash> {
        if let Some(block) = pending.blocks.iter().find(|b| b.header.number == height) {
            return Some(block.header.hash());
        }
        if let (Some((covered, _)), Some(anchor)) = (&pending.snapshot, &pending.snapshot_anchor) {
            if *covered == height {
                return Some(*anchor);
            }
        }
        if height > m.ledger.height() {
            return None;
        }
        m.ledger.chain_hash_at(height)
    }

    /// Whether a shipped snapshot opens its certified commitment: the commit
    /// must be present, describe the covered block (same number, and the
    /// header hash the digest-vouched anchor chains on), open the header's
    /// `hash_results`, and — the content check — the shipped state bytes
    /// must re-chunk to exactly the state root the quorum certified. Any
    /// tampered [`merkle::STATE_CHUNK`]-sized chunk flips the root and fails
    /// here. Pure so the rejection logic is unit-testable.
    pub(crate) fn snapshot_commit_verifies(
        covered: u64,
        state: &[u8],
        anchor: Option<&smartchain_crypto::Hash>,
        commit: Option<&SnapshotCommit>,
    ) -> bool {
        let Some(commit) = commit else {
            return false;
        };
        commit.header.number == covered
            && anchor == Some(&commit.header.hash())
            && commit.opens_header()
            && merkle::chunked_root(state, merkle::STATE_CHUNK) == commit.state_root
    }

    /// Installs a full state reply: snapshot, then block replay, then view
    /// catch-up.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn install_state(
        &mut self,
        snapshot: Option<(u64, Vec<u8>)>,
        commit: Option<SnapshotCommit>,
        snapshot_anchor: Option<smartchain_crypto::Hash>,
        snapshot_dedup: Vec<(u64, u64)>,
        blocks: Vec<Block>,
        modeled_size: u64,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            if !m.syncing {
                return;
            }
        }
        // Shipped state installs only if it opens the certified commitment —
        // the `f+1` digest rule vouches for the *chain*, but the snapshot
        // bytes themselves are opaque to it; the Merkle commitment is what
        // binds them to the covered header. Reject before any modeled
        // install work and retry against (hopefully) honest shippers.
        if let Some((covered, state)) = &snapshot {
            if !Self::snapshot_commit_verifies(
                *covered,
                state,
                snapshot_anchor.as_ref(),
                commit.as_ref(),
            ) {
                if std::env::var("SC_ST_DEBUG").is_ok() {
                    eprintln!("[st] snapshot commitment rejected at block {covered}");
                }
                if let Some(m) = self.member.as_mut() {
                    let height = m.ledger.height();
                    m.core.fast_forward(height);
                    m.syncing = false;
                }
                return;
            }
        }
        ctx.charge(self.config.install_ns_per_byte * modeled_size);
        if let Some((covered, state)) = snapshot {
            self.app.install_snapshot(&state);
            // The received snapshot must reach the LOCAL device to survive
            // this replica's crashes — same durability model as a locally
            // taken checkpoint (take_checkpoint).
            let size = if self.config.state_size > 0 {
                self.config.state_size
            } else {
                state.len() as u64
            };
            let inflight = match self.config.persistence {
                Persistence::Memory => None,
                Persistence::Async => {
                    ctx.disk_write(size as usize, false, 0);
                    Some(ctx.now() + ctx.hw().disk.write_time(size as usize, false))
                }
                Persistence::Sync => {
                    ctx.disk_write(
                        size as usize,
                        true,
                        crate::pipeline::KIND_SNAPSHOT | covered,
                    );
                    Some(smartchain_sim::Time::MAX)
                }
            };
            if let Some(m) = self.member.as_mut() {
                if covered > m.ledger.height() {
                    // The snapshot summarizes blocks we never had: fast-
                    // forward the ledger through it so the shipped suffix
                    // chains on.
                    if let Some(anchor) = snapshot_anchor {
                        m.ledger
                            .install_checkpoint_anchor(covered, anchor)
                            .expect("checkpoint anchor installs");
                    }
                }
                // The shipped dedup frontier covers the summarized prefix:
                // without it, a retransmission of a request the snapshot
                // already contains would be re-ordered and fork this
                // replica's delivered sequence.
                for &(client, seq) in &snapshot_dedup {
                    m.core.note_delivered(client, seq);
                }
                m.snapshot = Some(SnapshotState {
                    covered,
                    state,
                    dedup: snapshot_dedup,
                    commit,
                });
                // The installed snapshot replaces whatever local write was
                // in flight; its own write is tracked like a checkpoint's
                // (a crash before completion falls back to nothing — the
                // replica re-syncs).
                m.snapshot_inflight = inflight;
                m.snapshot_fallback = None;
                m.ledger.set_last_checkpoint(covered);
            }
        }
        let mut new_view: Option<ViewInfo> = None;
        for block in blocks {
            let skip = self
                .member
                .as_ref()
                .is_some_and(|m| block.header.number <= m.ledger.height());
            if skip {
                continue;
            }
            // Blocks the installed snapshot already summarizes must not
            // re-execute on top of it (they can be shipped when the sender's
            // snapshot ran ahead of this replica's surviving ledger prefix);
            // they still append and feed the duplicate filter.
            let in_snapshot = self
                .member
                .as_ref()
                .and_then(|m| m.snapshot.as_ref())
                .is_some_and(|s| block.header.number <= s.covered);
            // Append FIRST: a block the ledger rejects (broken hash chain,
            // bad number) must not execute into the application either — a
            // divergence between chain and app state is precisely the fork
            // state transfer exists to prevent. The rest of the shipped
            // suffix cannot chain onto a rejected block, so stop here; the
            // replica stays syncing and re-requests.
            let appended = self
                .member
                .as_mut()
                .is_some_and(|m| m.ledger.append(&block).is_ok());
            if !appended {
                if std::env::var("SC_ST_DEBUG").is_ok() {
                    eprintln!("[st] append rejected block {}", block.header.number);
                }
                // Clear `syncing` so the next NeedStateTransfer trigger can
                // start a fresh round against (hopefully) honest shippers.
                if let Some(m) = self.member.as_mut() {
                    let height = m.ledger.height();
                    m.core.fast_forward(height);
                    m.syncing = false;
                }
                return;
            }
            match &block.body {
                BlockBody::Transactions { requests, .. } => {
                    for req in requests {
                        if let Some(m) = self.member.as_mut() {
                            m.core.note_delivered(req.client, req.seq);
                        }
                        if in_snapshot {
                            continue;
                        }
                        if let Some(bytes) = unwrap_app_payload(&req.payload) {
                            let inner = Request {
                                client: req.client,
                                seq: req.seq,
                                payload: bytes.to_vec(),
                                signature: req.signature,
                            };
                            let _ = self.app.execute(&inner);
                        }
                    }
                }
                BlockBody::Reconfiguration { new_view: v, .. } => {
                    new_view = Some(v.clone());
                }
            }
        }
        if let Some(v) = new_view {
            let my_pk = self.keys.permanent_public();
            if v.position_of(&my_pk).is_some() {
                self.keys.rotate_to(v.id);
                let height = self.member.as_ref().map(|m| m.ledger.height()).unwrap_or(0);
                if let Some(m) = self.member.as_mut() {
                    let me = v.position_of(&my_pk).expect("member");
                    m.generation += 1;
                    m.view = v;
                    m.core = OrderingCore::new(
                        me,
                        m.view.to_consensus_view(),
                        self.keys.consensus().clone(),
                        self.config.ordering,
                        height,
                    );
                }
                self.reseed_dedup_from_ledger();
            } else {
                self.member = None;
                return;
            }
        }
        if let Some(m) = self.member.as_mut() {
            let height = m.ledger.height();
            m.core.fast_forward(height);
            m.syncing = false;
        }
    }

    /// Rebuilds the ordering core's duplicate filter from the whole local
    /// chain plus the current snapshot's dedup frontier (used whenever a
    /// fresh core is paired with replayed history — the snapshot frontier is
    /// what covers a summarized prefix whose blocks we never held).
    pub(crate) fn reseed_dedup_from_ledger(&mut self) {
        let Some(m) = self.member.as_mut() else {
            return;
        };
        if let Some(snapshot) = &m.snapshot {
            for &(client, seq) in &snapshot.dedup {
                m.core.note_delivered(client, seq);
            }
        }
        let blocks = m.ledger.blocks_from(1).unwrap_or_default();
        for block in &blocks {
            if let BlockBody::Transactions { requests, .. } = &block.body {
                for req in requests {
                    m.core.note_delivered(req.client, req.seq);
                }
            }
        }
    }

    /// Crash recovery: volatile pipeline state is gone; reinstall the last
    /// durable snapshot (if any), replay the surviving ledger suffix into
    /// the application, fast-forward the core, and fetch the lost tail from
    /// peers.
    pub(crate) fn recover_from_ledger(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        self.app.reset();
        let replay = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            m.delivery_queue.clear();
            m.open.clear();
            m.pending_reconfig = None;
            m.reconfig_install = None;
            m.persist_stash.clear();
            m.verify.clear();
            m.state_acks.clear();
            m.pending_state = None;
            m.timer_armed = false;
            m.syncing = false;
            // The crash dropped the engine's non-durable suffix; re-derive
            // the chain tail from what actually survived. This is where the
            // persistence ladder becomes observable: a Sync replica replays
            // almost everything locally, an Async/Memory replica must fetch
            // the lost suffix from its peers.
            m.ledger.reload().expect("ledger reload");
            // Checkpoints only reach the disk on the non-Memory rungs
            // (take_checkpoint); under ∞-persistence the snapshot was RAM
            // and died with it.
            if self.config.persistence == Persistence::Memory {
                m.snapshot = None;
            } else if let Some(covered) = m.snapshot.as_ref().map(|s| s.covered) {
                m.ledger.set_last_checkpoint(covered);
            }
            m.ledger.blocks_from(1).unwrap_or_default()
        };
        // A surviving snapshot restores the (possibly anchor-summarized)
        // prefix — state, and the dedup frontier for requests inside it;
        // blocks it covers must not re-execute on top of it.
        let mut replay_from = 1u64;
        if let Some(snapshot) = self.member.as_ref().and_then(|m| m.snapshot.clone()) {
            self.app.install_snapshot(&snapshot.state);
            replay_from = snapshot.covered + 1;
            if let Some(m) = self.member.as_mut() {
                for &(client, seq) in &snapshot.dedup {
                    m.core.note_delivered(client, seq);
                }
            }
        }
        let mut replayed = 0u64;
        for block in &replay {
            if let BlockBody::Transactions { requests, .. } = &block.body {
                for req in requests {
                    if let Some(m) = self.member.as_mut() {
                        m.core.note_delivered(req.client, req.seq);
                    }
                    if block.header.number < replay_from {
                        continue; // state already inside the snapshot
                    }
                    if let Some(bytes) = unwrap_app_payload(&req.payload) {
                        let inner = Request {
                            client: req.client,
                            seq: req.seq,
                            payload: bytes.to_vec(),
                            signature: req.signature,
                        };
                        let _ = self.app.execute(&inner);
                        replayed += 1;
                    }
                }
            }
        }
        ctx.charge(self.config.execute_ns * replayed);
        if let Some(m) = self.member.as_mut() {
            let height = m.ledger.height();
            m.core.fast_forward(height);
        }
        self.start_state_transfer(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockBody};
    use crate::node::ChainNode;
    use smartchain_consensus::proof::DecisionProof;
    use smartchain_smr::app::CounterApp;
    use smartchain_smr::types::Request;

    /// A block whose header binds `state` the way produce does: the covered
    /// block's `hash_results` folds in the chunked state root.
    fn committed_block(covered: u64, state: &[u8]) -> (Block, SnapshotCommit) {
        let body = BlockBody::Transactions {
            consensus_id: covered,
            requests: vec![Request {
                client: 1,
                seq: 0,
                payload: vec![0, 1, 2],
                signature: None,
            }],
            proof: DecisionProof {
                instance: covered,
                epoch: 0,
                value_hash: [0u8; 32],
                accepts: Vec::new(),
            },
            results: vec![vec![7]],
        };
        let state_root = merkle::chunked_root(state, merkle::STATE_CHUNK);
        let block = Block::build(covered, 0, 0, [3u8; 32], body, state_root);
        let commit = SnapshotCommit {
            header: block.header,
            results_root: block.body.results_root(),
            state_root,
        };
        (block, commit)
    }

    type Node = ChainNode<CounterApp>;

    #[test]
    fn honest_snapshot_opens_its_commitment() {
        let state: Vec<u8> = (0..1000u32).flat_map(u32::to_le_bytes).collect();
        let (block, commit) = committed_block(8, &state);
        assert!(commit.opens_header());
        let anchor = block.header.hash();
        assert!(Node::snapshot_commit_verifies(
            8,
            &state,
            Some(&anchor),
            Some(&commit)
        ));
    }

    #[test]
    fn tampered_chunk_is_rejected() {
        let state: Vec<u8> = (0..1000u32).flat_map(u32::to_le_bytes).collect();
        let (block, commit) = committed_block(8, &state);
        let anchor = block.header.hash();
        // Flip one byte in an interior chunk: the chunked root changes and
        // the shipped state no longer opens the certified commitment.
        let mut tampered = state.clone();
        tampered[3 * merkle::STATE_CHUNK + 1] ^= 0x40;
        assert!(!Node::snapshot_commit_verifies(
            8,
            &tampered,
            Some(&anchor),
            Some(&commit)
        ));
        // Appending forged extra state fails too (leaf count changes).
        let mut extended = state.clone();
        extended.extend_from_slice(b"free money");
        assert!(!Node::snapshot_commit_verifies(
            8,
            &extended,
            Some(&anchor),
            Some(&commit)
        ));
    }

    #[test]
    fn commitment_must_match_the_vouched_anchor() {
        let state = vec![5u8; 700];
        let (block, commit) = committed_block(8, &state);
        let anchor = block.header.hash();
        // No commitment at all: a shipper cannot opt out of verification.
        assert!(!Node::snapshot_commit_verifies(
            8,
            &state,
            Some(&anchor),
            None
        ));
        // Commitment for a different covered height.
        assert!(!Node::snapshot_commit_verifies(
            9,
            &state,
            Some(&anchor),
            Some(&commit)
        ));
        // Anchor (the digest-vouched chain hash) disagrees with the header
        // the commitment opens — a self-consistent but unvouched header.
        assert!(!Node::snapshot_commit_verifies(
            8,
            &state,
            Some(&[9u8; 32]),
            Some(&commit)
        ));
        // A commitment whose roots do not open the header is rejected even
        // when the state matches its (forged) state root.
        let mut forged = commit.clone();
        forged.state_root = merkle::chunked_root(b"other state", merkle::STATE_CHUNK);
        assert!(!Node::snapshot_commit_verifies(
            8,
            b"other state",
            Some(&anchor),
            Some(&forged)
        ));
    }
}
