//! Side stage — decentralized reconfiguration, client side (§V-D, Fig. 5):
//! joining, leaving, and advocating exclusions, plus activation of a fresh
//! membership (genesis or Welcome).
//!
//! The flow is always the same two steps: (1) the interested party asks the
//! membership, (2) members answer with votes signed by their *permanent*
//! keys carrying fresh per-view consensus keys, and a quorum of votes forms
//! the reconfiguration transaction that is ordered like any request. The
//! ordered transaction is applied by the produce stage
//! ([`ChainNode::make_reconfig_block`]).

use crate::block::{vote_payload, ReconfigOp, ReconfigTx, ReconfigVote, ViewInfo};
use crate::ledger::Ledger;
use crate::messages::ChainMsg;
use crate::node::{client_id, ChainNode, MemberState};
use crate::pipeline::{exclude_vote_payload, reconfig_payload};
use crate::view_keys::CertifiedKey;
use smartchain_crypto::keys::PublicKey;
use smartchain_sim::{Ctx, NodeId, Time};
use smartchain_smr::app::Application;
use smartchain_smr::ordering::{OrderingCore, SmrMsg};
use smartchain_smr::types::Request;

impl<A: Application> ChainNode<A> {
    /// Activates membership in `view` with a fresh ordering core and a
    /// ledger over the configured durability engine (genesis activation and
    /// Welcome-triggered admission share this path).
    pub(crate) fn activate_member(&mut self, view: ViewInfo, last_applied: u64) {
        self.keys.rotate_to(view.id);
        let me = view
            .position_of(&self.keys.permanent_public())
            .expect("activating node must be in the view");
        let core = OrderingCore::new(
            me,
            view.to_consensus_view(),
            self.keys.consensus().clone(),
            self.config.ordering,
            last_applied,
        );
        let engine = self.config.storage.make_engine(self.config.persistence);
        let ledger = Ledger::open(engine, self.genesis.clone()).expect("engine ledger opens");
        self.member = Some(MemberState::new(view, core, ledger));
    }

    /// Handles a Welcome: we were admitted; activate and catch up.
    pub(crate) fn on_welcome(&mut self, view: ViewInfo, ctx: &mut Ctx<'_, ChainMsg>) {
        if self.member.is_none() && view.position_of(&self.keys.permanent_public()).is_some() {
            self.activate_member(view, 0);
            self.start_state_transfer(ctx);
        }
    }

    /// Fig. 5a step 1: a prospective member asks the genesis membership in.
    pub(crate) fn ask_to_join(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        if self.member.is_some() {
            return;
        }
        let joiner = self.keys.certified_key_for(self.genesis.view.id + 1);
        let msg = ChainMsg::JoinAsk { joiner };
        for member in &self.genesis.view.members.clone() {
            if member.permanent == self.keys.permanent_public() {
                continue;
            }
            if let Some(&node) = self.directory.get(&member.permanent) {
                ctx.send(node, msg.clone(), msg.wire_size());
            }
        }
    }

    /// Schedules this member to advocate excluding `target` at time `at`
    /// (paper Fig. 5b: each member submits a signed remove transaction; a
    /// quorum of n−f such transactions produces the new view).
    pub fn schedule_exclusion(&mut self, at: Time, target: PublicKey) {
        self.exclude_at = Some((at, target));
    }

    /// Submits this member's exclude vote through the ordering protocol.
    pub(crate) fn submit_exclude_vote(&mut self, target: PublicKey, ctx: &mut Ctx<'_, ChainMsg>) {
        let (new_view_id, me, members) = {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            if m.view.position_of(&target).is_none() {
                return; // target already gone
            }
            let Some(me) = self.my_replica_id() else {
                return;
            };
            (m.view.id + 1, me, m.view.members.clone())
        };
        let op = ReconfigOp::Exclude { target };
        let new_key = self.keys.certified_key_for(new_view_id);
        let payload = vote_payload(new_view_id, &op, &new_key);
        ctx.charge(ctx.hw().cpu.sign_ns * 2);
        let vote = ReconfigVote {
            voter: me,
            new_key,
            signature: self.keys.permanent().sign(&payload),
        };
        self.protocol_seq += 1;
        let request = Request {
            client: client_id(ctx.id(), 0xFFFE),
            seq: self.protocol_seq,
            payload: exclude_vote_payload(&target, &vote),
            signature: None,
        };
        // Order it like any client request (including through ourselves).
        let msg = ChainMsg::Smr(SmrMsg::Request(request.clone()));
        for member in &members {
            if let Some(&node) = self.directory.get(&member.permanent) {
                if node == ctx.id() {
                    self.admit(request.clone(), ctx);
                } else {
                    ctx.send(node, msg.clone(), msg.wire_size());
                }
            }
        }
    }

    /// §V-D leave flow: a member asks the membership out (same message as a
    /// join; members infer the direction from current membership).
    pub(crate) fn ask_to_leave(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let Some(m) = self.member.as_ref() else {
            return;
        };
        let joiner = self.keys.certified_key_for(m.view.id + 1);
        let msg = ChainMsg::JoinAsk { joiner };
        self.send_to_members(&msg, ctx);
    }

    /// Handles a JoinAsk: a non-member asker wants in; a member asker wants
    /// out. Either way, vote with our new key for the next view.
    pub(crate) fn on_join_ask(
        &mut self,
        from_node: NodeId,
        joiner: CertifiedKey,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let (new_view_id, op, me, current_view) = {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            let Some(me) = self.my_replica_id() else {
                return;
            };
            let new_view_id = m.view.id + 1;
            let op = if m.view.position_of(&joiner.permanent).is_some() {
                ReconfigOp::Leave {
                    leaver: joiner.permanent,
                }
            } else {
                // Admission policy hook: accept-all (the paper leaves the
                // policy to the application: PoW, certification, stake...).
                if !joiner.verify(new_view_id) {
                    return; // badly certified joiner key
                }
                ReconfigOp::Join { joiner }
            };
            (new_view_id, op, me, m.view.clone())
        };
        ctx.charge(ctx.hw().cpu.sign_ns * 2);
        let new_key = self.keys.certified_key_for(new_view_id);
        let payload = vote_payload(new_view_id, &op, &new_key);
        let vote = ReconfigVote {
            voter: me,
            new_key,
            signature: self.keys.permanent().sign(&payload),
        };
        let msg = ChainMsg::JoinVote {
            vote,
            op,
            new_view_id,
            current_view,
        };
        let size = msg.wire_size();
        ctx.send(from_node, msg, size);
    }

    /// Collects votes for our own join/leave; submits the reconfiguration
    /// transaction once a quorum (n−f of the current view) is reached.
    pub(crate) fn on_join_vote(
        &mut self,
        vote: ReconfigVote,
        op: ReconfigOp,
        new_view_id: u64,
        current_view: ViewInfo,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let my_pk = self.keys.permanent_public();
        let mine = match &op {
            ReconfigOp::Join { joiner } => joiner.permanent == my_pk && self.member.is_none(),
            ReconfigOp::Leave { leaver } => *leaver == my_pk && self.member.is_some(),
            ReconfigOp::Exclude { .. } => false,
        };
        if !mine {
            return;
        }
        self.own_view_seen = Some(current_view.clone());
        let votes = self.own_votes.entry(new_view_id).or_default();
        if votes.iter().any(|v| v.voter == vote.voter) {
            return;
        }
        votes.push(vote);
        let needed = current_view.n() - current_view.f();
        if votes.len() >= needed && !self.own_submitted.contains(&new_view_id) {
            self.own_submitted.insert(new_view_id);
            let tx = ReconfigTx {
                new_view_id,
                op,
                votes: votes.clone(),
            };
            self.protocol_seq += 1;
            let request = Request {
                client: client_id(ctx.id(), 0xFFFF),
                seq: self.protocol_seq,
                payload: reconfig_payload(&tx),
                signature: None,
            };
            let msg = ChainMsg::Smr(SmrMsg::Request(request));
            for member in &current_view.members {
                if let Some(&node) = self.directory.get(&member.permanent) {
                    ctx.send(node, msg.clone(), msg.wire_size());
                }
            }
        }
    }
}
