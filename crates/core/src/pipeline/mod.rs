//! The staged commit pipeline — the replica decomposed into the five stages
//! every request traverses (paper Algorithm 1, restructured for pipelining):
//!
//! ```text
//!   client request
//!        │
//!   [1] VERIFY    (verify.rs)    batched client-signature checks on the
//!        │                       worker-pool lanes (Table I's parallel
//!        │                       verification; CpuModel lanes in virtual
//!        │                       time, crypto::pool::VerifyPool on metal)
//!   [2] ORDER     (node.rs)      the Mod-SMaRt core totally orders batches
//!        │                       (smartchain-smr::OrderingCore) in a
//!        │                       windowed pipeline: up to α consensus
//!        │                       instances in flight, in-order delivery
//!   [3] EXECUTE   (produce.rs)   an ordered batch becomes a block:
//!        │                       transactions run, results are committed to
//!        │                       the block body (Algorithm 1 lines 16-29)
//!   [4] PERSIST   (persist.rs)   the persistence ladder: the block is
//!        │                       appended through a DurabilityEngine
//!        │                       (Memory/Async/GroupCommit); the strong
//!        │                       variant adds the PERSIST certificate round.
//!        │                       Up to α blocks are open concurrently;
//!        │                       device syncs and certificates complete
//!        │                       out of order
//!   [5] REPLY     (persist.rs)   replies release once the configured rung's
//!        │                       durability obligation is met — strictly in
//!        │                       block order, whatever order PERSIST
//!        │                       completions arrive in
//!        ▼
//!   side stages: checkpoint.rs (chain-linked snapshots, §V-B3),
//!                state_transfer.rs (snapshot + suffix shipping),
//!                reconfig.rs (join/leave/exclude, §V-D)
//! ```
//!
//! Each stage lives in its own module as an `impl` block on
//! [`crate::node::ChainNode`]; `node.rs` keeps only the actor spine (event
//! dispatch, ordering-core output routing, configuration). The stages share
//! state through [`crate::node::MemberState`] and communicate *only* via
//! simulator events (disk completions, pool completions, timers), which is
//! what makes them independently schedulable — and what lets the ordering
//! core run α > 1 instances while earlier blocks are still executing and
//! persisting.

pub mod checkpoint;
pub mod persist;
pub mod produce;
pub mod reconfig;
pub mod state_transfer;
pub mod verify;

use smartchain_codec::{Decode, DecodeError, Encode};
use smartchain_crypto::keys::PublicKey;
use smartchain_smr::types::Request;

use crate::block::{ReconfigTx, ReconfigVote};

/// Timer/operation token namespaces (one per asynchronous stage hop).
pub(crate) const TOKEN_PROGRESS: u64 = 1;
pub(crate) const TOKEN_JOIN: u64 = 2;
pub(crate) const TOKEN_LEAVE: u64 = 3;
pub(crate) const TOKEN_EXCLUDE: u64 = 4;
pub(crate) const KIND_SHIFT: u64 = 56;
pub(crate) const KIND_VERIFY: u64 = 1 << KIND_SHIFT;
pub(crate) const KIND_HEADER: u64 = 2 << KIND_SHIFT;
/// Completion of a reconfiguration block's synchronous write (Sync rung):
/// the view installs only once its block is durable.
pub(crate) const KIND_RECONFIG: u64 = 3 << KIND_SHIFT;
/// Completion of a checkpoint snapshot's synchronous write (Sync rung).
pub(crate) const KIND_SNAPSHOT: u64 = 4 << KIND_SHIFT;
pub(crate) const KIND_MASK: u64 = 0xff << KIND_SHIFT;

/// Request payload envelope markers (first byte of every ordered payload).
pub(crate) const PAYLOAD_APP: u8 = 0;
pub(crate) const PAYLOAD_RECONFIG: u8 = 1;
pub(crate) const PAYLOAD_EXCLUDE_VOTE: u8 = 2;

/// Wraps an application payload for ordering through a SmartChain node.
pub fn app_payload(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() + 1);
    out.push(PAYLOAD_APP);
    out.extend_from_slice(bytes);
    out
}

/// Extracts the application bytes from an envelope (`None` for protocol
/// payloads).
pub fn unwrap_app_payload(payload: &[u8]) -> Option<&[u8]> {
    match payload.first() {
        Some(&PAYLOAD_APP) => Some(&payload[1..]),
        _ => None,
    }
}

pub(crate) fn reconfig_payload(tx: &ReconfigTx) -> Vec<u8> {
    let mut out = vec![PAYLOAD_RECONFIG];
    tx.encode(&mut out);
    out
}

/// Builds the ordered payload for one member's exclude vote (paper Fig. 5b).
pub fn exclude_vote_payload(target: &PublicKey, vote: &ReconfigVote) -> Vec<u8> {
    let mut out = vec![PAYLOAD_EXCLUDE_VOTE];
    target.to_wire().encode(&mut out);
    vote.encode(&mut out);
    out
}

/// Verifies a request's client signature, accounting for the app envelope:
/// clients sign `(client, seq, app_payload)`; the envelope byte is added by
/// the transport wrapper afterwards.
pub fn verify_envelope_signature(req: &Request) -> bool {
    match unwrap_app_payload(&req.payload) {
        Some(inner) => match &req.signature {
            None => true,
            Some((key, sig)) => key.verify(&Request::sign_payload(req.client, req.seq, inner), sig),
        },
        None => req.verify_signature(),
    }
}

pub(crate) fn parse_exclude_vote(
    mut input: &[u8],
) -> Result<(PublicKey, ReconfigVote), DecodeError> {
    let target = PublicKey::from_wire(&<[u8; 33]>::decode(&mut input)?);
    let vote = ReconfigVote::decode(&mut input)?;
    Ok((target, vote))
}
