//! Stage 3 — EXECUTE: an ordered batch becomes a block (Algorithm 1,
//! lines 16-29; reconfigurations, lines 37-48).
//!
//! The stage sorts a decided batch into application transactions, exclude
//! votes (tallied here, where total order makes the tally deterministic)
//! and reconfiguration transactions; executes the application payload;
//! seals the block; and hands it to the persist stage. A reconfiguration
//! that shares a batch with application traffic is deferred until the open
//! block clears the persist stage — rotating view keys mid-PERSIST would
//! orphan the in-flight certificate.

use crate::block::{vote_payload, BlockBody, ReconfigOp, ReconfigTx};
use crate::messages::ChainMsg;
use crate::node::{ChainNode, ReconfigInstall};
use crate::pipeline::persist::{OpenBlock, Persistence};
use crate::pipeline::{
    unwrap_app_payload, verify_envelope_signature, KIND_RECONFIG, PAYLOAD_EXCLUDE_VOTE,
    PAYLOAD_RECONFIG,
};
use smartchain_codec::from_bytes;
use smartchain_merkle as merkle;
use smartchain_sim::{Ctx, Time};
use smartchain_smr::actor::SigMode;
use smartchain_smr::app::Application;
use smartchain_smr::ordering::{OrderedBatch, OrderingCore};
use smartchain_smr::types::{Reply, Request};

/// Whether a request carries protocol traffic (reconfigurations, exclude
/// votes) rather than an application payload.
fn is_protocol_request(req: &Request) -> bool {
    matches!(
        req.payload.first(),
        Some(&PAYLOAD_RECONFIG) | Some(&PAYLOAD_EXCLUDE_VOTE)
    )
}

impl<A: Application> ChainNode<A> {
    /// Stage entry (Algorithm 1 lines 16-29, and 37-48 for
    /// reconfigurations): split one ordered batch and produce block(s).
    pub(crate) fn start_block(&mut self, batch: OrderedBatch, ctx: &mut Ctx<'_, ChainMsg>) {
        let mut has_app = false;
        let mut reconfig_tx: Option<ReconfigTx> = None;
        for req in &batch.requests {
            match req.payload.first() {
                Some(&PAYLOAD_RECONFIG) => {
                    if reconfig_tx.is_none() {
                        if let Ok(tx) = from_bytes::<ReconfigTx>(&req.payload[1..]) {
                            reconfig_tx = Some(tx);
                        }
                    }
                }
                Some(&PAYLOAD_EXCLUDE_VOTE) => {
                    if let Some(tx) =
                        self.tally_exclude_vote(&req.payload[1..], reconfig_tx.is_some())
                    {
                        reconfig_tx = Some(tx);
                    }
                }
                _ => has_app = true,
            }
        }
        if has_app {
            // The block carries the *whole* decided batch (protocol requests
            // included), so the decision proof's value hash can be checked
            // against the block content by auditors — protocol requests get
            // empty results and no replies.
            self.make_tx_block(batch.instance, batch.requests, &batch.proof, ctx);
        }
        if let Some(tx) = reconfig_tx {
            // The reconfiguration marks the end of the outgoing view's
            // history: batches its core decided after this instance are void
            // (every correct replica cuts at the same instance), and the
            // requests re-order under the new view via client retransmission.
            if let Some(m) = self.member.as_mut() {
                m.delivery_queue.clear();
            }
            // If blocks are still mid-pipeline (fsync/PERSIST), defer the
            // reconfiguration until the pipeline drains: the view-key
            // rotation must not invalidate an in-flight certificate.
            let open = self.member.as_ref().is_some_and(|m| !m.open.is_empty());
            if open {
                if let Some(m) = self.member.as_mut() {
                    m.pending_reconfig = Some((batch.instance, tx, batch.proof.clone()));
                }
            } else {
                self.make_reconfig_block(batch.instance, tx, &batch.proof, ctx);
            }
        }
    }

    /// Tallies one ordered exclude vote; returns the reconfiguration once a
    /// quorum of n−f members advocated the same exclusion (paper Fig. 5b).
    fn tally_exclude_vote(
        &mut self,
        payload: &[u8],
        already_reconfiguring: bool,
    ) -> Option<ReconfigTx> {
        let (target, vote) = crate::pipeline::parse_exclude_vote(payload).ok()?;
        let m = self.member.as_mut()?;
        // Tally only authentic votes from current members.
        let op = ReconfigOp::Exclude { target };
        let payload = vote_payload(m.view.id + 1, &op, &vote.new_key);
        let authentic = m.view.members.get(vote.voter).is_some_and(|member| {
            member.permanent == vote.new_key.permanent
                && member.permanent.verify(&payload, &vote.signature)
        });
        if !authentic {
            return None;
        }
        let entry = m.exclude_votes.entry(target).or_default();
        if !entry.iter().any(|v| v.voter == vote.voter) {
            entry.push(vote);
        }
        let threshold = m.view.n() - m.view.f();
        if !already_reconfiguring && entry.len() >= threshold {
            let votes = m.exclude_votes.remove(&target).unwrap_or_default();
            return Some(ReconfigTx {
                new_view_id: m.view.id + 1,
                op: ReconfigOp::Exclude { target },
                votes,
            });
        }
        None
    }

    /// Executes application requests and seals a transaction block, handing
    /// it to the persist stage. `requests` is the whole decided batch;
    /// protocol requests (reconfigurations, exclude votes) ride along with
    /// empty results so the block content matches the decision proof's value
    /// hash, but only application requests are metered, charged and replied
    /// to.
    pub(crate) fn make_tx_block(
        &mut self,
        consensus_id: u64,
        requests: Vec<Request>,
        proof: &smartchain_consensus::proof::DecisionProof,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let count = requests.iter().filter(|r| !is_protocol_request(r)).count();
        self.meter.record(ctx.now(), count as u64);
        self.committed_log.push((ctx.now(), count as u64));
        let lanes = self.config.execute_lanes.max(1);
        // Classify each batch slot once; only App(Some) slots execute.
        enum Slot {
            /// Reconfiguration / exclude vote: empty result, no reply.
            Protocol,
            /// Forged under Sequential verification: dropped at execution.
            Forged,
            /// Application transaction (None = unwrappable payload: empty
            /// app result, but still replied to).
            App(Option<Request>),
        }
        let slots: Vec<Slot> = requests
            .iter()
            .map(|req| {
                if is_protocol_request(req) {
                    Slot::Protocol
                } else if self.config.sig_mode == SigMode::Sequential
                    && !verify_envelope_signature(req)
                {
                    Slot::Forged
                } else {
                    Slot::App(unwrap_app_payload(&req.payload).map(|bytes| Request {
                        client: req.client,
                        seq: req.seq,
                        payload: bytes.to_vec(),
                        signature: req.signature,
                    }))
                }
            })
            .collect();
        // EXECUTE cost: serial charges one execute_ns per transaction; the
        // laned stage charges the plan's critical path — the longest lane of
        // each parallel group plus one slot per cross-lane barrier. Block
        // contents are identical either way; only virtual time differs.
        let executable: Vec<&Request> = slots
            .iter()
            .filter_map(|s| match s {
                Slot::App(Some(inner)) => Some(inner),
                _ => None,
            })
            .collect();
        let mut exec_outputs: std::collections::VecDeque<Vec<u8>> = if lanes == 1 {
            // Seed cost model: every non-protocol slot is charged, even ones
            // dropped (forged) or unwrappable — they occupied the stage.
            ctx.charge(self.config.execute_ns * count as Time);
            executable
                .iter()
                .map(|inner| self.app.execute(inner))
                .collect()
        } else {
            let hints: Vec<_> = executable
                .iter()
                .map(|inner| self.app.lane_hint(inner, lanes))
                .collect();
            let plan = smartchain_smr::exec::plan_batch(&hints, lanes);
            ctx.charge(self.config.execute_ns * plan.stats.critical_path_txs as Time);
            self.exec_stats.absorb(&plan.stats);
            smartchain_smr::exec::run_plan(&mut self.app, &executable, &plan, None).into()
        };
        if self.config.sig_mode == SigMode::Sequential {
            // The paper's sequential mode verifies inside the state machine
            // (serially — the verify stage is the pipelined alternative).
            ctx.charge(ctx.hw().cpu.verify_ns * count as Time);
        }
        let mut results = Vec::with_capacity(requests.len());
        let mut replies = Vec::with_capacity(count);
        let me = self.my_replica_id().unwrap_or(0);
        for (req, slot) in requests.iter().zip(&slots) {
            let app_result = match slot {
                Slot::Protocol | Slot::Forged => {
                    results.push(Vec::new());
                    continue; // no reply
                }
                Slot::App(Some(_)) => exec_outputs.pop_front().expect("one output per app tx"),
                Slot::App(None) => Vec::new(),
            };
            let mut result = app_result;
            // Pad to the modeled reply size (the paper's replies are
            // 270-380 bytes); longer app results are kept as-is.
            if result.len() < self.config.reply_size {
                result.resize(self.config.reply_size.max(8), 0);
            }
            replies.push(Reply {
                client: req.client,
                seq: req.seq,
                result: result.clone(),
                replica: me,
            });
            results.push(result);
        }
        // The post-block state root goes into the header via `hash_results`,
        // so the PERSIST certificate also certifies the application state —
        // the anchor snapshot installers verify shipped chunks against.
        // Computed on the real CPU only: the paper's pipeline has no such
        // step, so no virtual time is charged.
        let state_root = merkle::chunked_root(&self.app.take_snapshot(), merkle::STATE_CHUNK);
        let Some(m) = self.member.as_mut() else {
            return;
        };
        let body = BlockBody::Transactions {
            consensus_id,
            requests,
            proof: proof.clone(),
            results,
        };
        let block = m.ledger.build_next(body, state_root);
        let number = block.header.number;
        let header_hash = block.header.hash();
        let size = block.wire_size();
        ctx.charge(ctx.hw().cpu.hash_time(size));
        m.ledger.append(&block).expect("ledger append");
        // The device sync issued below can only cover what is queued right
        // now (this block and its predecessors) — record the boundary.
        let durable_boundary = m.ledger.log().len();
        m.open.push_back(OpenBlock {
            number,
            header_hash,
            replies,
            cert: Vec::new(),
            header_synced: false,
            durable_boundary,
            done: false,
        });
        self.persist_block(number, size, ctx);
        // Checkpoint trigger at EXECUTE time: the application state right
        // now is exactly blocks 1..=number on every replica, so the covered
        // point (and the last_checkpoint field of subsequent headers) is a
        // deterministic function of the chain — release-time triggering at
        // α > 1 would bake later in-flight blocks into the snapshot.
        self.maybe_checkpoint(number, ctx);
    }

    /// Applies a verified reconfiguration: seals the block and either
    /// installs the new view immediately (Memory/Async rungs) or arms the
    /// [`KIND_RECONFIG`] completion so the install waits for the block's
    /// synchronous write (Sync rung) — the reconfiguration block's modeled
    /// write latency must actually delay the reconfiguration, exactly like
    /// a transaction block's durability gates its replies.
    pub(crate) fn make_reconfig_block(
        &mut self,
        consensus_id: u64,
        tx: ReconfigTx,
        proof: &smartchain_consensus::proof::DecisionProof,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        // Reconfigurations don't touch application state: the block binds
        // the state root as it stands.
        let state_root = merkle::chunked_root(&self.app.take_snapshot(), merkle::STATE_CHUNK);
        let Some(m) = self.member.as_mut() else {
            return;
        };
        if !tx.verify(&m.view) {
            return;
        }
        let new_view = tx.apply(&m.view);
        let body = BlockBody::Reconfiguration {
            consensus_id,
            tx: tx.clone(),
            proof: proof.clone(),
            new_view: new_view.clone(),
        };
        let block = m.ledger.build_next(body, state_root);
        let size = block.wire_size();
        ctx.charge(ctx.hw().cpu.hash_time(size));
        m.ledger.append(&block).expect("ledger append");
        let height = m.ledger.height();
        let joiner = match &tx.op {
            ReconfigOp::Join { joiner } => Some(joiner.permanent),
            _ => None,
        };
        let install = ReconfigInstall {
            consensus_id,
            new_view,
            height,
            joiner,
        };
        if self.config.persistence == Persistence::Sync {
            // The view installs in the synchronous write's completion event
            // (same OpDone hop as a tx block's KIND_HEADER gate).
            m.reconfig_install = Some(install);
            ctx.disk_write(size, true, KIND_RECONFIG | height);
            return;
        }
        if self.config.persistence == Persistence::Async {
            ctx.disk_write(size, false, 0);
        }
        self.install_reconfig(install, ctx);
    }

    /// [`KIND_RECONFIG`] completion: the reconfiguration block is durable;
    /// install the view it decided.
    pub(crate) fn finish_reconfig_install(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let Some(install) = self.member.as_mut().and_then(|m| m.reconfig_install.take()) else {
            return;
        };
        self.install_reconfig(install, ctx);
    }

    /// Installs an applied reconfiguration: rotates the consensus keys (the
    /// forgetting protocol, §V-D), rebuilds the ordering core under the new
    /// view (or deactivates a departing member), and Welcomes a joiner.
    fn install_reconfig(&mut self, install: ReconfigInstall, ctx: &mut Ctx<'_, ChainMsg>) {
        let Some(m) = self.member.as_mut() else {
            return;
        };
        // Reconfiguration blocks commit through the engine at install time:
        // the view change must not depend on a later group-commit point (and
        // a failed sync must not rotate the view keys).
        m.ledger.log_mut().flush().expect("durability engine flush");
        let ReconfigInstall {
            consensus_id,
            new_view,
            height,
            joiner,
        } = install;
        let my_pk = self.keys.permanent_public();
        let am_member = new_view.position_of(&my_pk).is_some();
        if let Some(joiner) = joiner {
            if let Some(&node) = self.directory.get(&joiner) {
                if joiner != my_pk {
                    let msg = ChainMsg::Welcome {
                        view: new_view.clone(),
                    };
                    let size = msg.wire_size();
                    ctx.send(node, msg, size);
                }
            }
        }
        if am_member {
            self.keys.rotate_to(new_view.id);
            let me = new_view.position_of(&my_pk).expect("member");
            let m = self.member.as_mut().expect("active");
            m.generation += 1;
            m.view = new_view;
            m.core = OrderingCore::new(
                me,
                m.view.to_consensus_view(),
                self.keys.consensus().clone(),
                self.config.ordering,
                height.max(consensus_id),
            );
            m.persist_stash.clear();
            m.exclude_votes.clear();
            m.delivery_queue.clear();
            // Requests admitted before the view change (e.g. duplicate
            // reconfiguration submissions) are dropped with the old core;
            // clients retransmit if still relevant. The duplicate filter is
            // rebuilt from the chain so retransmissions of already-delivered
            // requests are not re-decided.
            self.reseed_dedup_from_ledger();
        } else {
            // We left (or were excluded): deactivate, but only after the
            // reconfiguration is installed (the paper requires departing
            // replicas to keep serving until the new view is in place).
            self.member = None;
        }
    }
}
