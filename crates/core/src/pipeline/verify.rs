//! Stage 1 — VERIFY: batched client-signature checking.
//!
//! BFT-SMaRt's insight (paper Table I: parallel verification alone doubles
//! SMaRtCoin's throughput) is that client-signature checks do not belong on
//! the sequential state-machine lane. This stage batches every request that
//! arrives while a verification round is in flight and dispatches the whole
//! batch to the worker-pool lanes at once:
//!
//! * **virtual time** — one `pool_dispatch` charge per *batch* (not per
//!   request) and a [`Ctx::pool_charge`] spanning the batch across the
//!   [`smartchain_sim::hw::CpuModel`] worker lanes;
//! * **wall clock** — the same shape runs on
//!   `smartchain_crypto::pool::VerifyPool` (see `smr::runtime`), which is
//!   the deployment backend for this stage.
//!
//! Batching the dispatch amortizes the hand-off cost that the paper's Java
//! stack pays per request, and gives the verify stage the same
//! work-queue discipline as the persist stage's group commit.

use crate::messages::ChainMsg;
use crate::node::ChainNode;
use crate::pipeline::{verify_envelope_signature, KIND_VERIFY};
use smartchain_sim::Ctx;
use smartchain_smr::actor::SigMode;
use smartchain_smr::app::Application;
use smartchain_smr::types::Request;

/// Configuration of the verify stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Maximum requests dispatched to the pool lanes per verification round.
    /// `0` = unbounded ("everything queued", the original behavior). A
    /// finite cap trades throughput (bigger batches amortize the dispatch
    /// hand-off) against latency (a request never waits behind more than
    /// `max_batch − 1` others in its round) — the same trade-off the paper
    /// analyzes for group commit in §IV-B, surfaced for the verify stage.
    pub max_batch: usize,
}

/// The verify stage's queue state (lives in `MemberState`).
#[derive(Debug, Default)]
pub(crate) struct VerifyStage {
    /// Requests awaiting the next verification round.
    pending: Vec<Request>,
    /// The round currently on the pool lanes: `(token, batch)`.
    in_flight: Option<(u64, Vec<Request>)>,
}

impl VerifyStage {
    pub(crate) fn new() -> VerifyStage {
        VerifyStage::default()
    }

    /// Drops all queued work (crash recovery).
    pub(crate) fn clear(&mut self) {
        self.pending.clear();
        self.in_flight = None;
    }
}

impl<A: Application> ChainNode<A> {
    /// Stage entry: admits a client request under the configured signature
    /// policy. `None`/`Sequential` bypass this stage (sequential mode
    /// verifies inside the state machine at execution); `Parallel` queues
    /// the request for the next batched verification round.
    pub(crate) fn admit(&mut self, req: Request, ctx: &mut Ctx<'_, ChainMsg>) {
        let sig_mode = self.config.sig_mode;
        {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            if m.syncing {
                return;
            }
        }
        match sig_mode {
            SigMode::None | SigMode::Sequential => self.submit_to_core(req, ctx),
            SigMode::Parallel => {
                if let Some(m) = self.member.as_mut() {
                    m.verify.pending.push(req);
                }
                self.dispatch_verify_batch(ctx);
            }
        }
    }

    /// Starts a verification round if the lanes are idle and work is queued.
    fn dispatch_verify_batch(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let cap = self.config.verify.max_batch;
        let batch = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            if m.verify.in_flight.is_some() || m.verify.pending.is_empty() {
                return;
            }
            if cap == 0 || m.verify.pending.len() <= cap {
                std::mem::take(&mut m.verify.pending)
            } else {
                // Bounded round: the rest waits for the next dispatch.
                m.verify.pending.drain(..cap).collect()
            }
        };
        // One dispatch per batch: the sequential lane pays the pool hand-off
        // once, however many requests ride along.
        ctx.charge(ctx.hw().cpu.pool_dispatch_ns);
        let delay = ctx.pool_charge(ctx.hw().cpu.verify_ns, batch.len());
        let Some(m) = self.member.as_mut() else {
            return;
        };
        m.next_token += 1;
        let token = KIND_VERIFY | m.next_token;
        m.verify.in_flight = Some((token, batch));
        ctx.op_after(delay, token);
    }

    /// Pool completion: check the whole batch, feed survivors to the order
    /// stage, then start the next round with whatever queued meanwhile.
    pub(crate) fn on_verify_done(&mut self, token: u64, ctx: &mut Ctx<'_, ChainMsg>) {
        let batch = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            match &m.verify.in_flight {
                Some((t, _)) if *t == token => m.verify.in_flight.take().map(|(_, b)| b),
                _ => None, // stale completion from before a view change
            }
        };
        let Some(batch) = batch else { return };
        for req in batch {
            if verify_envelope_signature(&req) {
                self.submit_to_core(req, ctx);
            }
            // Forged requests die here, before the order stage sees them.
        }
        self.dispatch_verify_batch(ctx);
    }
}
