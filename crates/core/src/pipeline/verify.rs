//! Stage 1 — VERIFY: batched client-signature checking.
//!
//! BFT-SMaRt's insight (paper Table I: parallel verification alone doubles
//! SMaRtCoin's throughput) is that client-signature checks do not belong on
//! the sequential state-machine lane. This stage batches every request that
//! arrives while a verification round is in flight and dispatches the whole
//! batch to the worker-pool lanes at once:
//!
//! * **virtual time** — one `pool_dispatch` charge per *batch* (not per
//!   request) and a [`Ctx::pool_charge`] spanning the batch across the
//!   [`smartchain_sim::hw::CpuModel`] worker lanes;
//! * **wall clock** — the same shape runs on
//!   `smartchain_crypto::pool::VerifyPool` (see `smr::runtime`), which is
//!   the deployment backend for this stage.
//!
//! Batching the dispatch amortizes the hand-off cost that the paper's Java
//! stack pays per request, and gives the verify stage the same
//! work-queue discipline as the persist stage's group commit.

use crate::messages::ChainMsg;
use crate::node::ChainNode;
use crate::pipeline::{verify_envelope_signature, KIND_VERIFY};
use smartchain_sim::Ctx;
use smartchain_smr::actor::SigMode;
use smartchain_smr::app::Application;
use smartchain_smr::types::Request;

/// Ceiling for the adaptive cap when `max_batch` leaves it unbounded (a
/// runaway doubling would otherwise defeat the latency point of capping).
const ADAPTIVE_CEILING: usize = 4096;

/// Configuration of the verify stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Maximum requests dispatched to the pool lanes per verification round.
    /// `0` = unbounded ("everything queued", the original behavior). A
    /// finite cap trades throughput (bigger batches amortize the dispatch
    /// hand-off) against latency (a request never waits behind more than
    /// `max_batch − 1` others in its round) — the same trade-off the paper
    /// analyzes for group commit in §IV-B, surfaced for the verify stage.
    /// With `adaptive` set it becomes the growth ceiling instead.
    pub max_batch: usize,
    /// Adaptive round sizing (mirrors the paper's §IV-B group-commit
    /// analysis): the effective cap starts at `min_batch`, doubles whenever
    /// a round leaves a backlog queued (sustained depth → amortize the
    /// dispatch hand-off over more requests), and halves back toward
    /// `min_batch` when a round drains the queue with room to spare (idle →
    /// stop making early arrivals wait). Deterministic — the cap is a pure
    /// function of the queue history, so seeded runs stay reproducible.
    pub adaptive: bool,
    /// Floor (and starting point) of the adaptive cap.
    pub min_batch: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            max_batch: 0,
            adaptive: false,
            min_batch: 8,
        }
    }
}

/// The verify stage's queue state (lives in `MemberState`).
#[derive(Debug, Default)]
pub(crate) struct VerifyStage {
    /// Requests awaiting the next verification round.
    pending: Vec<Request>,
    /// The round currently on the pool lanes: `(token, batch)`.
    in_flight: Option<(u64, Vec<Request>)>,
    /// Current adaptive cap (0 = not yet initialized from `min_batch`).
    cap: usize,
}

impl VerifyStage {
    pub(crate) fn new() -> VerifyStage {
        VerifyStage::default()
    }

    /// Drops all queued work (crash recovery).
    pub(crate) fn clear(&mut self) {
        self.pending.clear();
        self.in_flight = None;
        self.cap = 0;
    }

    /// The effective round cap under `config`, growing/shrinking the
    /// adaptive state from the observed queue. `batchable` is the queue
    /// depth the dispatch is about to serve.
    fn effective_cap(&mut self, config: VerifyConfig, batchable: usize) -> usize {
        if !config.adaptive {
            return config.max_batch;
        }
        if self.cap == 0 {
            self.cap = config.min_batch.max(1);
        }
        let cap = self.cap;
        // Adapt for the NEXT round based on what this one will leave behind.
        if batchable > cap {
            let ceiling = if config.max_batch > 0 {
                config.max_batch
            } else {
                ADAPTIVE_CEILING
            };
            self.cap = cap.saturating_mul(2).min(ceiling.max(1));
        } else if batchable <= cap / 2 {
            self.cap = (cap / 2).max(config.min_batch.max(1));
        }
        cap
    }
}

impl<A: Application> ChainNode<A> {
    /// Stage entry: admits a client request under the configured signature
    /// policy. `None`/`Sequential` bypass this stage (sequential mode
    /// verifies inside the state machine at execution); `Parallel` queues
    /// the request for the next batched verification round.
    pub(crate) fn admit(&mut self, req: Request, ctx: &mut Ctx<'_, ChainMsg>) {
        let sig_mode = self.config.sig_mode;
        {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            if m.syncing {
                return;
            }
        }
        match sig_mode {
            SigMode::None | SigMode::Sequential => self.submit_to_core(req, ctx),
            SigMode::Parallel => {
                if let Some(m) = self.member.as_mut() {
                    m.verify.pending.push(req);
                }
                self.dispatch_verify_batch(ctx);
            }
        }
    }

    /// Starts a verification round if the lanes are idle and work is queued.
    fn dispatch_verify_batch(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let config = self.config.verify;
        let batch = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            if m.verify.in_flight.is_some() || m.verify.pending.is_empty() {
                return;
            }
            let cap = m.verify.effective_cap(config, m.verify.pending.len());
            if cap == 0 || m.verify.pending.len() <= cap {
                std::mem::take(&mut m.verify.pending)
            } else {
                // Bounded round: the rest waits for the next dispatch.
                m.verify.pending.drain(..cap).collect()
            }
        };
        // One dispatch per batch: the sequential lane pays the pool hand-off
        // once, however many requests ride along.
        ctx.charge(ctx.hw().cpu.pool_dispatch_ns);
        let delay = ctx.pool_charge(ctx.hw().cpu.verify_ns, batch.len());
        let Some(m) = self.member.as_mut() else {
            return;
        };
        m.next_token += 1;
        let token = KIND_VERIFY | m.next_token;
        m.verify.in_flight = Some((token, batch));
        ctx.op_after(delay, token);
    }

    /// Pool completion: check the whole batch, feed survivors to the order
    /// stage, then start the next round with whatever queued meanwhile.
    pub(crate) fn on_verify_done(&mut self, token: u64, ctx: &mut Ctx<'_, ChainMsg>) {
        let batch = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            match &m.verify.in_flight {
                Some((t, _)) if *t == token => m.verify.in_flight.take().map(|(_, b)| b),
                _ => None, // stale completion from before a view change
            }
        };
        let Some(batch) = batch else { return };
        for req in batch {
            if verify_envelope_signature(&req) {
                self.submit_to_core(req, ctx);
            }
            // Forged requests die here, before the order stage sees them.
        }
        self.dispatch_verify_batch(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_cap_grows_under_depth_and_shrinks_when_idle() {
        let config = VerifyConfig {
            max_batch: 0,
            adaptive: true,
            min_batch: 4,
        };
        let mut stage = VerifyStage::new();
        // Sustained depth: every round leaves a backlog → cap doubles.
        assert_eq!(stage.effective_cap(config, 100), 4);
        assert_eq!(stage.effective_cap(config, 100), 8);
        assert_eq!(stage.effective_cap(config, 100), 16);
        // Idle rounds (queue drains with room to spare) → cap halves back
        // toward the floor. (Each call serves at the current cap and adapts
        // for the next, so the third growth round already left it at 32.)
        assert_eq!(stage.effective_cap(config, 2), 32);
        assert_eq!(stage.effective_cap(config, 2), 16);
        assert_eq!(stage.effective_cap(config, 1), 8);
        assert_eq!(stage.effective_cap(config, 1), 4);
        assert_eq!(stage.effective_cap(config, 1), 4, "floor holds");
        // A finite max_batch caps the growth.
        let bounded = VerifyConfig {
            max_batch: 10,
            adaptive: true,
            min_batch: 4,
        };
        let mut stage = VerifyStage::new();
        assert_eq!(stage.effective_cap(bounded, 100), 4);
        assert_eq!(stage.effective_cap(bounded, 100), 8);
        assert_eq!(stage.effective_cap(bounded, 100), 10);
        assert_eq!(stage.effective_cap(bounded, 100), 10);
        // Non-adaptive: the fixed cap, untouched state.
        let fixed = VerifyConfig::default();
        let mut stage = VerifyStage::new();
        assert_eq!(stage.effective_cap(fixed, 100), 0);
        assert_eq!(stage.cap, 0, "fixed config never initializes the cap");
    }
}
