//! Stages 4–5 — PERSIST and REPLY: the persistence ladder (§V-C) behind a
//! [`DurabilityEngine`], plus the strong variant's PERSIST certificate round
//! (Fig. 3) and reply release.
//!
//! Every Persistence × Variant combination routes its block bytes through
//! the same [`DurabilityEngine`] trait the real-disk `smr::DurableApp`
//! uses — the engine owns the *data plane* (what survives a crash) while
//! the simulator's disk model charges the *time plane* according to the
//! engine's [`WritePlan`]:
//!
//! * [`Persistence::Memory`] → `MemoryEngine` (∞-persistence): no device
//!   time, nothing durable;
//! * [`Persistence::Async`] → `AsyncEngine` (λ-persistence): buffered
//!   device write, reply does not wait;
//! * [`Persistence::Sync`] → `GroupCommitEngine` (0/1-persistence): a
//!   synchronous device write gates the reply; the engine's `flush` is the
//!   group-commit point.
//!
//! On top of the ladder, [`Variant::Strong`] adds the PERSIST round: replies
//! release only after a Byzantine quorum certifies the header
//! (0-Persistence); [`Variant::Weak`] releases after the local obligation
//! (1-Persistence).
//!
//! With a pipelined ordering core (α > 1) up to α blocks are open in this
//! stage at once. Device syncs and PERSIST certificates complete in
//! whatever order the disk and the network deliver them — each open block
//! tracks its own obligation — but replies release strictly in block order
//! from the front of the open queue (out-of-order PERSIST completion,
//! in-order REPLY release).

use crate::block::{persist_sign_payload, Certificate};
use crate::messages::ChainMsg;
use crate::node::ChainNode;
use crate::pipeline::KIND_HEADER;
use smartchain_codec::Encode;
use smartchain_consensus::ReplicaId;
use smartchain_crypto::keys::Signature;
use smartchain_crypto::Hash;
use smartchain_sim::{Ctx, NodeId};
use smartchain_smr::app::Application;
use smartchain_smr::ordering::SmrMsg;
use smartchain_smr::types::Reply;
use smartchain_storage::{DurabilityEngine, SyncPolicy};

/// Where blocks are persisted (the paper's persistence ladder, §V-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Persistence {
    /// Memory only (∞-Persistence).
    Memory,
    /// Asynchronous writes (λ-Persistence).
    Async,
    /// Synchronous header writes (0/1-Persistence depending on variant).
    Sync,
}

impl Persistence {
    /// The engine rung implementing this policy.
    pub fn sync_policy(self) -> SyncPolicy {
        match self {
            Persistence::Memory => SyncPolicy::None,
            Persistence::Async => SyncPolicy::Async,
            Persistence::Sync => SyncPolicy::Sync,
        }
    }

    /// Builds the durability engine for this rung over the simulator's
    /// heap-backed "disk" (delegates to the storage crate's factory — one
    /// policy-to-engine mapping in the whole workspace).
    pub fn make_engine(self) -> Box<dyn DurabilityEngine> {
        smartchain_storage::engine::engine_for(self.sync_policy())
    }
}

/// Which physical medium the simulated replica's durability engine sits on.
///
/// The simulator always charges device *time* through the engine's
/// [`WritePlan`](smartchain_storage::WritePlan) — the backend decides where
/// the *bytes* live, so the real-disk engines (and their recovery and
/// compaction paths) are exercised in virtual time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StorageBackend {
    /// Heap-backed `MemLog` (the original simulator behavior).
    #[default]
    Heap,
    /// A real segmented log in a per-node temporary directory: segment
    /// rolls, manifest writes, O(segment-delete) truncation and
    /// scan-only-the-tail recovery all run against actual files while the
    /// disk *model* still charges virtual time. The ∞-persistence rung
    /// stays heap-backed (it models the absence of a disk).
    SegmentedTemp,
}

/// Segment sizing used by [`StorageBackend::SegmentedTemp`] (small, so sim
/// scenarios roll segments without needing thousands of blocks).
const SIM_SEGMENT_RECORDS: u64 = 64;

static SEG_DIR_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl StorageBackend {
    /// Builds the engine for `persistence` on this backend.
    pub fn make_engine(self, persistence: Persistence) -> Box<dyn DurabilityEngine> {
        match (self, persistence) {
            (StorageBackend::Heap, p) => p.make_engine(),
            (StorageBackend::SegmentedTemp, Persistence::Memory) => {
                Persistence::Memory.make_engine()
            }
            (StorageBackend::SegmentedTemp, p) => {
                let seq = SEG_DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let dir = std::env::temp_dir()
                    .join(format!("smartchain-sim-seg-{}-{seq}", std::process::id()));
                let _ = std::fs::remove_dir_all(&dir);
                let engine = smartchain_storage::SegmentedEngine::open(
                    &dir,
                    p.sync_policy(),
                    smartchain_storage::SegmentConfig {
                        records_per_segment: SIM_SEGMENT_RECORDS,
                    },
                )
                .expect("segmented temp engine opens");
                Box::new(TempDirEngine { engine, dir })
            }
        }
    }
}

/// A segmented tempdir engine that removes its directory when dropped —
/// simulated nodes are created per run (and per reconfiguration), so
/// leaving every incarnation's segments in the system temp dir would
/// accumulate without bound across test/bench invocations.
struct TempDirEngine {
    engine: smartchain_storage::SegmentedEngine,
    dir: std::path::PathBuf,
}

impl Drop for TempDirEngine {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl smartchain_storage::RecordLog for TempDirEngine {
    fn append(&mut self, record: &[u8]) -> std::io::Result<u64> {
        self.engine.append(record)
    }
    fn sync(&mut self) -> std::io::Result<()> {
        self.engine.sync()
    }
    fn len(&self) -> u64 {
        self.engine.len()
    }
    fn read(&self, index: u64) -> std::io::Result<Option<Vec<u8>>> {
        self.engine.read(index)
    }
    fn truncate_prefix(&mut self, upto: u64) -> std::io::Result<()> {
        self.engine.truncate_prefix(upto)
    }
    fn first_index(&self) -> u64 {
        self.engine.first_index()
    }
    fn fast_forward(&mut self, index: u64) -> std::io::Result<()> {
        self.engine.fast_forward(index)
    }
    fn simulate_crash(&mut self) {
        self.engine.simulate_crash()
    }
}

impl DurabilityEngine for TempDirEngine {
    fn policy(&self) -> SyncPolicy {
        self.engine.policy()
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.engine.flush()
    }
    fn flush_upto(&mut self, records: u64) -> std::io::Result<()> {
        self.engine.flush_upto(records)
    }
    fn durable_len(&self) -> u64 {
        self.engine.durable_len()
    }
    fn stats(&self) -> smartchain_storage::wal::FlushStats {
        self.engine.stats()
    }
    fn recovery_stats(&self) -> Option<smartchain_storage::RecoveryStats> {
        DurabilityEngine::recovery_stats(&self.engine)
    }
}

/// Weak (1-Persistence) or strong (0-Persistence, PERSIST phase) variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Reply after the local synchronous write.
    Weak,
    /// Reply after a quorum certificate over the header is assembled.
    Strong,
}

/// A block mid-pipeline (executed, awaiting persistence/certificate).
pub struct OpenBlock {
    pub(crate) number: u64,
    pub(crate) header_hash: Hash,
    pub(crate) replies: Vec<Reply>,
    pub(crate) cert: Vec<(ReplicaId, Signature)>,
    pub(crate) header_synced: bool,
    /// Engine record count when this block's device sync was issued: the
    /// completing sync can only have covered records queued before it
    /// started, so the commit point flushes exactly this prefix (later open
    /// blocks' records wait for their own completions).
    pub(crate) durable_boundary: u64,
    /// The block's full durability obligation is met; it releases once it
    /// reaches the front of the open queue.
    pub(crate) done: bool,
}

impl<A: Application> ChainNode<A> {
    /// Stage entry: the produce stage appended `number` (`size` encoded
    /// bytes) to the ledger; drive the engine's policy for it. Charges the
    /// device plan and arranges `header_done` to run when the policy's
    /// obligation is met.
    pub(crate) fn persist_block(&mut self, number: u64, size: usize, ctx: &mut Ctx<'_, ChainMsg>) {
        let plan = {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            m.ledger.log().plan(size)
        };
        if plan.sync {
            // 0/1-Persistence: the device sync gates the stage hop; the
            // engine's group-commit flush runs on completion (header_done).
            let token = KIND_HEADER | number;
            ctx.disk_write(plan.bytes, true, token);
        } else {
            if self.config.persistence == Persistence::Async {
                ctx.disk_write(plan.bytes, false, 0)
            }
            self.header_done(number, ctx);
        }
    }

    /// The header's durability obligation is met (device sync completed, or
    /// the policy required none): flush the engine's commit point and move
    /// to the variant's reply rule. With α > 1 the completing block need not
    /// be the front of the open queue.
    pub(crate) fn header_done(&mut self, number: u64, ctx: &mut Ctx<'_, ChainMsg>) {
        let variant = self.config.variant;
        {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            let Some(open) = m.open.iter_mut().find(|o| o.number == number) else {
                return;
            };
            open.header_synced = true;
            // Data-plane group commit: everything queued when this block's
            // device sync was ISSUED becomes durable — not records later
            // open blocks appended while the sync was in flight; those wait
            // for their own completions. A failed device sync must not
            // release replies as durable; in simulation (heap-backed
            // engines) it cannot fail.
            let boundary = open.durable_boundary;
            m.ledger
                .log_mut()
                .flush_upto(boundary)
                .expect("durability engine flush");
        }
        match variant {
            Variant::Weak => {
                if let Some(m) = self.member.as_mut() {
                    if let Some(open) = m.open.iter_mut().find(|o| o.number == number) {
                        open.done = true;
                    }
                }
                self.release_open_blocks(ctx);
            }
            Variant::Strong => {
                let (header_hash, me) = {
                    let m = self.member.as_ref().expect("active");
                    let open = m
                        .open
                        .iter()
                        .find(|o| o.number == number)
                        .expect("open block");
                    (open.header_hash, self.my_replica_id())
                };
                ctx.charge(ctx.hw().cpu.sign_ns);
                let payload = persist_sign_payload(number, &header_hash);
                let signature = self.keys.consensus().sign(&payload);
                if let Some(me) = me {
                    let m = self.member.as_mut().expect("active");
                    let open = m
                        .open
                        .iter_mut()
                        .find(|o| o.number == number)
                        .expect("open block");
                    open.cert.push((me, signature));
                    if let Some(stash) = m.persist_stash.remove(&number) {
                        for (r, h, sig) in stash {
                            if h == header_hash && !open.cert.iter().any(|(rr, _)| *rr == r) {
                                open.cert.push((r, sig));
                            }
                        }
                    }
                }
                let msg = ChainMsg::Persist {
                    block: number,
                    header_hash,
                    signature,
                };
                self.send_to_members(&msg, ctx);
                self.check_certificate(number, ctx);
            }
        }
    }

    /// A peer's PERSIST share arrived.
    pub(crate) fn on_persist(
        &mut self,
        from_node: NodeId,
        block: u64,
        header_hash: Hash,
        signature: Signature,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let sender = {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            (0..m.view.n()).find(|&r| self.node_of(&m.view, r) == Some(from_node))
        };
        let Some(sender) = sender else { return };
        // PERSIST shares are full signatures (they end up in the publicly
        // verifiable certificate), so the verification costs the real thing.
        ctx.charge(ctx.hw().cpu.verify_ns);
        let valid = {
            let m = self.member.as_ref().expect("active");
            let payload = persist_sign_payload(block, &header_hash);
            m.view
                .members
                .get(sender)
                .is_some_and(|mem| mem.consensus.verify(&payload, &signature))
        };
        if !valid {
            return;
        }
        let Some(m) = self.member.as_mut() else {
            return;
        };
        match m
            .open
            .iter_mut()
            .find(|o| o.number == block && o.header_hash == header_hash)
        {
            Some(open) => {
                if !open.cert.iter().any(|(r, _)| *r == sender) {
                    open.cert.push((sender, signature));
                }
                self.check_certificate(block, ctx);
            }
            None => {
                // Shares for blocks whose certificate already completed are
                // useless — stashing them would leak O(f) signatures per
                // block over a long run. Only stash for future blocks.
                if block > m.ledger.height() {
                    m.persist_stash.entry(block).or_default().push((
                        sender,
                        header_hash,
                        signature,
                    ));
                }
            }
        }
    }

    /// Completes the PERSIST round for `number` once a quorum certified its
    /// header. Certificates may complete in any order across the open
    /// blocks; release order is still enforced by the open queue.
    pub(crate) fn check_certificate(&mut self, number: u64, ctx: &mut Ctx<'_, ChainMsg>) {
        let ready = {
            let Some(m) = self.member.as_ref() else {
                return;
            };
            let Some(open) = m.open.iter().find(|o| o.number == number) else {
                return;
            };
            !open.done && open.header_synced && open.cert.len() >= m.view.quorum()
        };
        if !ready {
            return;
        }
        let m = self.member.as_mut().expect("active");
        let open = m
            .open
            .iter_mut()
            .find(|o| o.number == number)
            .expect("open block");
        let cert = Certificate {
            signatures: open.cert.clone(),
        };
        open.done = true;
        let cert_size = cert.encoded_len();
        m.ledger
            .set_certificate(number, cert)
            .expect("ledger certificate");
        if self.config.persistence != Persistence::Memory {
            // Asynchronous write: recoverable after a full crash (§V-C).
            ctx.disk_write(cert_size, false, 0);
        }
        self.release_open_blocks(ctx);
    }

    /// Stage 5 — REPLY: releases every front block whose durability
    /// obligation is fully met, strictly in block order; runs deferred
    /// reconfigurations once the pipeline drains and pulls further ordered
    /// batches into the pipeline. (Checkpoints trigger at EXECUTE time in
    /// the produce stage, where the covered point is deterministic.)
    pub(crate) fn release_open_blocks(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        loop {
            let replies = {
                let Some(m) = self.member.as_mut() else {
                    return;
                };
                match m.open.front() {
                    Some(front) if front.done => m.open.pop_front().expect("front exists").replies,
                    _ => break,
                }
            };
            for reply in replies {
                let node = crate::node::client_node(reply.client);
                let msg = ChainMsg::Smr(SmrMsg::Reply(reply));
                let size = msg.wire_size();
                ctx.send(node, msg, size);
            }
            // A reconfiguration deferred behind the pipeline applies once
            // every open block has cleared, before any further deliveries.
            if self.member.as_ref().is_some_and(|m| m.open.is_empty()) {
                if let Some((cid, tx, proof)) =
                    self.member.as_mut().and_then(|m| m.pending_reconfig.take())
                {
                    self.make_reconfig_block(cid, tx, &proof, ctx);
                }
            }
        }
        self.pump_deliveries(ctx);
    }
}
