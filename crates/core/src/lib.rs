//! SMARTCHAIN — the paper's contribution: a blockchain layer over BFT SMR.
//!
//! * [`block`] — the block structure of Fig. 2 (header/body/certificate),
//!   genesis configuration, reconfiguration transactions.
//! * [`ledger`] — the replica-local chain over stable storage.
//! * [`view_keys`] — per-view consensus keys and the forgetting protocol.
//! * [`audit`] — third-party self-verification, including Figure-4 fork
//!   rejection.
//! * [`node`] — the SmartChain replica (Algorithm 1) as a simulation actor:
//!   weak (1-Persistence) and strong (0-Persistence with the PERSIST phase)
//!   variants, chain-linked checkpoints, state transfer, decentralized
//!   join/leave/exclude.
pub mod audit;
pub mod block;
pub mod harness;
pub mod ledger;
pub mod messages;
pub mod node;
pub mod pipeline;
pub mod view_keys;
