//! The SMARTCHAIN replica (paper §V, Algorithm 1) as a simulation actor —
//! the *spine* of the staged commit pipeline.
//!
//! This module keeps only what every stage shares: the actor's state
//! ([`ChainNode`], [`MemberState`]), its configuration, event dispatch, and
//! the routing of ordering-core outputs. The stages themselves live in
//! [`crate::pipeline`]:
//!
//! * verify — batched client-signature checks ([`crate::pipeline::verify`]);
//! * execute/produce — ordered batches become blocks
//!   ([`crate::pipeline::produce`]);
//! * persist — the persistence ladder behind a
//!   [`smartchain_storage::DurabilityEngine`], plus the strong variant's
//!   PERSIST certificate round ([`crate::pipeline::persist`]);
//! * checkpoints ([`crate::pipeline::checkpoint`]), state transfer
//!   ([`crate::pipeline::state_transfer`]) and decentralized
//!   reconfiguration ([`crate::pipeline::reconfig`]).

use crate::block::{Block, Genesis, ViewInfo};
use crate::ledger::Ledger;
use crate::pipeline::checkpoint::SnapshotState;
use crate::pipeline::verify::VerifyStage;
use crate::pipeline::{
    KIND_HEADER, KIND_MASK, KIND_RECONFIG, KIND_SNAPSHOT, KIND_VERIFY, TOKEN_EXCLUDE, TOKEN_JOIN,
    TOKEN_LEAVE, TOKEN_PROGRESS,
};
use crate::view_keys::KeyStore;
use smartchain_consensus::messages::ConsensusMsg;
use smartchain_consensus::ReplicaId;
use smartchain_crypto::keys::PublicKey;
use smartchain_sim::metrics::ThroughputMeter;
use smartchain_sim::{Actor, Ctx, Event, NodeId, Time, MILLI};
use smartchain_smr::app::Application;
use smartchain_smr::ordering::{CoreOutput, OrderedBatch, OrderingConfig, OrderingCore, SmrMsg};
use smartchain_smr::types::Request;
use smartchain_storage::DurabilityEngine;
use std::collections::{HashMap, VecDeque};

pub use crate::messages::ChainMsg;
pub use crate::pipeline::persist::{OpenBlock, Persistence, StorageBackend, Variant};
pub use crate::pipeline::verify::VerifyConfig;
pub use crate::pipeline::{
    app_payload, exclude_vote_payload, unwrap_app_payload, verify_envelope_signature,
};
pub use smartchain_smr::actor::{client_id, client_node, SigMode};

/// SmartChain node configuration.
#[derive(Clone, Copy, Debug)]
pub struct NodeConfig {
    /// Weak or strong persistence variant.
    pub variant: Variant,
    /// Storage policy.
    pub persistence: Persistence,
    /// Physical medium of the durability engine (heap, or a real segmented
    /// log in a tempdir exercised in virtual time).
    pub storage: StorageBackend,
    /// Truncate the ledger's log prefix once a checkpoint covering it is
    /// durable (O(segment-delete) on the segmented backend). Off by default:
    /// full-history ledgers keep the seed's observable behavior (`chain()`
    /// from genesis, audits from block 1).
    pub compact_after_checkpoint: bool,
    /// Client-signature checking policy.
    pub sig_mode: SigMode,
    /// Verify-stage sizing (round cap; default unbounded).
    pub verify: crate::pipeline::verify::VerifyConfig,
    /// Batching parameters.
    pub ordering: OrderingConfig,
    /// Leader-change timeout.
    pub progress_timeout: Time,
    /// Per-transaction execution cost.
    pub execute_ns: Time,
    /// Execution lanes for the parallel EXECUTE stage (`1` = the classic
    /// strictly sequential stage). With more lanes, batches are planned by
    /// [`smartchain_smr::exec::plan_batch`] over the application's static
    /// lane hints and charged their *critical path* (longest lane per
    /// parallel group, plus one slot per cross-lane barrier) instead of the
    /// full serial cost. Deterministic: block contents are unaffected.
    pub execute_lanes: usize,
    /// Snapshot serialization cost per byte (checkpoint stall, Fig. 7).
    pub snapshot_ns_per_byte: Time,
    /// Snapshot installation cost per byte (state transfer).
    pub install_ns_per_byte: Time,
    /// Reply payload size (bytes).
    pub reply_size: usize,
    /// Modeled application state size (e.g. Fig. 7's 1 GB); `0` = use the
    /// real snapshot length.
    pub state_size: u64,
    /// Stagger checkpoints across replicas (paper §VI / Dura-SMaRt's
    /// sequential checkpoints): replica r snapshots at an offset of
    /// `r * z / n` blocks, so the whole cluster never stalls at once.
    pub stagger_checkpoints: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            variant: Variant::Weak,
            persistence: Persistence::Sync,
            storage: StorageBackend::default(),
            compact_after_checkpoint: false,
            sig_mode: SigMode::None,
            verify: crate::pipeline::verify::VerifyConfig::default(),
            ordering: OrderingConfig::default(),
            progress_timeout: 500 * MILLI,
            execute_ns: 6_000,
            execute_lanes: 1,
            snapshot_ns_per_byte: 20,
            install_ns_per_byte: 40,
            reply_size: 380,
            state_size: 0,
            stagger_checkpoints: false,
        }
    }
}

/// A decided reconfiguration whose block is written but whose view install
/// waits for the block's synchronous-write completion (Sync rung): the
/// reconfiguration must not take effect before its block is durable.
pub(crate) struct ReconfigInstall {
    pub(crate) consensus_id: u64,
    pub(crate) new_view: ViewInfo,
    pub(crate) height: u64,
    /// Public key of a joining member to Welcome once installed.
    pub(crate) joiner: Option<PublicKey>,
}

/// Per-membership state (exists while the node is an active consortium
/// member). Fields are crate-visible: the pipeline stage modules operate on
/// them directly.
pub(crate) struct MemberState {
    /// Bumped whenever the ordering core is replaced (view change, state
    /// transfer); outputs minted by an older core must be discarded.
    pub(crate) generation: u64,
    /// A reconfiguration decided in the same batch as application
    /// transactions waits here until every open block completes — rotating
    /// the view keys mid-PERSIST would orphan the in-flight certificates.
    pub(crate) pending_reconfig: Option<(
        u64,
        crate::block::ReconfigTx,
        std::sync::Arc<smartchain_consensus::proof::DecisionProof>,
    )>,
    /// A reconfiguration block awaiting its synchronous write (Sync rung).
    pub(crate) reconfig_install: Option<ReconfigInstall>,
    pub(crate) view: ViewInfo,
    pub(crate) core: OrderingCore,
    /// The chain, persisted through the configured durability engine.
    pub(crate) ledger: Ledger<Box<dyn DurabilityEngine>>,
    /// Most recent checkpoint snapshot (served to state transfers; its
    /// crash durability is tracked by the two fields below).
    pub(crate) snapshot: Option<SnapshotState>,
    /// The previous snapshot, kept while the newer one's device write is
    /// still in flight — what a crash falls back to. The paired time is
    /// when *its own* write completed or completes (0 = durable;
    /// `Time::MAX` = awaiting a superseded Sync fsync completion).
    pub(crate) snapshot_fallback: Option<(SnapshotState, Time)>,
    /// `Some(t)`: the current `snapshot`'s device write completes at virtual
    /// time `t` (Async rung, modeled), or at the pending [`KIND_SNAPSHOT`]
    /// completion (`t == Time::MAX`, Sync rung). A crash before completion
    /// loses the snapshot.
    pub(crate) snapshot_inflight: Option<Time>,
    pub(crate) delivery_queue: VecDeque<OrderedBatch>,
    /// Blocks mid-pipeline (executed, awaiting persistence/certificate),
    /// ascending by number; at most α at once. Durability obligations may
    /// complete out of order, replies release strictly from the front.
    pub(crate) open: VecDeque<OpenBlock>,
    pub(crate) persist_stash: HashMap<
        u64,
        Vec<(
            ReplicaId,
            smartchain_crypto::Hash,
            smartchain_crypto::keys::Signature,
        )>,
    >,
    pub(crate) exclude_votes: HashMap<PublicKey, Vec<crate::block::ReconfigVote>>,
    /// The batched verify stage (stage 1 of the pipeline).
    pub(crate) verify: VerifyStage,
    /// Per-member `(height, chain hash)` digest sets from state replies of
    /// the current sync round (install is gated on `f+1` consistent ones).
    pub(crate) state_acks: HashMap<NodeId, Vec<(u64, smartchain_crypto::Hash)>>,
    /// The full state reply held until enough digests corroborate it.
    pub(crate) pending_state: Option<crate::pipeline::state_transfer::PendingState>,
    pub(crate) timer_armed: bool,
    pub(crate) delivered_at_arm: u64,
    pub(crate) next_token: u64,
    pub(crate) syncing: bool,
}

impl MemberState {
    pub(crate) fn new(
        view: ViewInfo,
        core: OrderingCore,
        ledger: Ledger<Box<dyn DurabilityEngine>>,
    ) -> MemberState {
        MemberState {
            generation: 0,
            pending_reconfig: None,
            reconfig_install: None,
            view,
            core,
            ledger,
            snapshot: None,
            snapshot_fallback: None,
            snapshot_inflight: None,
            delivery_queue: VecDeque::new(),
            open: VecDeque::new(),
            persist_stash: HashMap::new(),
            exclude_votes: HashMap::new(),
            verify: VerifyStage::new(),
            state_acks: HashMap::new(),
            pending_state: None,
            timer_armed: false,
            delivered_at_arm: 0,
            next_token: 100,
            syncing: false,
        }
    }
}

/// The SmartChain replica actor.
pub struct ChainNode<A: Application> {
    pub(crate) directory: HashMap<PublicKey, NodeId>,
    pub(crate) keys: KeyStore,
    pub(crate) config: NodeConfig,
    pub(crate) genesis: Genesis,
    pub(crate) app: A,
    pub(crate) member: Option<MemberState>,
    /// Vote collection for our own join/leave request.
    pub(crate) own_votes: HashMap<u64, Vec<crate::block::ReconfigVote>>,
    pub(crate) own_submitted: std::collections::HashSet<u64>,
    pub(crate) own_view_seen: Option<ViewInfo>,
    pub(crate) join_at: Option<Time>,
    pub(crate) leave_at: Option<Time>,
    pub(crate) exclude_at: Option<(Time, PublicKey)>,
    pub(crate) protocol_seq: u64,
    pub(crate) meter: ThroughputMeter,
    pub(crate) committed_log: Vec<(Time, u64)>,
    pub(crate) checkpoint_log: Vec<(Time, u64)>,
    /// Accumulated EXECUTE-stage conflict accounting (lane planning).
    pub(crate) exec_stats: smartchain_smr::exec::ConflictStats,
}

impl<A: Application> ChainNode<A> {
    /// Creates a node; it activates immediately if it belongs to the genesis
    /// view, otherwise it stays dormant until `join_at` (if set).
    pub fn new(
        keys: KeyStore,
        genesis: Genesis,
        app: A,
        config: NodeConfig,
        directory: HashMap<PublicKey, NodeId>,
        join_at: Option<Time>,
        leave_at: Option<Time>,
    ) -> ChainNode<A> {
        let mut app = app;
        app.configure_lanes(config.execute_lanes.max(1));
        let mut node = ChainNode {
            directory,
            keys,
            config,
            genesis: genesis.clone(),
            app,
            member: None,
            own_votes: HashMap::new(),
            own_submitted: std::collections::HashSet::new(),
            own_view_seen: None,
            join_at,
            leave_at,
            exclude_at: None,
            protocol_seq: 0,
            meter: ThroughputMeter::new(10_000),
            committed_log: Vec::new(),
            checkpoint_log: Vec::new(),
            exec_stats: smartchain_smr::exec::ConflictStats::default(),
        };
        if genesis
            .view
            .position_of(&node.keys.permanent_public())
            .is_some()
        {
            let view = node.genesis.view.clone();
            node.activate_member(view, 0);
        }
        node
    }

    /// Throughput meter.
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// `(time, count)` commit events for timeline plots (Fig. 7).
    pub fn commit_log(&self) -> &[(Time, u64)] {
        &self.committed_log
    }

    /// `(time, covered_block)` for every checkpoint this replica took.
    pub fn checkpoint_log(&self) -> &[(Time, u64)] {
        &self.checkpoint_log
    }

    /// Accumulated EXECUTE-stage conflict accounting: how the lane planner
    /// classified this replica's delivered transactions (all zeros when
    /// `execute_lanes == 1` — the laned path never runs).
    pub fn exec_stats(&self) -> smartchain_smr::exec::ConflictStats {
        self.exec_stats
    }

    /// Chain height, if active.
    pub fn height(&self) -> Option<u64> {
        self.member.as_ref().map(|m| m.ledger.height())
    }

    /// The current view, if active.
    pub fn view(&self) -> Option<&ViewInfo> {
        self.member.as_ref().map(|m| &m.view)
    }

    /// True while this node is an active consortium member.
    pub fn is_active(&self) -> bool {
        self.member.is_some()
    }

    /// True while this node is blocked on state transfer.
    pub fn is_syncing(&self) -> bool {
        self.member.as_ref().is_some_and(|m| m.syncing)
    }

    /// Repair/adaptation counters from the ordering core (fetches, repaired
    /// instances, the AIMD window's current/min/max, regency changes).
    pub fn ordering_stats(&self) -> Option<smartchain_smr::ordering::OrderingStats> {
        self.member.as_ref().map(|m| m.core.stats())
    }

    /// Ordering diagnostics: (last_delivered, pending, regency, leader).
    pub fn ordering_status(&self) -> Option<(u64, usize, u32, usize)> {
        self.member.as_ref().map(|m| {
            (
                m.core.last_delivered(),
                m.core.pending_len(),
                m.core.regency(),
                m.core.leader(),
            )
        })
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Full copy of the chain (for audits in tests/examples).
    pub fn chain(&self) -> Vec<Block> {
        self.member
            .as_ref()
            .map(|m| m.ledger.blocks_from(1).unwrap_or_default())
            .unwrap_or_default()
    }

    /// The genesis configuration.
    pub fn genesis(&self) -> &Genesis {
        &self.genesis
    }

    /// Persistence-engine accounting: `(records, syncs)` at the engine level
    /// (distinct from the simulator's device accounting).
    pub fn engine_stats(&self) -> Option<smartchain_storage::wal::FlushStats> {
        self.member.as_ref().map(|m| m.ledger.log().stats())
    }

    /// Lowest block number the ledger's log still holds — the compaction
    /// watermark (0 = full history retained).
    pub fn first_retained(&self) -> Option<u64> {
        self.member.as_ref().map(|m| m.ledger.first_retained())
    }

    /// Covered block of this replica's current checkpoint snapshot, if any
    /// (what a crash right now would recover from, plus any still-in-flight
    /// write tracked separately).
    pub fn snapshot_covered(&self) -> Option<u64> {
        self.member
            .as_ref()
            .and_then(|m| m.snapshot.as_ref())
            .map(|s| s.covered)
    }

    /// The ordering core's per-client duplicate filter frontier, sorted by
    /// client id (diagnostics: dedup continuity across snapshots).
    pub fn dedup_frontier(&self) -> Vec<(u64, u64)> {
        self.member
            .as_ref()
            .map(|m| m.core.delivered_frontier())
            .unwrap_or_default()
    }

    pub(crate) fn node_of(&self, view: &ViewInfo, replica: ReplicaId) -> Option<NodeId> {
        view.members
            .get(replica)
            .and_then(|m| self.directory.get(&m.permanent))
            .copied()
    }

    pub(crate) fn my_replica_id(&self) -> Option<ReplicaId> {
        let pk = self.keys.permanent_public();
        self.member.as_ref().and_then(|m| m.view.position_of(&pk))
    }

    pub(crate) fn send_to_members(&self, msg: &ChainMsg, ctx: &mut Ctx<'_, ChainMsg>) {
        let Some(m) = self.member.as_ref() else {
            return;
        };
        let me = self.my_replica_id();
        for r in 0..m.view.n() {
            if Some(r) == me {
                continue;
            }
            if let Some(node) = self.node_of(&m.view, r) {
                ctx.send(node, msg.clone(), msg.wire_size());
            }
        }
    }

    pub(crate) fn handle_core_outputs(
        &mut self,
        outputs: Vec<CoreOutput>,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let generation_at_entry = self.member.as_ref().map(|m| m.generation);
        for out in outputs {
            // A view change mid-loop replaces the core; everything the old
            // core emitted after the reconfiguration batch is stale and must
            // not leak into the new view.
            if self.member.as_ref().map(|m| m.generation) != generation_at_entry {
                break;
            }
            match out {
                CoreOutput::Broadcast(m) => {
                    if matches!(m, SmrMsg::Consensus(ConsensusMsg::Accept { .. })) {
                        ctx.charge(ctx.hw().cpu.sign_ns);
                    }
                    let msg = ChainMsg::Smr(m);
                    self.send_to_members(&msg, ctx);
                }
                CoreOutput::Send(to, m) => {
                    if let Some(member) = self.member.as_ref() {
                        if let Some(node) = self.node_of(&member.view, to) {
                            let msg = ChainMsg::Smr(m);
                            let size = msg.wire_size();
                            ctx.send(node, msg, size);
                        }
                    }
                }
                CoreOutput::Deliver(batch) => {
                    if let Some(m) = self.member.as_mut() {
                        // Once a reconfiguration is decided, batches the
                        // outgoing view's core decides after it are void —
                        // every correct replica cuts at the same instance,
                        // and the requests are re-ordered under the new view
                        // when clients retransmit.
                        if m.pending_reconfig.is_none() && m.reconfig_install.is_none() {
                            m.delivery_queue.push_back(batch);
                        }
                    }
                    self.pump_deliveries(ctx);
                }
                CoreOutput::NeedStateTransfer { .. } => self.start_state_transfer(ctx),
            }
        }
        self.arm_progress_timer(ctx);
    }

    pub(crate) fn arm_progress_timer(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let timeout = self.config.progress_timeout;
        let Some(m) = self.member.as_mut() else {
            return;
        };
        if !m.timer_armed && m.core.pending_len() > 0 {
            m.timer_armed = true;
            m.delivered_at_arm = m.core.last_delivered();
            ctx.set_timer(timeout, TOKEN_PROGRESS);
        }
    }

    pub(crate) fn pump_deliveries(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        // Up to α blocks ride the EXECUTE/PERSIST stages concurrently
        // (α = 1 restores Algorithm 1's strictly sequential processing); a
        // decided reconfiguration drains the pipeline before installing.
        let max_open = self.config.ordering.max_alpha().max(1) as usize;
        loop {
            let batch = {
                let Some(m) = self.member.as_mut() else {
                    return;
                };
                if m.pending_reconfig.is_some() || m.reconfig_install.is_some() {
                    return;
                }
                if m.open.len() >= max_open {
                    return;
                }
                let Some(batch) = m.delivery_queue.pop_front() else {
                    return;
                };
                batch
            };
            self.start_block(batch, ctx);
        }
    }

    pub(crate) fn submit_to_core(&mut self, req: Request, ctx: &mut Ctx<'_, ChainMsg>) {
        let outs = {
            let Some(m) = self.member.as_mut() else {
                return;
            };
            m.core.submit(req)
        };
        self.handle_core_outputs(outs, ctx);
    }
}

impl<A: Application> Actor<ChainMsg> for ChainNode<A> {
    fn on_event(&mut self, event: Event<ChainMsg>, ctx: &mut Ctx<'_, ChainMsg>) {
        match event {
            Event::Start => {
                if let Some(at) = self.join_at {
                    ctx.set_timer(at, TOKEN_JOIN);
                }
                if let Some(at) = self.leave_at {
                    ctx.set_timer(at, TOKEN_LEAVE);
                }
                if let Some((at, _)) = self.exclude_at {
                    ctx.set_timer(at, TOKEN_EXCLUDE);
                }
            }
            Event::Timer { token: TOKEN_JOIN } => self.ask_to_join(ctx),
            Event::Timer { token: TOKEN_LEAVE } => self.ask_to_leave(ctx),
            Event::Timer {
                token: TOKEN_EXCLUDE,
            } => {
                if let Some((_, target)) = self.exclude_at {
                    self.submit_exclude_vote(target, ctx);
                }
            }
            Event::Timer {
                token: TOKEN_PROGRESS,
            } => {
                let outs = {
                    let Some(m) = self.member.as_mut() else {
                        return;
                    };
                    m.timer_armed = false;
                    if m.core.last_delivered() == m.delivered_at_arm && m.core.pending_len() > 0 {
                        m.core.on_progress_timeout()
                    } else {
                        Vec::new()
                    }
                };
                if outs.is_empty() {
                    self.arm_progress_timer(ctx);
                } else {
                    self.handle_core_outputs(outs, ctx);
                }
            }
            Event::Timer { .. } => {}
            Event::OpDone { token } => match token & KIND_MASK {
                KIND_HEADER => self.header_done(token & !KIND_MASK, ctx),
                KIND_VERIFY => self.on_verify_done(token, ctx),
                KIND_RECONFIG => self.finish_reconfig_install(ctx),
                KIND_SNAPSHOT => self.snapshot_write_done(token & !KIND_MASK, ctx),
                _ => {}
            },
            Event::Message { from, msg } => {
                ctx.charge(ctx.hw().cpu.message_overhead_ns);
                match msg {
                    ChainMsg::Smr(SmrMsg::Request(req)) => self.admit(req, ctx),
                    ChainMsg::Smr(inner) => {
                        let handled = {
                            let Some(m) = self.member.as_ref() else {
                                return;
                            };
                            if m.syncing {
                                None
                            } else {
                                (0..m.view.n()).find(|&r| self.node_of(&m.view, r) == Some(from))
                            }
                        };
                        let Some(sender) = handled else { return };
                        if let SmrMsg::Consensus(ConsensusMsg::Propose { value, .. }) = &inner {
                            ctx.charge(ctx.hw().cpu.hash_time(value.len()));
                        }
                        if matches!(inner, SmrMsg::Consensus(ConsensusMsg::Accept { .. })) {
                            ctx.charge(ctx.hw().cpu.verify_ns / 4);
                        }
                        let outs = {
                            let m = self.member.as_mut().expect("active");
                            m.core.on_message(sender, inner)
                        };
                        self.handle_core_outputs(outs, ctx);
                    }
                    ChainMsg::Persist {
                        block,
                        header_hash,
                        signature,
                    } => {
                        self.on_persist(from, block, header_hash, signature, ctx);
                    }
                    ChainMsg::StateReq { from_block } => {
                        self.serve_state_request(from, from_block, ctx);
                    }
                    ChainMsg::StateRep {
                        snapshot,
                        commit,
                        snapshot_anchor,
                        snapshot_dedup,
                        blocks,
                        modeled_size,
                        full,
                        digests,
                    } => {
                        self.on_state_reply(
                            from,
                            snapshot,
                            commit,
                            snapshot_anchor,
                            snapshot_dedup,
                            blocks,
                            modeled_size,
                            full,
                            digests,
                            ctx,
                        );
                    }
                    ChainMsg::JoinAsk { joiner } => self.on_join_ask(from, joiner, ctx),
                    ChainMsg::JoinVote {
                        vote,
                        op,
                        new_view_id,
                        current_view,
                    } => {
                        self.on_join_vote(vote, op, new_view_id, current_view, ctx);
                    }
                    ChainMsg::Welcome { view } => self.on_welcome(view, ctx),
                }
            }
            Event::Crash => {
                // Volatile state is lost. The durability engine decides what
                // the "disk" keeps: everything flushed under group commit,
                // the explicitly-synced prefix under λ-persistence, nothing
                // under ∞-persistence (§V-C — this is the ladder's whole
                // point, observable at recovery).
                let now = ctx.now();
                if let Some(m) = self.member.as_mut() {
                    m.ledger.log_mut().simulate_crash();
                    // A checkpoint snapshot whose device write was still in
                    // flight dies with the crash; fall back to the previous
                    // one if *its* write had completed by now.
                    let current_durable = match m.snapshot_inflight.take() {
                        None => true,
                        Some(at) => at != Time::MAX && now >= at,
                    };
                    if !current_durable {
                        m.snapshot = m
                            .snapshot_fallback
                            .take()
                            .filter(|&(_, at)| at != Time::MAX && now >= at)
                            .map(|(s, _)| s);
                    }
                    m.snapshot_fallback = None;
                }
            }
            Event::Recover => self.recover_from_ledger(ctx),
        }
    }
}
