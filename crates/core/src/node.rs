//! The SMARTCHAIN replica (paper §V, Algorithm 1) as a simulation actor.
//!
//! Responsibilities on top of the ordering core:
//!
//! * **blockchain layer** — every ordered batch becomes a block: transactions
//!   and decision proof are written to the chain, the batch executes, results
//!   are written, and `closeBlock` seals the header with one synchronous disk
//!   write (Algorithm 1 lines 16-29);
//! * **persistence variants** — weak (1-Persistence: reply after the local
//!   header sync) and strong (0-Persistence: an extra PERSIST round collects
//!   a quorum of header signatures into a certificate before replying,
//!   §V-C / Fig. 3);
//! * **chain-linked checkpoints** — a snapshot every `z` blocks, stored
//!   outside the chain, referenced by later headers (§V-B3);
//! * **state transfer** — snapshot + block suffix from peers (joins,
//!   recoveries, lagging replicas);
//! * **decentralized reconfiguration** — join/leave/exclude via signed vote
//!   certificates ordered through consensus, with per-view consensus-key
//!   rotation (the forgetting protocol, §V-D).

use crate::block::{
    persist_sign_payload, vote_payload, Block, BlockBody, Certificate, Genesis, ReconfigOp,
    ReconfigTx, ReconfigVote, ViewInfo,
};
use crate::ledger::Ledger;
use crate::view_keys::{CertifiedKey, KeyStore};
use smartchain_codec::{from_bytes, Decode, DecodeError, Encode};
use smartchain_consensus::messages::ConsensusMsg;
use smartchain_consensus::ReplicaId;
use smartchain_crypto::keys::{PublicKey, Signature};
use smartchain_crypto::Hash;
use smartchain_smr::app::Application;
use smartchain_smr::ordering::{CoreOutput, OrderedBatch, OrderingConfig, OrderingCore, SmrMsg};
use smartchain_smr::types::{Reply, Request};
use smartchain_sim::metrics::ThroughputMeter;
use smartchain_sim::{Actor, Ctx, Event, NodeId, Time, MILLI};
use smartchain_storage::mem::MemLog;
use std::collections::{HashMap, VecDeque};

pub use smartchain_smr::actor::{client_id, client_node, SigMode};

/// Where blocks are persisted (the paper's persistence ladder, §V-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Persistence {
    /// Memory only (∞-Persistence).
    Memory,
    /// Asynchronous writes (λ-Persistence).
    Async,
    /// Synchronous header writes (0/1-Persistence depending on variant).
    Sync,
}

/// Weak (1-Persistence) or strong (0-Persistence, PERSIST phase) variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Reply after the local synchronous write.
    Weak,
    /// Reply after a quorum certificate over the header is assembled.
    Strong,
}

/// Messages exchanged by SmartChain nodes (a superset of the SMR messages).
#[derive(Clone, Debug)]
pub enum ChainMsg {
    /// Ordering/SMR traffic.
    Smr(SmrMsg),
    /// PERSIST-phase signature share (strong variant).
    Persist {
        /// Block number being certified.
        block: u64,
        /// Hash of the block header.
        header_hash: Hash,
        /// Signature with the sender's consensus key.
        signature: Signature,
    },
    /// Request for state from `from_block` onward.
    StateReq {
        /// First block the requester is missing.
        from_block: u64,
    },
    /// State transfer reply.
    StateRep {
        /// Application snapshot (bytes) and the block it covers.
        snapshot: Option<(u64, Vec<u8>)>,
        /// Block suffix after the snapshot.
        blocks: Vec<Block>,
        /// Modeled wire size (1 GB states are modeled, not materialized).
        modeled_size: u64,
        /// Only one designated replica sends the full state; the rest send
        /// hash-sized acknowledgements (PBFT-style optimization).
        full: bool,
    },
    /// A prospective member asks to join — or a member asks to leave
    /// (paper Fig. 5a, step 1; §V-D leave flow).
    JoinAsk {
        /// The asker's certified consensus key for the next view.
        joiner: CertifiedKey,
    },
    /// A member's signed acceptance (step 2).
    JoinVote {
        /// The vote (carries the voter's new consensus key).
        vote: ReconfigVote,
        /// The operation being voted for.
        op: ReconfigOp,
        /// The view id the vote creates.
        new_view_id: u64,
        /// Current view (so the asker learns the membership).
        current_view: ViewInfo,
    },
    /// Tells a just-admitted member it is part of `view` (triggers its
    /// state transfer).
    Welcome {
        /// The view that now includes the recipient.
        view: ViewInfo,
    },
}

impl ChainMsg {
    /// Estimated wire size in bytes for the simulator.
    pub fn wire_size(&self) -> usize {
        match self {
            ChainMsg::Smr(m) => m.wire_size(),
            ChainMsg::Persist { .. } => 8 + 32 + 65 + 16,
            ChainMsg::StateReq { .. } => 16,
            ChainMsg::StateRep { modeled_size, .. } => (*modeled_size as usize).max(64),
            ChainMsg::JoinAsk { .. } => 180,
            ChainMsg::JoinVote { current_view, .. } => 260 + current_view.n() * 140,
            ChainMsg::Welcome { view } => 20 + view.n() * 140,
        }
    }
}

/// Request payload envelope markers (first byte of every ordered payload).
const PAYLOAD_APP: u8 = 0;
const PAYLOAD_RECONFIG: u8 = 1;
const PAYLOAD_EXCLUDE_VOTE: u8 = 2;

/// Wraps an application payload for ordering through a SmartChain node.
pub fn app_payload(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() + 1);
    out.push(PAYLOAD_APP);
    out.extend_from_slice(bytes);
    out
}

/// Extracts the application bytes from an envelope (`None` for protocol
/// payloads).
pub fn unwrap_app_payload(payload: &[u8]) -> Option<&[u8]> {
    match payload.first() {
        Some(&PAYLOAD_APP) => Some(&payload[1..]),
        _ => None,
    }
}

fn reconfig_payload(tx: &ReconfigTx) -> Vec<u8> {
    let mut out = vec![PAYLOAD_RECONFIG];
    tx.encode(&mut out);
    out
}

/// Builds the ordered payload for one member's exclude vote (paper Fig. 5b).
pub fn exclude_vote_payload(target: &PublicKey, vote: &ReconfigVote) -> Vec<u8> {
    let mut out = vec![PAYLOAD_EXCLUDE_VOTE];
    target.to_wire().encode(&mut out);
    vote.encode(&mut out);
    out
}

/// Verifies a request's client signature, accounting for the app envelope:
/// clients sign `(client, seq, app_payload)`; the envelope byte is added by
/// the transport wrapper afterwards.
pub fn verify_envelope_signature(req: &Request) -> bool {
    match unwrap_app_payload(&req.payload) {
        Some(inner) => match &req.signature {
            None => true,
            Some((key, sig)) => {
                key.verify(&Request::sign_payload(req.client, req.seq, inner), sig)
            }
        },
        None => req.verify_signature(),
    }
}

fn parse_exclude_vote(mut input: &[u8]) -> Result<(PublicKey, ReconfigVote), DecodeError> {
    let target = PublicKey::from_wire(&<[u8; 33]>::decode(&mut input)?);
    let vote = ReconfigVote::decode(&mut input)?;
    Ok((target, vote))
}

/// SmartChain node configuration.
#[derive(Clone, Copy, Debug)]
pub struct NodeConfig {
    /// Weak or strong persistence variant.
    pub variant: Variant,
    /// Storage policy.
    pub persistence: Persistence,
    /// Client-signature checking policy.
    pub sig_mode: SigMode,
    /// Batching parameters.
    pub ordering: OrderingConfig,
    /// Leader-change timeout.
    pub progress_timeout: Time,
    /// Per-transaction execution cost.
    pub execute_ns: Time,
    /// Snapshot serialization cost per byte (checkpoint stall, Fig. 7).
    pub snapshot_ns_per_byte: Time,
    /// Snapshot installation cost per byte (state transfer).
    pub install_ns_per_byte: Time,
    /// Reply payload size (bytes).
    pub reply_size: usize,
    /// Modeled application state size (e.g. Fig. 7's 1 GB); `0` = use the
    /// real snapshot length.
    pub state_size: u64,
    /// Stagger checkpoints across replicas (paper §VI / Dura-SMaRt's
    /// sequential checkpoints): replica r snapshots at an offset of
    /// `r * z / n` blocks, so the whole cluster never stalls at once.
    pub stagger_checkpoints: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            variant: Variant::Weak,
            persistence: Persistence::Sync,
            sig_mode: SigMode::None,
            ordering: OrderingConfig::default(),
            progress_timeout: 500 * MILLI,
            execute_ns: 6_000,
            snapshot_ns_per_byte: 20,
            install_ns_per_byte: 40,
            reply_size: 380,
            state_size: 0,
            stagger_checkpoints: false,
        }
    }
}

const TOKEN_PROGRESS: u64 = 1;
const TOKEN_JOIN: u64 = 2;
const TOKEN_LEAVE: u64 = 3;
const TOKEN_EXCLUDE: u64 = 4;
const KIND_SHIFT: u64 = 56;
const KIND_VERIFY: u64 = 1 << KIND_SHIFT;
const KIND_HEADER: u64 = 2 << KIND_SHIFT;
const KIND_MASK: u64 = 0xff << KIND_SHIFT;

/// A block mid-pipeline (executed, awaiting persistence/certificate).
struct OpenBlock {
    number: u64,
    header_hash: Hash,
    replies: Vec<Reply>,
    cert: Vec<(ReplicaId, Signature)>,
    header_synced: bool,
}

struct MemberState {
    /// Bumped whenever the ordering core is replaced (view change, state
    /// transfer); outputs minted by an older core must be discarded.
    generation: u64,
    /// A reconfiguration decided in the same batch as application
    /// transactions waits here until the open block completes — rotating
    /// the view keys mid-PERSIST would orphan the in-flight certificate.
    pending_reconfig: Option<(u64, ReconfigTx, smartchain_consensus::proof::DecisionProof)>,
    view: ViewInfo,
    core: OrderingCore,
    ledger: Ledger<MemLog>,
    snapshot: Option<(u64, Vec<u8>)>,
    delivery_queue: VecDeque<OrderedBatch>,
    open: Option<OpenBlock>,
    persist_stash: HashMap<u64, Vec<(ReplicaId, Hash, Signature)>>,
    exclude_votes: HashMap<PublicKey, Vec<ReconfigVote>>,
    verifying: HashMap<u64, Request>,
    timer_armed: bool,
    delivered_at_arm: u64,
    next_token: u64,
    syncing: bool,
}

/// The SmartChain replica actor.
pub struct ChainNode<A: Application> {
    directory: HashMap<PublicKey, NodeId>,
    keys: KeyStore,
    config: NodeConfig,
    genesis: Genesis,
    app: A,
    member: Option<MemberState>,
    /// Vote collection for our own join/leave request.
    own_votes: HashMap<u64, Vec<ReconfigVote>>,
    own_submitted: std::collections::HashSet<u64>,
    own_view_seen: Option<ViewInfo>,
    join_at: Option<Time>,
    leave_at: Option<Time>,
    exclude_at: Option<(Time, PublicKey)>,
    protocol_seq: u64,
    meter: ThroughputMeter,
    committed_log: Vec<(Time, u64)>,
    checkpoint_log: Vec<(Time, u64)>,
}

impl<A: Application> ChainNode<A> {
    /// Creates a node; it activates immediately if it belongs to the genesis
    /// view, otherwise it stays dormant until `join_at` (if set).
    pub fn new(
        keys: KeyStore,
        genesis: Genesis,
        app: A,
        config: NodeConfig,
        directory: HashMap<PublicKey, NodeId>,
        join_at: Option<Time>,
        leave_at: Option<Time>,
    ) -> ChainNode<A> {
        let mut node = ChainNode {
            directory,
            keys,
            config,
            genesis: genesis.clone(),
            app,
            member: None,
            own_votes: HashMap::new(),
            own_submitted: std::collections::HashSet::new(),
            own_view_seen: None,
            join_at,
            leave_at,
            exclude_at: None,
            protocol_seq: 0,
            meter: ThroughputMeter::new(10_000),
            committed_log: Vec::new(),
            checkpoint_log: Vec::new(),
        };
        if genesis.view.position_of(&node.keys.permanent_public()).is_some() {
            node.become_genesis_member();
        }
        node
    }

    /// Throughput meter.
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// `(time, count)` commit events for timeline plots (Fig. 7).
    pub fn commit_log(&self) -> &[(Time, u64)] {
        &self.committed_log
    }

    /// `(time, covered_block)` for every checkpoint this replica took.
    pub fn checkpoint_log(&self) -> &[(Time, u64)] {
        &self.checkpoint_log
    }

    /// Chain height, if active.
    pub fn height(&self) -> Option<u64> {
        self.member.as_ref().map(|m| m.ledger.height())
    }

    /// The current view, if active.
    pub fn view(&self) -> Option<&ViewInfo> {
        self.member.as_ref().map(|m| &m.view)
    }

    /// True while this node is an active consortium member.
    pub fn is_active(&self) -> bool {
        self.member.is_some()
    }

    /// True while this node is blocked on state transfer.
    pub fn is_syncing(&self) -> bool {
        self.member.as_ref().is_some_and(|m| m.syncing)
    }

    /// Ordering diagnostics: (last_delivered, pending, regency, leader).
    pub fn ordering_status(&self) -> Option<(u64, usize, u32, usize)> {
        self.member
            .as_ref()
            .map(|m| (m.core.last_delivered(), m.core.pending_len(), m.core.regency(), m.core.leader()))
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Full copy of the chain (for audits in tests/examples).
    pub fn chain(&self) -> Vec<Block> {
        self.member
            .as_ref()
            .map(|m| m.ledger.blocks_from(1).unwrap_or_default())
            .unwrap_or_default()
    }

    /// The genesis configuration.
    pub fn genesis(&self) -> &Genesis {
        &self.genesis
    }

    fn become_genesis_member(&mut self) {
        let view = self.genesis.view.clone();
        self.keys.rotate_to(view.id);
        let me = view
            .position_of(&self.keys.permanent_public())
            .expect("genesis member");
        let core = OrderingCore::new(
            me,
            view.to_consensus_view(),
            self.keys.consensus().clone(),
            self.config.ordering,
            0,
        );
        let ledger =
            Ledger::open(MemLog::new(), self.genesis.clone()).expect("memory ledger opens");
        self.member = Some(MemberState {
            generation: 0,
            pending_reconfig: None,
            view,
            core,
            ledger,
            snapshot: None,
            delivery_queue: VecDeque::new(),
            open: None,
            persist_stash: HashMap::new(),
            exclude_votes: HashMap::new(),
            verifying: HashMap::new(),
            timer_armed: false,
            delivered_at_arm: 0,
            next_token: 100,
            syncing: false,
        });
    }

    fn node_of(&self, view: &ViewInfo, replica: ReplicaId) -> Option<NodeId> {
        view.members
            .get(replica)
            .and_then(|m| self.directory.get(&m.permanent))
            .copied()
    }

    fn my_replica_id(&self) -> Option<ReplicaId> {
        let pk = self.keys.permanent_public();
        self.member.as_ref().and_then(|m| m.view.position_of(&pk))
    }

    fn send_to_members(&self, msg: &ChainMsg, ctx: &mut Ctx<'_, ChainMsg>) {
        let Some(m) = self.member.as_ref() else { return };
        let me = self.my_replica_id();
        for r in 0..m.view.n() {
            if Some(r) == me {
                continue;
            }
            if let Some(node) = self.node_of(&m.view, r) {
                ctx.send(node, msg.clone(), msg.wire_size());
            }
        }
    }

    fn handle_core_outputs(&mut self, outputs: Vec<CoreOutput>, ctx: &mut Ctx<'_, ChainMsg>) {
        let generation_at_entry = self.member.as_ref().map(|m| m.generation);
        for out in outputs {
            // A view change mid-loop replaces the core; everything the old
            // core emitted after the reconfiguration batch is stale and must
            // not leak into the new view.
            if self.member.as_ref().map(|m| m.generation) != generation_at_entry {
                break;
            }
            match out {
                CoreOutput::Broadcast(m) => {
                    if matches!(m, SmrMsg::Consensus(ConsensusMsg::Accept { .. })) {
                        ctx.charge(ctx.hw().cpu.sign_ns);
                    }
                    let msg = ChainMsg::Smr(m);
                    self.send_to_members(&msg, ctx);
                }
                CoreOutput::Send(to, m) => {
                    if let Some(member) = self.member.as_ref() {
                        if let Some(node) = self.node_of(&member.view, to) {
                            let msg = ChainMsg::Smr(m);
                            let size = msg.wire_size();
                            ctx.send(node, msg, size);
                        }
                    }
                }
                CoreOutput::Deliver(batch) => {
                    if let Some(m) = self.member.as_mut() {
                        m.delivery_queue.push_back(batch);
                    }
                    self.pump_deliveries(ctx);
                }
                CoreOutput::NeedStateTransfer { .. } => self.start_state_transfer(ctx),
            }
        }
        self.arm_progress_timer(ctx);
    }

    fn arm_progress_timer(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let timeout = self.config.progress_timeout;
        let Some(m) = self.member.as_mut() else { return };
        if !m.timer_armed && m.core.pending_len() > 0 {
            m.timer_armed = true;
            m.delivered_at_arm = m.core.last_delivered();
            ctx.set_timer(timeout, TOKEN_PROGRESS);
        }
    }

    fn pump_deliveries(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        loop {
            let batch = {
                let Some(m) = self.member.as_mut() else { return };
                if m.open.is_some() {
                    return; // Algorithm 1 processes blocks sequentially
                }
                let Some(batch) = m.delivery_queue.pop_front() else { return };
                batch
            };
            self.start_block(batch, ctx);
        }
    }

    /// Algorithm 1 lines 16-29 (and 37-48 for reconfigurations).
    fn start_block(&mut self, batch: OrderedBatch, ctx: &mut Ctx<'_, ChainMsg>) {
        let mut app_requests = Vec::new();
        let mut reconfig_tx: Option<ReconfigTx> = None;
        for req in batch.requests {
            match req.payload.first() {
                Some(&PAYLOAD_RECONFIG) => {
                    if reconfig_tx.is_none() {
                        if let Ok(tx) = from_bytes::<ReconfigTx>(&req.payload[1..]) {
                            reconfig_tx = Some(tx);
                        }
                    }
                }
                Some(&PAYLOAD_EXCLUDE_VOTE) => {
                    if let Ok((target, vote)) = parse_exclude_vote(&req.payload[1..]) {
                        if let Some(m) = self.member.as_mut() {
                            // Tally only authentic votes from current members.
                            let op = ReconfigOp::Exclude { target };
                            let payload = vote_payload(m.view.id + 1, &op, &vote.new_key);
                            let authentic = m
                                .view
                                .members
                                .get(vote.voter)
                                .is_some_and(|member| {
                                    member.permanent == vote.new_key.permanent
                                        && member.permanent.verify(&payload, &vote.signature)
                                });
                            if !authentic {
                                continue;
                            }
                            let entry = m.exclude_votes.entry(target).or_default();
                            if !entry.iter().any(|v| v.voter == vote.voter) {
                                entry.push(vote);
                            }
                            let threshold = m.view.n() - m.view.f();
                            if reconfig_tx.is_none() && entry.len() >= threshold {
                                let votes = m.exclude_votes.remove(&target).unwrap_or_default();
                                reconfig_tx = Some(ReconfigTx {
                                    new_view_id: m.view.id + 1,
                                    op: ReconfigOp::Exclude { target },
                                    votes,
                                });
                            }
                        }
                    }
                }
                _ => app_requests.push(req),
            }
        }
        if !app_requests.is_empty() {
            self.make_tx_block(batch.instance, app_requests, &batch.proof, ctx);
        }
        if let Some(tx) = reconfig_tx {
            // If the tx block above is still mid-pipeline (fsync/PERSIST),
            // defer the reconfiguration until it completes: the view-key
            // rotation must not invalidate an in-flight certificate.
            let open = self.member.as_ref().is_some_and(|m| m.open.is_some());
            if open {
                if let Some(m) = self.member.as_mut() {
                    m.pending_reconfig = Some((batch.instance, tx, batch.proof.clone()));
                }
            } else {
                self.make_reconfig_block(batch.instance, tx, &batch.proof, ctx);
            }
        }
    }

    fn make_tx_block(
        &mut self,
        consensus_id: u64,
        requests: Vec<Request>,
        proof: &smartchain_consensus::proof::DecisionProof,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let count = requests.len();
        self.meter.record(ctx.now(), count as u64);
        self.committed_log.push((ctx.now(), count as u64));
        let mut exec_cost = self.config.execute_ns * count as Time;
        if self.config.sig_mode == SigMode::Sequential {
            // The paper's sequential mode verifies inside the state machine.
            exec_cost += ctx.hw().cpu.verify_ns * count as Time;
        }
        ctx.charge(exec_cost);
        let mut results = Vec::with_capacity(count);
        let mut replies = Vec::with_capacity(count);
        let me = self.my_replica_id().unwrap_or(0);
        for req in &requests {
            if self.config.sig_mode == SigMode::Sequential && !verify_envelope_signature(req) {
                results.push(Vec::new());
                continue; // forged transaction dropped at execution
            }
            let app_result = match unwrap_app_payload(&req.payload) {
                Some(bytes) => {
                    let inner = Request {
                        client: req.client,
                        seq: req.seq,
                        payload: bytes.to_vec(),
                        signature: req.signature,
                    };
                    self.app.execute(&inner)
                }
                None => Vec::new(),
            };
            let mut result = app_result;
            // Pad to the modeled reply size (the paper's replies are
            // 270-380 bytes); longer app results are kept as-is.
            if result.len() < self.config.reply_size {
                result.resize(self.config.reply_size.max(8), 0);
            }
            replies.push(Reply {
                client: req.client,
                seq: req.seq,
                result: result.clone(),
                replica: me,
            });
            results.push(result);
        }
        let Some(m) = self.member.as_mut() else { return };
        let body = BlockBody::Transactions { consensus_id, requests, proof: proof.clone(), results };
        let block = m.ledger.build_next(body);
        let number = block.header.number;
        let header_hash = block.header.hash();
        let size = block.wire_size();
        ctx.charge(ctx.hw().cpu.hash_time(size));
        m.ledger.append(&block).expect("memory ledger append");
        m.open = Some(OpenBlock {
            number,
            header_hash,
            replies,
            cert: Vec::new(),
            header_synced: false,
        });
        match self.config.persistence {
            Persistence::Sync => {
                let token = KIND_HEADER | number;
                ctx.disk_write(size, true, token);
            }
            Persistence::Async => {
                ctx.disk_write(size, false, 0);
                self.header_done(number, ctx);
            }
            Persistence::Memory => self.header_done(number, ctx),
        }
    }

    fn make_reconfig_block(
        &mut self,
        consensus_id: u64,
        tx: ReconfigTx,
        proof: &smartchain_consensus::proof::DecisionProof,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let Some(m) = self.member.as_mut() else { return };
        if !tx.verify(&m.view) {
            return;
        }
        let new_view = tx.apply(&m.view);
        let body = BlockBody::Reconfiguration {
            consensus_id,
            tx: tx.clone(),
            proof: proof.clone(),
            new_view: new_view.clone(),
        };
        let block = m.ledger.build_next(body);
        let size = block.wire_size();
        ctx.charge(ctx.hw().cpu.hash_time(size));
        m.ledger.append(&block).expect("memory ledger append");
        let height = m.ledger.height();
        if self.config.persistence != Persistence::Memory {
            ctx.disk_write(size, self.config.persistence == Persistence::Sync, 0);
        }
        let my_pk = self.keys.permanent_public();
        let am_member = new_view.position_of(&my_pk).is_some();
        if let ReconfigOp::Join { joiner } = &tx.op {
            if let Some(&node) = self.directory.get(&joiner.permanent) {
                if joiner.permanent != my_pk {
                    let msg = ChainMsg::Welcome { view: new_view.clone() };
                    let size = msg.wire_size();
                    ctx.send(node, msg, size);
                }
            }
        }
        if am_member {
            self.keys.rotate_to(new_view.id);
            let me = new_view.position_of(&my_pk).expect("member");
            let m = self.member.as_mut().expect("active");
            m.generation += 1;
            m.view = new_view;
            m.core = OrderingCore::new(
                me,
                m.view.to_consensus_view(),
                self.keys.consensus().clone(),
                self.config.ordering,
                height.max(consensus_id),
            );
            m.persist_stash.clear();
            m.exclude_votes.clear();
            // Requests admitted before the view change (e.g. duplicate
            // reconfiguration submissions) are dropped with the old core;
            // clients retransmit if still relevant. The duplicate filter is
            // rebuilt from the chain so retransmissions of already-delivered
            // requests are not re-decided.
            self.reseed_dedup_from_ledger();
        } else {
            // We left (or were excluded): deactivate, but only after the
            // reconfiguration is installed (the paper requires departing
            // replicas to keep serving until the new view is in place).
            self.member = None;
        }
    }

    fn header_done(&mut self, number: u64, ctx: &mut Ctx<'_, ChainMsg>) {
        let variant = self.config.variant;
        {
            let Some(m) = self.member.as_mut() else { return };
            let Some(open) = m.open.as_mut() else { return };
            if open.number != number {
                return;
            }
            open.header_synced = true;
        }
        match variant {
            Variant::Weak => self.finish_block(ctx),
            Variant::Strong => {
                let (header_hash, me) = {
                    let m = self.member.as_ref().expect("active");
                    let open = m.open.as_ref().expect("open");
                    (open.header_hash, self.my_replica_id())
                };
                ctx.charge(ctx.hw().cpu.sign_ns);
                let payload = persist_sign_payload(number, &header_hash);
                let signature = self.keys.consensus().sign(&payload);
                if let Some(me) = me {
                    let m = self.member.as_mut().expect("active");
                    let open = m.open.as_mut().expect("open");
                    open.cert.push((me, signature));
                    if let Some(stash) = m.persist_stash.remove(&number) {
                        for (r, h, sig) in stash {
                            if h == header_hash && !open.cert.iter().any(|(rr, _)| *rr == r) {
                                open.cert.push((r, sig));
                            }
                        }
                    }
                }
                let msg = ChainMsg::Persist { block: number, header_hash, signature };
                self.send_to_members(&msg, ctx);
                self.check_certificate(ctx);
            }
        }
    }

    fn on_persist(
        &mut self,
        from_node: NodeId,
        block: u64,
        header_hash: Hash,
        signature: Signature,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let sender = {
            let Some(m) = self.member.as_ref() else { return };
            (0..m.view.n()).find(|&r| self.node_of(&m.view, r) == Some(from_node))
        };
        let Some(sender) = sender else { return };
        // PERSIST shares are full signatures (they end up in the publicly
        // verifiable certificate), so the verification costs the real thing.
        ctx.charge(ctx.hw().cpu.verify_ns);
        let valid = {
            let m = self.member.as_ref().expect("active");
            let payload = persist_sign_payload(block, &header_hash);
            m.view
                .members
                .get(sender)
                .is_some_and(|mem| mem.consensus.verify(&payload, &signature))
        };
        if !valid {
            return;
        }
        let Some(m) = self.member.as_mut() else { return };
        match m.open.as_mut() {
            Some(open) if open.number == block && open.header_hash == header_hash => {
                if !open.cert.iter().any(|(r, _)| *r == sender) {
                    open.cert.push((sender, signature));
                }
                self.check_certificate(ctx);
            }
            _ => {
                m.persist_stash
                    .entry(block)
                    .or_default()
                    .push((sender, header_hash, signature));
            }
        }
    }

    fn check_certificate(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let ready = {
            let Some(m) = self.member.as_ref() else { return };
            let Some(open) = m.open.as_ref() else { return };
            open.header_synced && open.cert.len() >= m.view.quorum()
        };
        if !ready {
            return;
        }
        let m = self.member.as_mut().expect("active");
        let open = m.open.as_ref().expect("open");
        let number = open.number;
        let cert = Certificate { signatures: open.cert.clone() };
        let cert_size = 16 + cert.signatures.len() * 73;
        m.ledger.set_certificate(number, cert).expect("memory ledger");
        if self.config.persistence != Persistence::Memory {
            // Asynchronous write: recoverable after a full crash (§V-C).
            ctx.disk_write(cert_size, false, 0);
        }
        self.finish_block(ctx);
    }

    fn finish_block(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let (number, replies) = {
            let Some(m) = self.member.as_mut() else { return };
            let Some(open) = m.open.take() else { return };
            (open.number, open.replies)
        };
        for reply in replies {
            let node = client_node(reply.client);
            let size = reply.wire_size();
            ctx.send(node, ChainMsg::Smr(SmrMsg::Reply(reply)), size);
        }
        // A reconfiguration deferred behind this block applies now, before
        // any further deliveries.
        if let Some((cid, tx, proof)) = self.member.as_mut().and_then(|m| m.pending_reconfig.take())
        {
            self.make_reconfig_block(cid, tx, &proof, ctx);
        }
        let z = self.genesis.checkpoint_period;
        if z > 0 {
            // Optionally offset the trigger per replica so snapshot stalls
            // never align cluster-wide (paper §VI; Dura-SMaRt §II-C2).
            let offset = if self.config.stagger_checkpoints {
                let (me, n) = self
                    .member
                    .as_ref()
                    .map(|m| (self.my_replica_id().unwrap_or(0) as u64, m.view.n() as u64))
                    .unwrap_or((0, 1));
                me * z / n.max(1)
            } else {
                0
            };
            if (number + offset) % z == 0 {
                self.take_checkpoint(number, ctx);
            }
        }
        self.pump_deliveries(ctx);
    }

    fn state_size(&self) -> u64 {
        if self.config.state_size > 0 {
            self.config.state_size
        } else {
            self.app.take_snapshot().len() as u64
        }
    }

    fn take_checkpoint(&mut self, covered_block: u64, ctx: &mut Ctx<'_, ChainMsg>) {
        self.checkpoint_log.push((ctx.now(), covered_block));
        let size = self.state_size();
        ctx.charge(self.config.snapshot_ns_per_byte * size);
        let snapshot = self.app.take_snapshot();
        if self.config.persistence != Persistence::Memory {
            ctx.disk_write(size as usize, false, 0);
        }
        if let Some(m) = self.member.as_mut() {
            m.snapshot = Some((covered_block, snapshot));
            m.ledger.set_last_checkpoint(covered_block);
        }
    }

    // ------------------------------------------------------------------
    // State transfer
    // ------------------------------------------------------------------

    fn start_state_transfer(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let from_block = {
            let Some(m) = self.member.as_mut() else { return };
            if m.syncing {
                return;
            }
            m.syncing = true;
            m.ledger.height() + 1
        };
        let msg = ChainMsg::StateReq { from_block };
        self.send_to_members(&msg, ctx);
    }

    fn serve_state_request(
        &mut self,
        from_node: NodeId,
        from_block: u64,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let Some(m) = self.member.as_ref() else { return };
        if m.syncing {
            return;
        }
        let me = self.my_replica_id().unwrap_or(usize::MAX);
        // The highest-id member other than the requester ships the full
        // state: picking the *leader* (id 0) would wedge its NIC behind a
        // multi-second transfer and stall ordering cluster-wide.
        let requester_id = (0..m.view.n()).find(|&r| self.node_of(&m.view, r) == Some(from_node));
        let candidate = if requester_id == Some(m.view.n() - 1) {
            m.view.n().saturating_sub(2)
        } else {
            m.view.n() - 1
        };
        let full = me == candidate;
        let snapshot = m.snapshot.clone();
        let snap_covered = snapshot.as_ref().map(|(b, _)| *b).unwrap_or(0);
        // Ship only what the requester is missing: the snapshot (if it
        // covers part of the gap) plus blocks after max(snapshot, what the
        // requester already has). Re-shipping from block 1 on every catch-up
        // round would make a lagging replica chase the chain forever.
        let start = (snap_covered + 1).max(from_block.max(1));
        let snapshot = if snap_covered + 1 > from_block { snapshot } else { None };
        let blocks = m.ledger.blocks_from(start).unwrap_or_default();
        let blocks_size: usize = blocks.iter().map(Block::wire_size).sum();
        let modeled = if full {
            let snap_size = if snapshot.is_some() { self.state_size() } else { 0 };
            snap_size + blocks_size as u64
        } else {
            64
        };
        if full && self.config.persistence != Persistence::Memory {
            ctx.disk_read(modeled as usize, 0);
        }
        let msg = ChainMsg::StateRep {
            snapshot: if full { snapshot } else { None },
            blocks: if full { blocks } else { Vec::new() },
            modeled_size: modeled,
            full,
        };
        let size = msg.wire_size();
        ctx.send(from_node, msg, size);
    }

    fn install_state(
        &mut self,
        snapshot: Option<(u64, Vec<u8>)>,
        blocks: Vec<Block>,
        modeled_size: u64,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        {
            let Some(m) = self.member.as_ref() else { return };
            if !m.syncing {
                return;
            }
        }
        ctx.charge(self.config.install_ns_per_byte * modeled_size);
        if let Some((covered, state)) = snapshot {
            self.app.install_snapshot(&state);
            if let Some(m) = self.member.as_mut() {
                m.snapshot = Some((covered, state));
                m.ledger.set_last_checkpoint(covered);
            }
        }
        let mut new_view: Option<ViewInfo> = None;
        for block in blocks {
            let skip = self
                .member
                .as_ref()
                .is_some_and(|m| block.header.number <= m.ledger.height());
            if skip {
                continue;
            }
            match &block.body {
                BlockBody::Transactions { requests, .. } => {
                    for req in requests {
                        if let Some(m) = self.member.as_mut() {
                            m.core.note_delivered(req.client, req.seq);
                        }
                        if let Some(bytes) = unwrap_app_payload(&req.payload) {
                            let inner = Request {
                                client: req.client,
                                seq: req.seq,
                                payload: bytes.to_vec(),
                                signature: req.signature,
                            };
                            let _ = self.app.execute(&inner);
                        }
                    }
                }
                BlockBody::Reconfiguration { new_view: v, .. } => {
                    new_view = Some(v.clone());
                }
            }
            if let Some(m) = self.member.as_mut() {
                let _ = m.ledger.append(&block);
            }
        }
        if let Some(v) = new_view {
            let my_pk = self.keys.permanent_public();
            if v.position_of(&my_pk).is_some() {
                self.keys.rotate_to(v.id);
                let height = self.member.as_ref().map(|m| m.ledger.height()).unwrap_or(0);
                if let Some(m) = self.member.as_mut() {
                    let me = v.position_of(&my_pk).expect("member");
                    m.generation += 1;
                    m.view = v;
                    m.core = OrderingCore::new(
                        me,
                        m.view.to_consensus_view(),
                        self.keys.consensus().clone(),
                        self.config.ordering,
                        height,
                    );
                }
                self.reseed_dedup_from_ledger();
            } else {
                self.member = None;
                return;
            }
        }
        if let Some(m) = self.member.as_mut() {
            let height = m.ledger.height();
            m.core.fast_forward(height);
            m.syncing = false;
        }
    }

    /// Rebuilds the ordering core's duplicate filter from the whole local
    /// chain (used whenever a fresh core is paired with replayed history).
    fn reseed_dedup_from_ledger(&mut self) {
        let Some(m) = self.member.as_mut() else { return };
        let blocks = m.ledger.blocks_from(1).unwrap_or_default();
        for block in &blocks {
            if let BlockBody::Transactions { requests, .. } = &block.body {
                for req in requests {
                    m.core.note_delivered(req.client, req.seq);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Decentralized reconfiguration (client side)
    // ------------------------------------------------------------------

    fn ask_to_join(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        if self.member.is_some() {
            return;
        }
        let joiner = self.keys.certified_key_for(self.genesis.view.id + 1);
        let msg = ChainMsg::JoinAsk { joiner };
        for member in &self.genesis.view.members.clone() {
            if member.permanent == self.keys.permanent_public() {
                continue;
            }
            if let Some(&node) = self.directory.get(&member.permanent) {
                ctx.send(node, msg.clone(), msg.wire_size());
            }
        }
    }

    /// Schedules this member to advocate excluding `target` at time `at`
    /// (paper Fig. 5b: each member submits a signed remove transaction; a
    /// quorum of n−f such transactions produces the new view).
    pub fn schedule_exclusion(&mut self, at: Time, target: PublicKey) {
        self.exclude_at = Some((at, target));
    }

    /// Submits this member's exclude vote through the ordering protocol.
    fn submit_exclude_vote(&mut self, target: PublicKey, ctx: &mut Ctx<'_, ChainMsg>) {
        let (new_view_id, me, members) = {
            let Some(m) = self.member.as_ref() else { return };
            if m.view.position_of(&target).is_none() {
                return; // target already gone
            }
            let Some(me) = self.my_replica_id() else { return };
            (m.view.id + 1, me, m.view.members.clone())
        };
        let op = ReconfigOp::Exclude { target };
        let new_key = self.keys.certified_key_for(new_view_id);
        let payload = vote_payload(new_view_id, &op, &new_key);
        ctx.charge(ctx.hw().cpu.sign_ns * 2);
        let vote = ReconfigVote {
            voter: me,
            new_key,
            signature: self.keys.permanent().sign(&payload),
        };
        self.protocol_seq += 1;
        let request = Request {
            client: client_id(ctx.id(), 0xFFFE),
            seq: self.protocol_seq,
            payload: exclude_vote_payload(&target, &vote),
            signature: None,
        };
        // Order it like any client request (including through ourselves).
        let msg = ChainMsg::Smr(SmrMsg::Request(request.clone()));
        for member in &members {
            if let Some(&node) = self.directory.get(&member.permanent) {
                if node == ctx.id() {
                    self.admit(request.clone(), ctx);
                } else {
                    ctx.send(node, msg.clone(), msg.wire_size());
                }
            }
        }
    }

    fn ask_to_leave(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let Some(m) = self.member.as_ref() else { return };
        let joiner = self.keys.certified_key_for(m.view.id + 1);
        let msg = ChainMsg::JoinAsk { joiner };
        self.send_to_members(&msg, ctx);
    }

    /// Handles a JoinAsk: a non-member asker wants in; a member asker wants
    /// out. Either way, vote with our new key for the next view.
    fn on_join_ask(&mut self, from_node: NodeId, joiner: CertifiedKey, ctx: &mut Ctx<'_, ChainMsg>) {
        let (new_view_id, op, me, current_view) = {
            let Some(m) = self.member.as_ref() else { return };
            let Some(me) = self.my_replica_id() else { return };
            let new_view_id = m.view.id + 1;
            let op = if m.view.position_of(&joiner.permanent).is_some() {
                ReconfigOp::Leave { leaver: joiner.permanent }
            } else {
                // Admission policy hook: accept-all (the paper leaves the
                // policy to the application: PoW, certification, stake...).
                if !joiner.verify(new_view_id) {
                    return; // badly certified joiner key
                }
                ReconfigOp::Join { joiner }
            };
            (new_view_id, op, me, m.view.clone())
        };
        ctx.charge(ctx.hw().cpu.sign_ns * 2);
        let new_key = self.keys.certified_key_for(new_view_id);
        let payload = vote_payload(new_view_id, &op, &new_key);
        let vote = ReconfigVote {
            voter: me,
            new_key,
            signature: self.keys.permanent().sign(&payload),
        };
        let msg = ChainMsg::JoinVote { vote, op, new_view_id, current_view };
        let size = msg.wire_size();
        ctx.send(from_node, msg, size);
    }

    /// Collects votes for our own join/leave; submits the reconfiguration
    /// transaction once a quorum (n−f of the current view) is reached.
    fn on_join_vote(
        &mut self,
        vote: ReconfigVote,
        op: ReconfigOp,
        new_view_id: u64,
        current_view: ViewInfo,
        ctx: &mut Ctx<'_, ChainMsg>,
    ) {
        let my_pk = self.keys.permanent_public();
        let mine = match &op {
            ReconfigOp::Join { joiner } => joiner.permanent == my_pk && self.member.is_none(),
            ReconfigOp::Leave { leaver } => *leaver == my_pk && self.member.is_some(),
            ReconfigOp::Exclude { .. } => false,
        };
        if !mine {
            return;
        }
        self.own_view_seen = Some(current_view.clone());
        let votes = self.own_votes.entry(new_view_id).or_default();
        if votes.iter().any(|v| v.voter == vote.voter) {
            return;
        }
        votes.push(vote);
        let needed = current_view.n() - current_view.f();
        if votes.len() >= needed && !self.own_submitted.contains(&new_view_id) {
            self.own_submitted.insert(new_view_id);
            let tx = ReconfigTx { new_view_id, op, votes: votes.clone() };
            self.protocol_seq += 1;
            let request = Request {
                client: client_id(ctx.id(), 0xFFFF),
                seq: self.protocol_seq,
                payload: reconfig_payload(&tx),
                signature: None,
            };
            let msg = ChainMsg::Smr(SmrMsg::Request(request));
            for member in &current_view.members {
                if let Some(&node) = self.directory.get(&member.permanent) {
                    ctx.send(node, msg.clone(), msg.wire_size());
                }
            }
        }
    }

    fn admit(&mut self, req: Request, ctx: &mut Ctx<'_, ChainMsg>) {
        let sig_mode = self.config.sig_mode;
        let Some(m) = self.member.as_mut() else { return };
        if m.syncing {
            return;
        }
        match sig_mode {
            SigMode::None => {
                let outs = m.core.submit(req);
                self.handle_core_outputs(outs, ctx);
            }
            SigMode::Sequential => {
                // Verified at execution time, inside the state machine.
                let outs = m.core.submit(req);
                self.handle_core_outputs(outs, ctx);
            }
            SigMode::Parallel => {
                ctx.charge(ctx.hw().cpu.pool_dispatch_ns);
                let delay = ctx.pool_charge(ctx.hw().cpu.verify_ns, 1);
                m.next_token += 1;
                let token = KIND_VERIFY | m.next_token;
                m.verifying.insert(token, req);
                ctx.op_after(delay, token);
            }
        }
    }
}

impl<A: Application> Actor<ChainMsg> for ChainNode<A> {
    fn on_event(&mut self, event: Event<ChainMsg>, ctx: &mut Ctx<'_, ChainMsg>) {
        match event {
            Event::Start => {
                if let Some(at) = self.join_at {
                    ctx.set_timer(at, TOKEN_JOIN);
                }
                if let Some(at) = self.leave_at {
                    ctx.set_timer(at, TOKEN_LEAVE);
                }
                if let Some((at, _)) = self.exclude_at {
                    ctx.set_timer(at, TOKEN_EXCLUDE);
                }
            }
            Event::Timer { token: TOKEN_JOIN } => self.ask_to_join(ctx),
            Event::Timer { token: TOKEN_LEAVE } => self.ask_to_leave(ctx),
            Event::Timer { token: TOKEN_EXCLUDE } => {
                if let Some((_, target)) = self.exclude_at {
                    self.submit_exclude_vote(target, ctx);
                }
            }
            Event::Timer { token: TOKEN_PROGRESS } => {
                let outs = {
                    let Some(m) = self.member.as_mut() else { return };
                    m.timer_armed = false;
                    if m.core.last_delivered() == m.delivered_at_arm && m.core.pending_len() > 0 {
                        m.core.on_progress_timeout()
                    } else {
                        Vec::new()
                    }
                };
                if outs.is_empty() {
                    self.arm_progress_timer(ctx);
                } else {
                    self.handle_core_outputs(outs, ctx);
                }
            }
            Event::Timer { .. } => {}
            Event::OpDone { token } => match token & KIND_MASK {
                KIND_HEADER => self.header_done(token & !KIND_MASK, ctx),
                KIND_VERIFY => {
                    let req = self.member.as_mut().and_then(|m| m.verifying.remove(&token));
                    if let Some(req) = req {
                        if verify_envelope_signature(&req) {
                            let outs = {
                                let Some(m) = self.member.as_mut() else { return };
                                m.core.submit(req)
                            };
                            self.handle_core_outputs(outs, ctx);
                        }
                    }
                }
                _ => {}
            },
            Event::Message { from, msg } => {
                ctx.charge(ctx.hw().cpu.message_overhead_ns);
                match msg {
                    ChainMsg::Smr(SmrMsg::Request(req)) => self.admit(req, ctx),
                    ChainMsg::Smr(inner) => {
                        let handled = {
                            let Some(m) = self.member.as_ref() else { return };
                            if m.syncing {
                                None
                            } else {
                                (0..m.view.n()).find(|&r| self.node_of(&m.view, r) == Some(from))
                            }
                        };
                        let Some(sender) = handled else { return };
                        if let SmrMsg::Consensus(ConsensusMsg::Propose { value, .. }) = &inner {
                            ctx.charge(ctx.hw().cpu.hash_time(value.len()));
                        }
                        if matches!(inner, SmrMsg::Consensus(ConsensusMsg::Accept { .. })) {
                            ctx.charge(ctx.hw().cpu.verify_ns / 4);
                        }
                        let outs = {
                            let m = self.member.as_mut().expect("active");
                            m.core.on_message(sender, inner)
                        };
                        self.handle_core_outputs(outs, ctx);
                    }
                    ChainMsg::Persist { block, header_hash, signature } => {
                        self.on_persist(from, block, header_hash, signature, ctx);
                    }
                    ChainMsg::StateReq { from_block } => {
                        self.serve_state_request(from, from_block, ctx);
                    }
                    ChainMsg::StateRep { snapshot, blocks, modeled_size, full } => {
                        if full {
                            self.install_state(snapshot, blocks, modeled_size, ctx);
                        }
                    }
                    ChainMsg::JoinAsk { joiner } => self.on_join_ask(from, joiner, ctx),
                    ChainMsg::JoinVote { vote, op, new_view_id, current_view } => {
                        self.on_join_vote(vote, op, new_view_id, current_view, ctx);
                    }
                    ChainMsg::Welcome { view } => {
                        if self.member.is_none()
                            && view.position_of(&self.keys.permanent_public()).is_some()
                        {
                            self.keys.rotate_to(view.id);
                            let me = view
                                .position_of(&self.keys.permanent_public())
                                .expect("member");
                            let core = OrderingCore::new(
                                me,
                                view.to_consensus_view(),
                                self.keys.consensus().clone(),
                                self.config.ordering,
                                0,
                            );
                            let ledger = Ledger::open(MemLog::new(), self.genesis.clone())
                                .expect("memory ledger opens");
                            self.member = Some(MemberState {
                                generation: 0,
                                pending_reconfig: None,
                                view,
                                core,
                                ledger,
                                snapshot: None,
                                delivery_queue: VecDeque::new(),
                                open: None,
                                persist_stash: HashMap::new(),
                                exclude_votes: HashMap::new(),
                                verifying: HashMap::new(),
                                timer_armed: false,
                                delivered_at_arm: 0,
                                next_token: 100,
                                syncing: false,
                            });
                            self.start_state_transfer(ctx);
                        }
                    }
                }
            }
            Event::Crash => {
                // Volatile state is lost; the ledger below the sync horizon
                // survives (the MemLog stands in for the disk).
            }
            Event::Recover => {
                self.app.reset();
                let replay = {
                    let Some(m) = self.member.as_mut() else { return };
                    m.delivery_queue.clear();
                    m.open = None;
                    m.persist_stash.clear();
                    m.verifying.clear();
                    m.timer_armed = false;
                    m.syncing = false;
                    m.ledger.blocks_from(1).unwrap_or_default()
                };
                let mut replayed = 0u64;
                for block in &replay {
                    if let BlockBody::Transactions { requests, .. } = &block.body {
                        for req in requests {
                            if let Some(m) = self.member.as_mut() {
                                m.core.note_delivered(req.client, req.seq);
                            }
                            if let Some(bytes) = unwrap_app_payload(&req.payload) {
                                let inner = Request {
                                    client: req.client,
                                    seq: req.seq,
                                    payload: bytes.to_vec(),
                                    signature: req.signature,
                                };
                                let _ = self.app.execute(&inner);
                                replayed += 1;
                            }
                        }
                    }
                }
                ctx.charge(self.config.execute_ns * replayed);
                if let Some(m) = self.member.as_mut() {
                    let height = m.ledger.height();
                    m.core.fast_forward(height);
                }
                self.start_state_transfer(ctx);
            }
        }
    }
}
