//! Third-party chain verification (self-verifiability, paper Observation 2
//! and §V-B).
//!
//! An auditor holds nothing but the genesis configuration and a sequence of
//! blocks. It verifies, block by block:
//!
//! 1. **linkage** — `hash_last_block` chains correctly and the transaction
//!    Merkle commitment matches the body;
//! 2. **binding** — a transaction block's decision proof certifies *this*
//!    block's content: its value hash must equal the hash of the encoded
//!    request batch. Without this check a replayed proof (a valid quorum of
//!    ACCEPT signatures for some other decided value) would lend authority
//!    to arbitrary forged requests;
//! 3. **authority** — the block is vouched for by the view in force at its
//!    position: the strong-variant certificate (or, failing that, the
//!    decision proof) must carry a quorum of signatures under the *consensus
//!    keys published for that view*;
//! 4. **reconfigurations** — reconfiguration blocks carry a valid n−f vote
//!    certificate from the previous view, and the new view is exactly the
//!    deterministic application of the reconfiguration transaction.
//!
//! Because consensus keys rotate per view and the old secrets are destroyed
//! (the forgetting protocol), a coalition of *ex*-members cannot mint a
//! competing suffix: their signatures no longer count toward any view's
//! quorum. [`verify_chain`] therefore rejects the Figure-4 fork.

use crate::block::{Block, BlockBody, Genesis, ViewInfo};
use smartchain_consensus::proof::DecisionProof;
use smartchain_crypto::{sha256, Hash};
use smartchain_smr::types::encode_batch;

/// Why a chain failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditError {
    /// Genesis key certifications are invalid.
    BadGenesis,
    /// Block numbering is not consecutive.
    BadNumber {
        /// Expected block number.
        expected: u64,
        /// Number found in the header.
        found: u64,
    },
    /// `hash_last_block` does not match the previous block.
    BrokenLink {
        /// Block where the break occurred.
        number: u64,
    },
    /// `hash_transactions` does not match the body.
    BadCommitment {
        /// Offending block.
        number: u64,
    },
    /// The decision proof's value hash does not cover the block's request
    /// batch — a replayed proof attached to forged content.
    ProofMismatch {
        /// Offending block.
        number: u64,
    },
    /// Neither the certificate nor the decision proof carries a quorum of
    /// valid signatures under the view in force.
    NoAuthority {
        /// Offending block.
        number: u64,
    },
    /// A reconfiguration block's vote certificate is invalid.
    BadReconfig {
        /// Offending block.
        number: u64,
    },
    /// The recorded new view differs from applying the reconfiguration.
    WrongNewView {
        /// Offending block.
        number: u64,
    },
    /// `last_reconfig` bookkeeping in a header is wrong.
    BadReconfigPointer {
        /// Offending block.
        number: u64,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::BadGenesis => write!(f, "genesis key certifications invalid"),
            AuditError::BadNumber { expected, found } => {
                write!(f, "expected block {expected}, found {found}")
            }
            AuditError::BrokenLink { number } => write!(f, "hash chain broken at block {number}"),
            AuditError::BadCommitment { number } => {
                write!(f, "commitment hashes wrong at block {number}")
            }
            AuditError::ProofMismatch { number } => {
                write!(f, "decision proof does not cover block {number}'s requests")
            }
            AuditError::NoAuthority { number } => {
                write!(f, "no valid quorum authority for block {number}")
            }
            AuditError::BadReconfig { number } => {
                write!(f, "invalid reconfiguration certificate at block {number}")
            }
            AuditError::WrongNewView { number } => {
                write!(f, "recorded new view mismatches at block {number}")
            }
            AuditError::BadReconfigPointer { number } => {
                write!(f, "last_reconfig pointer wrong at block {number}")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Result of a successful audit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditReport {
    /// Number of blocks verified (excluding genesis).
    pub blocks: u64,
    /// The view in force after the last verified block.
    pub final_view_id: u64,
    /// Hash of the last verified block.
    pub tip: Hash,
}

/// Checks a decision proof against a view's consensus keys (the weak
/// variant's authority evidence).
fn proof_has_authority(proof: &DecisionProof, view: &ViewInfo) -> bool {
    proof.verify(&view.to_consensus_view())
}

/// Verifies a full chain against its genesis. See the module docs for the
/// exact checks.
///
/// # Errors
///
/// Returns the first [`AuditError`] encountered.
pub fn verify_chain(genesis: &Genesis, blocks: &[Block]) -> Result<AuditReport, AuditError> {
    if !genesis.view.keys_certified() {
        return Err(AuditError::BadGenesis);
    }
    let mut view = genesis.view.clone();
    let mut prev_hash = genesis.hash();
    let mut last_reconfig = 0u64;
    // `expected` is the *block number*, which the chain must carry
    // explicitly — not an enumerate() index.
    let mut expected = 1u64;
    #[allow(clippy::explicit_counter_loop)]
    for block in blocks {
        let number = block.header.number;
        if number != expected {
            return Err(AuditError::BadNumber {
                expected,
                found: number,
            });
        }
        if block.header.hash_last_block != prev_hash {
            return Err(AuditError::BrokenLink { number });
        }
        if !block.commitments_valid() {
            return Err(AuditError::BadCommitment { number });
        }
        if block.header.last_reconfig != last_reconfig {
            return Err(AuditError::BadReconfigPointer { number });
        }
        match &block.body {
            BlockBody::Transactions {
                requests, proof, ..
            } => {
                // The proof must certify *this* batch: proof.verify() alone
                // only checks signatures over the proof's own value hash,
                // which nothing would otherwise tie to the block content.
                let batch_hash = sha256::digest(&encode_batch(requests));
                if proof.value_hash != batch_hash {
                    return Err(AuditError::ProofMismatch { number });
                }
                let cert_ok = block.certificate.verify(&block.header, &view);
                let proof_ok = proof_has_authority(proof, &view);
                if !cert_ok && !proof_ok {
                    return Err(AuditError::NoAuthority { number });
                }
            }
            BlockBody::Reconfiguration {
                tx,
                proof,
                new_view,
                ..
            } => {
                if !tx.verify(&view) {
                    return Err(AuditError::BadReconfig { number });
                }
                let cert_ok = block.certificate.verify(&block.header, &view);
                let proof_ok = proof_has_authority(proof, &view);
                if !cert_ok && !proof_ok {
                    return Err(AuditError::NoAuthority { number });
                }
                let derived = tx.apply(&view);
                if &derived != new_view {
                    return Err(AuditError::WrongNewView { number });
                }
                view = derived;
                last_reconfig = number;
            }
        }
        prev_hash = block.header.hash();
        expected += 1;
    }
    Ok(AuditReport {
        blocks: blocks.len() as u64,
        final_view_id: view.id,
        tip: prev_hash,
    })
}

/// Compares a suspect suffix against an audited chain: returns true when the
/// suspect chain forks (diverges from) the reference at or after
/// `fork_point`, yet both pass naive linkage checks — used in tests to show
/// that linkage alone does not prevent forks but authority checks do.
pub fn is_link_valid_fork(genesis: &Genesis, reference: &[Block], suspect: &[Block]) -> bool {
    // Linkage-only check of the suspect chain.
    let mut prev = genesis.hash();
    let mut expected = 1u64;
    #[allow(clippy::explicit_counter_loop)]
    for b in suspect {
        if b.header.number != expected || b.header.hash_last_block != prev || !b.commitments_valid()
        {
            return false;
        }
        prev = b.header.hash();
        expected += 1;
    }
    // A fork exists if some position differs from the reference.
    suspect
        .iter()
        .zip(reference.iter())
        .any(|(s, r)| s.header.hash() != r.header.hash())
        || suspect.len() != reference.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{
        persist_sign_payload, vote_payload, BlockBody, Certificate, ReconfigOp, ReconfigTx,
        ReconfigVote,
    };
    use crate::view_keys::KeyStore;
    use smartchain_consensus::messages::accept_sign_payload;
    use smartchain_crypto::keys::{Backend, SecretKey};
    use smartchain_crypto::sha256;
    use smartchain_smr::types::Request;

    struct Harness {
        stores: Vec<KeyStore>,
        genesis: Genesis,
        chain: Vec<Block>,
        view: ViewInfo,
    }

    impl Harness {
        fn new(n: usize) -> Harness {
            let stores: Vec<KeyStore> = (0..n)
                .map(|i| {
                    KeyStore::new(
                        SecretKey::from_seed(Backend::Sim, &[i as u8 + 140; 32]),
                        Backend::Sim,
                    )
                })
                .collect();
            let view = ViewInfo {
                id: 0,
                members: stores.iter().map(|s| s.certified_key_for(0)).collect(),
            };
            let genesis = Genesis {
                view: view.clone(),
                checkpoint_period: 100,
                app_data: Vec::new(),
            };
            Harness {
                stores,
                genesis,
                chain: Vec::new(),
                view,
            }
        }

        fn prev_hash(&self) -> Hash {
            self.chain
                .last()
                .map(|b| b.header.hash())
                .unwrap_or_else(|| self.genesis.hash())
        }

        fn last_reconfig(&self) -> u64 {
            self.chain
                .iter()
                .rev()
                .find(|b| matches!(b.body, BlockBody::Reconfiguration { .. }))
                .map(|b| b.header.number)
                .unwrap_or(0)
        }

        /// Appends a tx block properly signed by the current view.
        fn push_tx_block(&mut self) {
            let number = self.chain.len() as u64 + 1;
            let requests = vec![Request {
                client: 1,
                seq: number,
                payload: vec![number as u8],
                signature: None,
            }];
            let value_hash = sha256::digest(&smartchain_smr::types::encode_batch(&requests));
            // Genuine decision proof from the current view's consensus keys.
            let payload = accept_sign_payload(number, 0, &value_hash);
            let accepts = self
                .view
                .members
                .iter()
                .enumerate()
                .take(self.view.quorum())
                .map(|(i, _)| {
                    let idx = self
                        .stores
                        .iter()
                        .position(|s| {
                            s.certified_key_for(self.view.id).consensus
                                == self.view.members[i].consensus
                        })
                        .expect("store for member");
                    (
                        i,
                        self.stores[idx]
                            .consensus_for_view(self.view.id)
                            .sign(&payload),
                    )
                })
                .collect();
            let proof = DecisionProof {
                instance: number,
                epoch: 0,
                value_hash,
                accepts,
            };
            let body = BlockBody::Transactions {
                consensus_id: number,
                requests,
                proof,
                results: vec![vec![0]],
            };
            let mut block = Block::build(
                number,
                self.last_reconfig(),
                0,
                self.prev_hash(),
                body,
                [0u8; 32],
            );
            // Strong certificate too.
            let cert_payload = persist_sign_payload(number, &block.header.hash());
            block.certificate = Certificate {
                signatures: (0..self.view.quorum())
                    .map(|i| {
                        (
                            i,
                            self.stores[i]
                                .consensus_for_view(self.view.id)
                                .sign(&cert_payload),
                        )
                    })
                    .collect(),
            };
            self.chain.push(block);
        }

        /// Appends a reconfiguration block removing member `leaver`.
        fn push_leave_block(&mut self, leaver: usize) {
            let number = self.chain.len() as u64 + 1;
            let new_view_id = self.view.id + 1;
            let op = ReconfigOp::Leave {
                leaver: self.view.members[leaver].permanent,
            };
            let votes: Vec<ReconfigVote> = (0..self.view.n())
                .filter(|&i| i != leaver)
                .take(self.view.n() - self.view.f())
                .map(|i| {
                    let new_key = self.stores[i].certified_key_for(new_view_id);
                    let payload = vote_payload(new_view_id, &op, &new_key);
                    ReconfigVote {
                        voter: i,
                        new_key,
                        signature: self.stores[i].permanent().sign(&payload),
                    }
                })
                .collect();
            let tx = ReconfigTx {
                new_view_id,
                op,
                votes,
            };
            assert!(tx.verify(&self.view));
            let new_view = tx.apply(&self.view);
            let tx_bytes = smartchain_codec::to_bytes(&tx);
            let value_hash = sha256::digest(&tx_bytes);
            let payload = accept_sign_payload(number, 0, &value_hash);
            let proof = DecisionProof {
                instance: number,
                epoch: 0,
                value_hash,
                accepts: (0..self.view.quorum())
                    .map(|i| {
                        (
                            i,
                            self.stores[i]
                                .consensus_for_view(self.view.id)
                                .sign(&payload),
                        )
                    })
                    .collect(),
            };
            let body = BlockBody::Reconfiguration {
                consensus_id: number,
                tx,
                proof,
                new_view: new_view.clone(),
            };
            let mut block = Block::build(
                number,
                self.last_reconfig(),
                0,
                self.prev_hash(),
                body,
                [0u8; 32],
            );
            let cert_payload = persist_sign_payload(number, &block.header.hash());
            block.certificate = Certificate {
                signatures: (0..self.view.quorum())
                    .map(|i| {
                        (
                            i,
                            self.stores[i]
                                .consensus_for_view(self.view.id)
                                .sign(&cert_payload),
                        )
                    })
                    .collect(),
            };
            self.chain.push(block);
            self.view = new_view;
        }
    }

    // Expose per-view consensus secrets for test-side signing.
    trait ConsensusForView {
        fn consensus_for_view(&self, view_id: u64) -> SecretKey;
    }
    impl ConsensusForView for KeyStore {
        fn consensus_for_view(&self, view_id: u64) -> SecretKey {
            self.leak_old_key_for_attack(view_id)
        }
    }

    #[test]
    fn valid_chain_passes() {
        let mut h = Harness::new(4);
        for _ in 0..5 {
            h.push_tx_block();
        }
        let report = verify_chain(&h.genesis, &h.chain).expect("chain verifies");
        assert_eq!(report.blocks, 5);
        assert_eq!(report.final_view_id, 0);
    }

    #[test]
    fn chain_with_reconfig_passes_and_tracks_view() {
        let mut h = Harness::new(4);
        h.push_tx_block();
        h.push_leave_block(3);
        h.push_tx_block();
        let report = verify_chain(&h.genesis, &h.chain).expect("chain verifies");
        assert_eq!(report.final_view_id, 1);
        assert_eq!(report.blocks, 3);
    }

    #[test]
    fn tampered_transaction_detected() {
        let mut h = Harness::new(4);
        h.push_tx_block();
        h.push_tx_block();
        if let BlockBody::Transactions { requests, .. } = &mut h.chain[0].body {
            requests[0].payload = vec![99];
        }
        assert_eq!(
            verify_chain(&h.genesis, &h.chain),
            Err(AuditError::BadCommitment { number: 1 })
        );
    }

    #[test]
    fn reordered_blocks_detected() {
        let mut h = Harness::new(4);
        h.push_tx_block();
        h.push_tx_block();
        h.chain.swap(0, 1);
        assert!(matches!(
            verify_chain(&h.genesis, &h.chain),
            Err(AuditError::BadNumber { .. })
        ));
    }

    #[test]
    fn block_without_authority_detected() {
        let mut h = Harness::new(4);
        h.push_tx_block();
        // Strip both the certificate and the proof signatures.
        h.chain[0].certificate = Certificate::default();
        if let BlockBody::Transactions { proof, .. } = &mut h.chain[0].body {
            proof.accepts.clear();
        }
        // Rebuild commitments so only authority fails.
        let body = h.chain[0].body.clone();
        let rebuilt = Block::build(1, 0, 0, h.genesis.hash(), body, [0u8; 32]);
        h.chain[0].header = rebuilt.header;
        assert_eq!(
            verify_chain(&h.genesis, &h.chain),
            Err(AuditError::NoAuthority { number: 1 })
        );
    }

    /// The value-hash binding gap: a decision proof is a quorum of ACCEPT
    /// signatures over `(instance, epoch, value_hash)` — valid *standalone*
    /// no matter what requests sit next to it. An attacker who replays a
    /// genuine proof beside forged requests (header rebuilt so commitments
    /// hold, certificate stripped as in the weak variant) must be caught by
    /// the batch-hash binding check, not slip through on proof authority.
    #[test]
    fn replayed_proof_with_forged_requests_rejected() {
        let mut h = Harness::new(4);
        h.push_tx_block();
        let forged_requests = vec![Request {
            client: 66,
            seq: 0,
            payload: vec![6, 6],
            signature: None,
        }];
        let (proof, results) = match &h.chain[0].body {
            BlockBody::Transactions { proof, results, .. } => (proof.clone(), results.clone()),
            _ => unreachable!(),
        };
        // The replayed proof still carries quorum authority on its own.
        assert!(proof_has_authority(&proof, &h.view));
        let body = BlockBody::Transactions {
            consensus_id: 1,
            requests: forged_requests,
            proof,
            results,
        };
        h.chain[0] = Block::build(1, 0, 0, h.genesis.hash(), body, [0u8; 32]);
        assert_eq!(
            verify_chain(&h.genesis, &h.chain),
            Err(AuditError::ProofMismatch { number: 1 })
        );
    }

    /// The paper's Figure-4 attack: after a reconfiguration removes nodes,
    /// the removed (now compromised) nodes try to extend the chain from just
    /// before the reconfiguration block, using their *old view* keys.
    #[test]
    fn figure4_fork_rejected_with_key_rotation() {
        let mut h = Harness::new(4);
        h.push_tx_block(); // block 1
        let fork_base = h.chain.clone(); // chain ending at block 1
        h.push_leave_block(3); // block 2: node 3 leaves, keys rotate
        h.push_tx_block(); // block 3 under view 1
        assert!(verify_chain(&h.genesis, &h.chain).is_ok());

        // Attack: nodes 1, 2, 3 are compromised *after* the reconfiguration.
        // They still know their view-0 keys ONLY if they skipped the
        // forgetting protocol; with rotation done correctly, the adversary
        // can re-derive nothing. Model the strongest plausible attacker: it
        // holds node 3's old key (node 3 never rotated: it left) plus f = 1
        // compromised-from-the-start member (node 2). That is 2 < quorum 3.
        let mut fork = fork_base;
        let number = 2u64;
        let requests = vec![Request {
            client: 66,
            seq: 0,
            payload: vec![6, 6],
            signature: None,
        }];
        let value_hash = sha256::digest(&smartchain_smr::types::encode_batch(&requests));
        let payload = accept_sign_payload(number, 0, &value_hash);
        let accepts = vec![
            (2usize, h.stores[2].consensus_for_view(0).sign(&payload)),
            (3usize, h.stores[3].consensus_for_view(0).sign(&payload)),
        ];
        let proof = DecisionProof {
            instance: number,
            epoch: 0,
            value_hash,
            accepts,
        };
        let body = BlockBody::Transactions {
            consensus_id: number,
            requests,
            proof,
            results: vec![vec![0]],
        };
        let prev = fork.last().map(|b| b.header.hash()).unwrap();
        let mut fork_block = Block::build(number, 0, 0, prev, body, [0u8; 32]);
        let cert_payload = persist_sign_payload(number, &fork_block.header.hash());
        fork_block.certificate = Certificate {
            signatures: vec![
                (2, h.stores[2].consensus_for_view(0).sign(&cert_payload)),
                (3, h.stores[3].consensus_for_view(0).sign(&cert_payload)),
            ],
        };
        fork.push(fork_block);
        // The fork is link-valid (hash chain is fine)...
        assert!(is_link_valid_fork(&h.genesis, &h.chain, &fork));
        // ...but the auditor rejects it: no quorum authority at block 2.
        assert_eq!(
            verify_chain(&h.genesis, &fork),
            Err(AuditError::NoAuthority { number: 2 })
        );
    }

    #[test]
    fn bad_reconfig_pointer_detected() {
        let mut h = Harness::new(4);
        h.push_tx_block();
        h.push_tx_block();
        // Claim block 2's last reconfiguration was block 1 (a lie).
        let body = h.chain[1].body.clone();
        let mut forged = Block::build(2, 1, 0, h.chain[0].header.hash(), body, [0u8; 32]);
        forged.header.last_reconfig = 1;
        // Rebuild to keep commitments valid while keeping the bad pointer.
        let hdr = crate::block::BlockHeader {
            last_reconfig: 1,
            ..forged.header
        };
        forged.header = hdr;
        h.chain[1] = forged;
        assert_eq!(
            verify_chain(&h.genesis, &h.chain),
            Err(AuditError::BadReconfigPointer { number: 2 })
        );
    }

    #[test]
    fn wrong_new_view_detected() {
        let mut h = Harness::new(4);
        h.push_tx_block();
        h.push_leave_block(3);
        // Tamper with the recorded new view: swap two members.
        let reconfig_index = 1usize;
        if let BlockBody::Reconfiguration { new_view, .. } = &mut h.chain[reconfig_index].body {
            new_view.members.swap(0, 1);
        }
        // Re-seal commitments so only the view derivation check fires.
        let body = h.chain[reconfig_index].body.clone();
        let prev = h.chain[reconfig_index - 1].header.hash();
        let resealed = Block::build(2, 0, 0, prev, body, [0u8; 32]);
        h.chain[reconfig_index].header = resealed.header;
        assert_eq!(
            verify_chain(&h.genesis, &h.chain[..2]),
            Err(AuditError::WrongNewView { number: 2 })
        );
    }

    #[test]
    fn bad_genesis_certification_detected() {
        let mut h = Harness::new(4);
        h.push_tx_block();
        // Corrupt one genesis key certification: swap two members' certs.
        let c0 = h.genesis.view.members[0].cert;
        h.genesis.view.members[0].cert = h.genesis.view.members[1].cert;
        h.genesis.view.members[1].cert = c0;
        assert_eq!(
            verify_chain(&h.genesis, &h.chain),
            Err(AuditError::BadGenesis)
        );
    }

    #[test]
    fn empty_chain_audits_trivially() {
        let h = Harness::new(4);
        let report = verify_chain(&h.genesis, &[]).expect("empty chain is valid");
        assert_eq!(report.blocks, 0);
        assert_eq!(report.tip, h.genesis.hash());
    }

    /// Ablation: WITHOUT key rotation (consensus keys never change), the
    /// same coalition of removed nodes plus one faulty member reaches the
    /// old-view quorum and the fork *verifies* — demonstrating exactly the
    /// vulnerability the forgetting protocol removes.
    #[test]
    fn figure4_fork_succeeds_without_key_rotation() {
        let mut h = Harness::new(4);
        h.push_tx_block();
        let fork_base = h.chain.clone();
        // No reconfiguration at all: keys never rotate, so view-0 keys stay
        // authoritative forever. Nodes 1, 2, 3 become compromised later.
        let number = 2u64;
        let requests = vec![Request {
            client: 66,
            seq: 0,
            payload: vec![6, 6],
            signature: None,
        }];
        let value_hash = sha256::digest(&smartchain_smr::types::encode_batch(&requests));
        let payload = accept_sign_payload(number, 0, &value_hash);
        let accepts = (1..4usize)
            .map(|i| (i, h.stores[i].consensus_for_view(0).sign(&payload)))
            .collect();
        let proof = DecisionProof {
            instance: number,
            epoch: 0,
            value_hash,
            accepts,
        };
        let body = BlockBody::Transactions {
            consensus_id: number,
            requests,
            proof,
            results: vec![vec![0]],
        };
        let mut fork = fork_base;
        let prev = fork.last().map(|b| b.header.hash()).unwrap();
        let fork_block = Block::build(number, 0, 0, prev, body, [0u8; 32]);
        fork.push(fork_block);
        // Three old keys = quorum: the fork passes verification. This is the
        // unsafe world the paper warns about.
        assert!(verify_chain(&h.genesis, &fork).is_ok());
    }
}
