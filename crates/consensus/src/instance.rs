//! The per-instance VP-Consensus state machine.
//!
//! Pure and sans-IO: inputs are protocol messages (plus `propose`/
//! `advance_epoch` calls from the embedding layer), outputs are
//! [`Output`] values and at most one [`Decision`]. All timing, networking and
//! cost accounting live in the embedding (`smartchain-smr` / the simulator).

use crate::messages::{accept_sign_payload, ConsensusMsg, Output};
use crate::proof::{write_sign_payload, DecisionProof, WriteCertificate};
use crate::{ReplicaId, View};
use smartchain_crypto::keys::{SecretKey, Signature};
use smartchain_crypto::{Hash, ValueBytes};
use std::collections::HashMap;
use std::sync::Arc;

/// A decided value together with its proof.
///
/// Both fields are shared handles: cloning a `Decision` (delivery
/// buffering, repair replies, durable logging) bumps two refcounts
/// instead of copying the batch bytes and the accept quorum.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// Instance that decided.
    pub instance: u64,
    /// Epoch of the decision.
    pub epoch: u32,
    /// The decided value (encoded batch).
    pub value: ValueBytes,
    /// Quorum of signed ACCEPTs.
    pub proof: Arc<DecisionProof>,
}

/// Per-epoch vote tallies.
#[derive(Debug, Default)]
struct EpochState {
    writes: HashMap<Hash, Vec<(ReplicaId, Signature)>>,
    accepts: HashMap<Hash, Vec<(ReplicaId, Signature)>>,
    sent_write: bool,
    sent_accept: Option<Hash>,
}

/// One consensus instance on one replica.
#[derive(Debug)]
pub struct Instance {
    id: u64,
    me: ReplicaId,
    view: View,
    secret: SecretKey,
    epoch: u32,
    leader: ReplicaId,
    /// Value received via PROPOSE (or SYNC re-proposal); its hash is
    /// memoized inside the handle.
    value: Option<ValueBytes>,
    epoch_state: EpochState,
    decision: Option<Decision>,
    fetch_requested: bool,
}

impl Instance {
    /// Creates the instance for replica `me` under `view`, with `leader`
    /// leading epoch 0 (the current regency's leader).
    pub fn new(
        id: u64,
        me: ReplicaId,
        view: View,
        secret: SecretKey,
        leader: ReplicaId,
        epoch: u32,
    ) -> Instance {
        Instance {
            id,
            me,
            view,
            secret,
            epoch,
            leader,
            value: None,
            epoch_state: EpochState::default(),
            decision: None,
            fetch_requested: false,
        }
    }

    /// Instance number.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Leader of the current epoch.
    pub fn leader(&self) -> ReplicaId {
        self.leader
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<&Decision> {
        self.decision.as_ref()
    }

    /// True once this instance decided.
    pub fn is_decided(&self) -> bool {
        self.decision.is_some()
    }

    /// True once this replica learned the proposed value (via PROPOSE, a
    /// SYNC adoption, or a ValueReply).
    pub fn has_value(&self) -> bool {
        self.value.is_some()
    }

    /// Re-emittable copies of this replica's own messages for the current
    /// epoch — the per-instance repair payload (and the reconnect resend).
    ///
    /// The set contains at most: this replica's PROPOSE (only while it leads
    /// the epoch — a relayed proposal from anyone else fails the receiver's
    /// leader check), a ValueReply carrying the value when
    /// `include_value` and we are not the leader, and this replica's own
    /// signed WRITE and ACCEPT. Every message is exactly what this replica
    /// already sent (or was entitled to send), so the receiver's ordinary
    /// signature/leader/epoch checks authenticate a replay unchanged — a
    /// Byzantine replica gains nothing by asking.
    pub fn own_messages(&self, include_value: bool) -> Vec<ConsensusMsg> {
        let mut msgs = Vec::new();
        if let Some(value) = &self.value {
            let hash = value.hash();
            if self.me == self.leader {
                msgs.push(ConsensusMsg::Propose {
                    instance: self.id,
                    epoch: self.epoch,
                    value: value.clone(),
                });
            } else if include_value {
                msgs.push(ConsensusMsg::ValueReply {
                    instance: self.id,
                    epoch: self.epoch,
                    value: value.clone(),
                });
            }
            if self.epoch_state.sent_write {
                let own = self
                    .epoch_state
                    .writes
                    .get(&hash)
                    .and_then(|sigs| sigs.iter().find(|(r, _)| *r == self.me));
                if let Some((_, signature)) = own {
                    msgs.push(ConsensusMsg::Write {
                        instance: self.id,
                        epoch: self.epoch,
                        value_hash: hash,
                        signature: *signature,
                    });
                }
            }
        }
        if let Some(hash) = self.epoch_state.sent_accept {
            let own = self
                .epoch_state
                .accepts
                .get(&hash)
                .and_then(|sigs| sigs.iter().find(|(r, _)| *r == self.me));
            if let Some((_, signature)) = own {
                msgs.push(ConsensusMsg::Accept {
                    instance: self.id,
                    epoch: self.epoch,
                    value_hash: hash,
                    signature: *signature,
                });
            }
        }
        msgs
    }

    /// The value this replica is bound to in the current epoch, along with a
    /// write certificate if a quorum of writes was observed — the "locked
    /// value" reported in STOPDATA during leader changes.
    ///
    /// A lock is reported when this replica WROTE for the value *or* when it
    /// collected a full write certificate without echoing the proposal
    /// itself (its WRITE may have been lost, but a quorum's wasn't — the
    /// certificate alone proves the value may have decided and must survive
    /// the leader change).
    pub fn locked_value(&self) -> Option<(ValueBytes, Option<WriteCertificate>)> {
        let value = self.value.as_ref()?;
        let hash = value.hash();
        let cert = self.epoch_state.writes.get(&hash).and_then(|sigs| {
            (sigs.len() >= self.view.quorum()).then(|| WriteCertificate {
                instance: self.id,
                epoch: self.epoch,
                value_hash: hash,
                writes: sigs.clone(),
            })
        });
        if !self.epoch_state.sent_write && cert.is_none() {
            return None;
        }
        Some((value.clone(), cert))
    }

    /// Leader entry point: proposes `value` for this instance.
    ///
    /// Returns the broadcast to perform. Calling this on a non-leader replica
    /// returns no outputs (defensive; the embedding should not do it).
    pub fn propose(&mut self, value: impl Into<ValueBytes>) -> Vec<Output<ConsensusMsg>> {
        if self.me != self.leader || self.decision.is_some() {
            return Vec::new();
        }
        vec![Output::Broadcast(ConsensusMsg::Propose {
            instance: self.id,
            epoch: self.epoch,
            value: value.into(),
        })]
    }

    /// Moves to a new epoch with a new leader (synchronization phase
    /// outcome). Vote tallies reset; a locked value, if any, survives in
    /// `self.value` so a SYNC re-proposal can match it.
    pub fn advance_epoch(&mut self, epoch: u32, leader: ReplicaId) {
        if epoch <= self.epoch && !(epoch == self.epoch && self.epoch == 0) {
            // Never move backwards.
            if epoch < self.epoch {
                return;
            }
        }
        self.epoch = epoch;
        self.leader = leader;
        self.epoch_state = EpochState::default();
    }

    /// Adopts `value` as the one to decide in this epoch (used when a SYNC
    /// message certifies a locked value from a previous epoch).
    pub fn adopt_value(&mut self, value: impl Into<ValueBytes>) {
        self.value = Some(value.into());
    }

    /// Handles a protocol message from `from`.
    pub fn on_message(
        &mut self,
        from: ReplicaId,
        msg: ConsensusMsg,
    ) -> (Vec<Output<ConsensusMsg>>, Option<Decision>) {
        self.on_message_inner(from, msg, true)
    }

    /// Like [`Instance::on_message`] for messages whose WRITE/ACCEPT
    /// signatures were already checked by a batch verifier (the InstanceRep
    /// replay-admission path); skips the per-message signature check but
    /// keeps every structural check (epoch, leader, membership, dedup).
    pub fn on_message_preverified(
        &mut self,
        from: ReplicaId,
        msg: ConsensusMsg,
    ) -> (Vec<Output<ConsensusMsg>>, Option<Decision>) {
        self.on_message_inner(from, msg, false)
    }

    fn on_message_inner(
        &mut self,
        from: ReplicaId,
        msg: ConsensusMsg,
        verify_sigs: bool,
    ) -> (Vec<Output<ConsensusMsg>>, Option<Decision>) {
        if self.decision.is_some() {
            // Serve value fetches even after deciding; drop the rest.
            if let ConsensusMsg::FetchValue { instance } = msg {
                return (self.serve_fetch(from, instance), None);
            }
            return (Vec::new(), None);
        }
        let mut out = Vec::new();
        match msg {
            ConsensusMsg::Propose {
                instance,
                epoch,
                value,
            } => {
                debug_assert_eq!(instance, self.id);
                if epoch != self.epoch || from != self.leader {
                    return (out, None); // stale epoch or usurper
                }
                if self.epoch_state.sent_write {
                    return (out, None); // already echoed a proposal this epoch
                }
                let hash = value.hash();
                if let Some(locked) = &self.value {
                    // A SYNC-adopted value constrains what we echo.
                    if locked.hash() != hash {
                        return (out, None);
                    }
                } else {
                    self.value = Some(value);
                }
                self.epoch_state.sent_write = true;
                let own_sig = self.sign_write(&hash);
                out.push(Output::Broadcast(ConsensusMsg::Write {
                    instance: self.id,
                    epoch: self.epoch,
                    value_hash: hash,
                    signature: own_sig,
                }));
                // Tally our own write immediately (the broadcast above does
                // not loop back to us).
                if self.record_write(self.me, hash, own_sig, &mut out) {
                    return self.try_decide(hash, &mut out);
                }
            }
            ConsensusMsg::Write {
                instance,
                epoch,
                value_hash,
                signature,
            } => {
                debug_assert_eq!(instance, self.id);
                if epoch != self.epoch {
                    return (out, None);
                }
                // Verify the sender's write signature: these signatures form
                // the WriteCertificates that justify locked values during
                // leader changes, so only genuine ones may be tallied.
                let Some(key) = self.view.members.get(from) else {
                    return (out, None);
                };
                if verify_sigs {
                    let payload = write_sign_payload(self.id, self.epoch, &value_hash);
                    if !key.verify(&payload, &signature) {
                        return (out, None);
                    }
                }
                if self.record_write(from, value_hash, signature, &mut out) {
                    return self.try_decide(value_hash, &mut out);
                }
            }
            ConsensusMsg::Accept {
                instance,
                epoch,
                value_hash,
                signature,
            } => {
                debug_assert_eq!(instance, self.id);
                if epoch != self.epoch {
                    return (out, None);
                }
                let Some(key) = self.view.members.get(from) else {
                    return (out, None);
                };
                if verify_sigs {
                    let payload = accept_sign_payload(self.id, self.epoch, &value_hash);
                    if !key.verify(&payload, &signature) {
                        return (out, None);
                    }
                }
                let entry = self.epoch_state.accepts.entry(value_hash).or_default();
                if entry.iter().any(|(r, _)| *r == from) {
                    return (out, None);
                }
                entry.push((from, signature));
                if entry.len() >= self.view.quorum() {
                    return self.try_decide(value_hash, &mut out);
                }
            }
            ConsensusMsg::FetchValue { instance } => {
                return (self.serve_fetch(from, instance), None);
            }
            ConsensusMsg::ValueReply {
                instance,
                epoch: _,
                value,
            } => {
                debug_assert_eq!(instance, self.id);
                if self.value.is_none() {
                    self.value = Some(value);
                }
                // A pending accept quorum may now be completable.
                if let Some(v) = &self.value {
                    let h = v.hash();
                    if self
                        .epoch_state
                        .accepts
                        .get(&h)
                        .is_some_and(|a| a.len() >= self.view.quorum())
                    {
                        return self.try_decide(h, &mut out);
                    }
                }
            }
        }
        (out, None)
    }

    fn sign_write(&self, hash: &Hash) -> Signature {
        self.secret
            .sign(&write_sign_payload(self.id, self.epoch, hash))
    }

    /// Records a WRITE vote; returns true when this replica's own ACCEPT
    /// (issued here on reaching the write quorum) completed an accept quorum,
    /// meaning the caller should attempt to decide.
    fn record_write(
        &mut self,
        from: ReplicaId,
        hash: Hash,
        signature: Signature,
        out: &mut Vec<Output<ConsensusMsg>>,
    ) -> bool {
        let entry = self.epoch_state.writes.entry(hash).or_default();
        if entry.iter().any(|(r, _)| *r == from) {
            return false;
        }
        entry.push((from, signature));
        if entry.len() >= self.view.quorum() && self.epoch_state.sent_accept.is_none() {
            self.epoch_state.sent_accept = Some(hash);
            let payload = accept_sign_payload(self.id, self.epoch, &hash);
            let signature = self.secret.sign(&payload);
            out.push(Output::Broadcast(ConsensusMsg::Accept {
                instance: self.id,
                epoch: self.epoch,
                value_hash: hash,
                signature,
            }));
            // Tally our own accept immediately.
            let entry = self.epoch_state.accepts.entry(hash).or_default();
            if !entry.iter().any(|(r, _)| *r == self.me) {
                entry.push((self.me, signature));
            }
            return entry.len() >= self.view.quorum();
        }
        false
    }

    fn try_decide(
        &mut self,
        value_hash: Hash,
        out: &mut Vec<Output<ConsensusMsg>>,
    ) -> (Vec<Output<ConsensusMsg>>, Option<Decision>) {
        let accepts = self
            .epoch_state
            .accepts
            .get(&value_hash)
            .cloned()
            .unwrap_or_default();
        match &self.value {
            Some(value) if value.hash() == value_hash => {
                let decision = Decision {
                    instance: self.id,
                    epoch: self.epoch,
                    value: value.clone(),
                    proof: Arc::new(DecisionProof {
                        instance: self.id,
                        epoch: self.epoch,
                        value_hash,
                        accepts,
                    }),
                };
                self.decision = Some(decision.clone());
                (std::mem::take(out), Some(decision))
            }
            _ => {
                // Accept-quorum without the value: fetch it. Ask the whole
                // view — an accepter may itself hold only the hash, but the
                // leader and every replica that echoed the proposal have the
                // value, and at least one of those is correct and reachable.
                if !self.fetch_requested {
                    self.fetch_requested = true;
                    out.push(Output::Broadcast(ConsensusMsg::FetchValue {
                        instance: self.id,
                    }));
                }
                (std::mem::take(out), None)
            }
        }
    }

    fn serve_fetch(&self, to: ReplicaId, instance: u64) -> Vec<Output<ConsensusMsg>> {
        debug_assert_eq!(instance, self.id);
        match &self.value {
            Some(value) => vec![Output::Send(
                to,
                ConsensusMsg::ValueReply {
                    instance: self.id,
                    epoch: self.epoch,
                    value: value.clone(),
                },
            )],
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_crypto::keys::Backend;
    use smartchain_crypto::sha256;

    struct Net {
        instances: Vec<Instance>,
    }

    impl Net {
        fn new(n: usize) -> Net {
            let secrets: Vec<SecretKey> = (0..n)
                .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 50; 32]))
                .collect();
            let view = View {
                id: 0,
                members: secrets.iter().map(|s| s.public_key()).collect(),
            };
            let instances = (0..n)
                .map(|i| Instance::new(7, i, view.clone(), secrets[i].clone(), 0, 0))
                .collect();
            Net { instances }
        }

        /// Delivers outputs until quiescence; returns decisions per replica.
        fn run(
            &mut self,
            initial: Vec<(ReplicaId, Output<ConsensusMsg>)>,
        ) -> Vec<Option<Decision>> {
            let n = self.instances.len();
            let mut decisions: Vec<Option<Decision>> = vec![None; n];
            let mut queue: Vec<(ReplicaId, ReplicaId, ConsensusMsg)> = Vec::new();
            let push = |q: &mut Vec<(ReplicaId, ReplicaId, ConsensusMsg)>,
                        from: ReplicaId,
                        out: Output<ConsensusMsg>| match out {
                Output::Broadcast(m) => {
                    for to in 0..n {
                        if to != from {
                            q.push((from, to, m.clone()));
                        }
                    }
                }
                Output::Send(to, m) => q.push((from, to, m)),
            };
            for (from, out) in initial {
                push(&mut queue, from, out);
            }
            while let Some((from, to, msg)) = queue.pop() {
                let (outs, dec) = self.instances[to].on_message(from, msg);
                if let Some(d) = dec {
                    decisions[to] = Some(d);
                }
                for out in outs {
                    push(&mut queue, to, out);
                }
            }
            decisions
        }
    }

    #[test]
    fn four_replicas_decide_proposed_value() {
        let mut net = Net::new(4);
        let outs = net.instances[0].propose(b"batch-1".to_vec());
        let initial: Vec<_> = outs.into_iter().map(|o| (0, o)).collect();
        // Leader handles its own proposal too.
        let mut init = initial.clone();
        if let Some((_, Output::Broadcast(m))) = initial.first() {
            let (outs0, _) = net.instances[0].on_message(0, m.clone());
            init.extend(outs0.into_iter().map(|o| (0usize, o)));
        }
        let decisions = net.run(init);
        for (i, d) in decisions.iter().enumerate() {
            let d = d
                .as_ref()
                .unwrap_or_else(|| panic!("replica {i} did not decide"));
            assert_eq!(d.value, b"batch-1");
            assert_eq!(d.instance, 7);
            assert!(d.proof.accepts.len() >= 3);
        }
    }

    #[test]
    fn decision_proofs_verify_against_view() {
        let mut net = Net::new(4);
        let view = net.instances[0].view.clone();
        let outs = net.instances[0].propose(b"batch-2".to_vec());
        let mut init: Vec<_> = outs.clone().into_iter().map(|o| (0, o)).collect();
        if let Some(Output::Broadcast(m)) = outs.first() {
            let (outs0, _) = net.instances[0].on_message(0, m.clone());
            init.extend(outs0.into_iter().map(|o| (0usize, o)));
        }
        let decisions = net.run(init);
        for d in decisions.into_iter().flatten() {
            assert!(d.proof.verify(&view));
        }
    }

    #[test]
    fn non_leader_proposal_ignored() {
        let mut net = Net::new(4);
        assert!(net.instances[1].propose(b"evil".to_vec()).is_empty());
        // A PROPOSE arriving from a non-leader is also ignored.
        let (outs, dec) = net.instances[2].on_message(
            1,
            ConsensusMsg::Propose {
                instance: 7,
                epoch: 0,
                value: b"evil".to_vec().into(),
            },
        );
        assert!(outs.is_empty());
        assert!(dec.is_none());
    }

    #[test]
    fn equivocating_leader_cannot_cause_conflicting_decisions() {
        // Leader sends value A to replicas {1}, value B to {2, 3}.
        let mut net = Net::new(4);
        let prop = |v: &[u8]| ConsensusMsg::Propose {
            instance: 7,
            epoch: 0,
            value: v.to_vec().into(),
        };
        let mut queue: Vec<(ReplicaId, ReplicaId, ConsensusMsg)> =
            vec![(0, 1, prop(b"A")), (0, 2, prop(b"B")), (0, 3, prop(b"B"))];
        let mut decisions: Vec<Option<Decision>> = vec![None; 4];
        while let Some((from, to, msg)) = queue.pop() {
            let (outs, dec) = net.instances[to].on_message(from, msg);
            if let Some(d) = dec {
                decisions[to] = Some(d);
            }
            for out in outs {
                match out {
                    Output::Broadcast(m) => {
                        for peer in 0..4 {
                            if peer != to {
                                queue.push((to, peer, m.clone()));
                            }
                        }
                    }
                    Output::Send(peer, m) => queue.push((to, peer, m)),
                }
            }
        }
        let decided: Vec<&Decision> = decisions.iter().flatten().collect();
        let values: std::collections::HashSet<Vec<u8>> =
            decided.iter().map(|d| d.value.to_vec()).collect();
        assert!(values.len() <= 1, "conflicting decisions: {values:?}");
    }

    #[test]
    fn stale_epoch_messages_ignored() {
        let mut net = Net::new(4);
        net.instances[1].advance_epoch(2, 2);
        let (outs, _) = net.instances[1].on_message(
            0,
            ConsensusMsg::Propose {
                instance: 7,
                epoch: 0,
                value: b"old".to_vec().into(),
            },
        );
        assert!(outs.is_empty());
    }

    #[test]
    fn duplicate_writes_not_double_counted() {
        let mut net = Net::new(4);
        let h = sha256::digest(b"v");
        let sig = net.instances[2].secret.sign(&write_sign_payload(7, 0, &h));
        for _ in 0..10 {
            let (outs, _) = net.instances[1].on_message(
                2,
                ConsensusMsg::Write {
                    instance: 7,
                    epoch: 0,
                    value_hash: h,
                    signature: sig,
                },
            );
            // A single write from one replica never produces an accept.
            assert!(outs.is_empty());
        }
    }

    #[test]
    fn write_with_forged_signature_ignored() {
        let mut net = Net::new(4);
        let h = sha256::digest(b"v");
        let outsider = SecretKey::from_seed(Backend::Sim, &[201u8; 32]);
        let sig = outsider.sign(&write_sign_payload(7, 0, &h));
        // Even a full round of forged writes never yields an accept.
        for from in [0usize, 1, 2, 3] {
            let (outs, _) = net.instances[1].on_message(
                from,
                ConsensusMsg::Write {
                    instance: 7,
                    epoch: 0,
                    value_hash: h,
                    signature: sig,
                },
            );
            assert!(outs.is_empty(), "forged write accepted");
        }
    }

    #[test]
    fn accept_with_bad_signature_rejected() {
        let mut net = Net::new(4);
        let other = SecretKey::from_seed(Backend::Sim, &[200u8; 32]);
        let h = sha256::digest(b"v");
        let sig = other.sign(&accept_sign_payload(7, 0, &h));
        for from in [1usize, 2, 3] {
            let (_, dec) = net.instances[0].on_message(
                from,
                ConsensusMsg::Accept {
                    instance: 7,
                    epoch: 0,
                    value_hash: h,
                    signature: sig,
                },
            );
            assert!(dec.is_none());
        }
    }

    /// A replica that never echoed the proposal (its own WRITE was lost or
    /// the PROPOSE never arrived) but collected a full write certificate and
    /// learned the value must still report the lock — the certificate alone
    /// proves the value may have decided.
    #[test]
    fn write_certificate_without_own_echo_reports_lock() {
        let mut net = Net::new(4);
        let value = b"cert-only".to_vec();
        let h = sha256::digest(&value);
        // Replica 3 learns the value via a ValueReply (fetch path), never
        // via the leader's PROPOSE, so it never sends its own WRITE.
        let (_, dec) = net.instances[3].on_message(
            0,
            ConsensusMsg::ValueReply {
                instance: 7,
                epoch: 0,
                value: value.clone().into(),
            },
        );
        assert!(dec.is_none());
        assert!(
            net.instances[3].locked_value().is_none(),
            "no echo, no certificate: nothing to report yet"
        );
        // A write quorum from the other three replicas arrives.
        for from in 0..3usize {
            let sig = net.instances[from]
                .secret
                .sign(&write_sign_payload(7, 0, &h));
            net.instances[3].on_message(
                from,
                ConsensusMsg::Write {
                    instance: 7,
                    epoch: 0,
                    value_hash: h,
                    signature: sig,
                },
            );
        }
        let (locked, cert) = net.instances[3]
            .locked_value()
            .expect("write certificate alone must surface the lock");
        assert_eq!(locked, value);
        let cert = cert.expect("certificate present");
        assert!(cert.verify(&net.instances[3].view));
        assert_eq!(cert.value_hash, h);
    }

    #[test]
    fn late_replica_fetches_value() {
        // Replica 3 misses the proposal but sees an accept quorum; it must
        // emit FetchValue and decide after the reply.
        let mut net = Net::new(4);
        let value = b"late-value".to_vec();
        let h = sha256::digest(&value);
        // Build three genuine accepts by letting 0,1,2 run the protocol.
        let prop = ConsensusMsg::Propose {
            instance: 7,
            epoch: 0,
            value: value.clone().into(),
        };
        let mut msgs: Vec<(ReplicaId, ConsensusMsg)> = Vec::new();
        for r in 0..3usize {
            let (outs, _) = net.instances[r].on_message(0, prop.clone());
            for o in outs {
                if let Output::Broadcast(m) = o {
                    msgs.push((r, m));
                }
            }
        }
        // Cross-deliver writes among 0,1,2 to generate accepts.
        let mut accepts: Vec<(ReplicaId, ConsensusMsg)> = Vec::new();
        let mut pending = msgs;
        while let Some((from, m)) = pending.pop() {
            for r in 0..3usize {
                if r == from {
                    continue;
                }
                let (outs, _) = net.instances[r].on_message(from, m.clone());
                for o in outs {
                    if let Output::Broadcast(mm) = o {
                        if matches!(mm, ConsensusMsg::Accept { .. }) {
                            accepts.push((r, mm));
                        } else {
                            pending.push((r, mm));
                        }
                    }
                }
            }
        }
        assert!(
            accepts.len() >= 3,
            "need an accept quorum, got {}",
            accepts.len()
        );
        // Deliver accepts to replica 3, which never saw the proposal.
        let mut fetch_broadcast = false;
        for (from, m) in accepts.iter().take(3) {
            let (outs, dec) = net.instances[3].on_message(*from, m.clone());
            assert!(dec.is_none());
            for o in outs {
                if matches!(o, Output::Broadcast(ConsensusMsg::FetchValue { .. })) {
                    fetch_broadcast = true;
                }
            }
        }
        assert!(fetch_broadcast, "replica 3 should fetch the value");
        // Replica 0 (which echoed the proposal) serves the fetch.
        let replies = net.instances[0]
            .on_message(3, ConsensusMsg::FetchValue { instance: 7 })
            .0;
        let Some(Output::Send(3, reply)) = replies.into_iter().next() else {
            panic!("no value reply");
        };
        let (_, dec) = net.instances[3].on_message(0, reply);
        let d = dec.expect("replica 3 decides after fetching the value");
        assert_eq!(d.value, value);
        assert_eq!(d.proof.value_hash, h);
    }
}
