//! The Mod-SMaRt synchronization phase: regency-based leader change.
//!
//! When progress stalls (faulty leader or asynchrony), replicas vote to move
//! to the next *regency*:
//!
//! 1. a replica broadcasts `STOP(r+1)`;
//! 2. any replica seeing more than `f` STOPs for a higher regency joins in
//!    (so one faulty replica cannot trigger changes, but a correct minority
//!    is amplified);
//! 3. on `2f+1` STOPs the replica stops ordering and sends `STOPDATA` — its
//!    last decided instance plus its *locked value* (the value it WROTE for,
//!    justified by a [`WriteCertificate`]) — to the new leader
//!    (`regency mod n`);
//! 4. the new leader collects `n−f` STOPDATAs, picks the certified value with
//!    the highest `(instance, epoch)` (safety: any decided value appears in
//!    at least one correct STOPDATA, because decision and STOPDATA quorums
//!    intersect in a correct replica), and broadcasts `SYNC` carrying the
//!    reports so followers can re-validate the choice;
//! 5. everyone installs the regency and the leader re-proposes.
//!
//! The state machine is sans-IO like [`crate::instance`]; the embedding
//! supplies STOPDATA contents (it owns the log) and performs sends.

use crate::proof::WriteCertificate;
use crate::{ReplicaId, View};
use smartchain_codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};
use smartchain_crypto::ValueBytes;
use std::collections::{BTreeMap, HashMap, HashSet};

/// A replica's locked value, reported in STOPDATA.
#[derive(Clone, Debug, PartialEq)]
pub struct LockedReport {
    /// The open instance the value belongs to.
    pub instance: u64,
    /// Epoch in which the value gathered its write certificate.
    pub epoch: u32,
    /// The value itself (shared handle; cloning a report into lock
    /// vectors and SYNC messages never copies the bytes).
    pub value: ValueBytes,
    /// Quorum of signed WRITEs justifying the lock.
    pub cert: WriteCertificate,
}

impl Encode for LockedReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.instance.encode(out);
        self.epoch.encode(out);
        self.value.encode(out);
        self.cert.encode(out);
    }

    fn encoded_len(&self) -> usize {
        self.instance.encoded_len()
            + self.epoch.encoded_len()
            + self.value.encoded_len()
            + self.cert.encoded_len()
    }
}

impl Decode for LockedReport {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(LockedReport {
            instance: u64::decode(input)?,
            epoch: u32::decode(input)?,
            value: ValueBytes::decode(input)?,
            cert: WriteCertificate::decode(input)?,
        })
    }
}

/// Body of a STOPDATA message.
///
/// With a pipelined ordering core (α > 1) a replica may hold locked values
/// for *several* in-flight instances at once, so the report carries a vector
/// (ascending by instance, at most one entry per instance). The wire format
/// uses a one-byte count, which is byte-identical to the former
/// `Option<LockedReport>` encoding whenever at most one lock is reported —
/// i.e. always at α = 1.
#[derive(Clone, Debug, PartialEq)]
pub struct StopData {
    /// Highest consensus instance the sender has decided.
    pub last_decided: u64,
    /// The sender's locked values for its open instances (ascending).
    pub locked: Vec<LockedReport>,
}

impl Encode for StopData {
    fn encode(&self, out: &mut Vec<u8>) {
        self.last_decided.encode(out);
        debug_assert!(self.locked.len() <= u8::MAX as usize);
        (self.locked.len() as u8).encode(out);
        for l in &self.locked {
            l.encode(out);
        }
    }

    fn encoded_len(&self) -> usize {
        self.last_decided.encoded_len()
            + 1
            + self.locked.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl Decode for StopData {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let last_decided = u64::decode(input)?;
        let count = u8::decode(input)?;
        let mut locked = Vec::with_capacity(count as usize);
        for _ in 0..count {
            locked.push(LockedReport::decode(input)?);
        }
        Ok(StopData {
            last_decided,
            locked,
        })
    }
}

/// Synchronization-phase messages.
#[derive(Clone, Debug, PartialEq)]
pub enum SyncMsg {
    /// Vote to move to `regency`.
    Stop {
        /// The regency being requested.
        regency: u32,
    },
    /// Replica state handed to the new leader.
    StopData {
        /// The regency this data is for.
        regency: u32,
        /// The sender's state.
        data: StopData,
    },
    /// New leader's installation message.
    Sync {
        /// The regency being installed.
        regency: u32,
        /// The STOPDATA reports the leader based its choice on.
        reports: Vec<(u64, StopData)>,
        /// The locked `(instance, value)` pairs the leader adopted
        /// (ascending by instance; empty = leader free to propose fresh
        /// batches everywhere). The instances matter: only replicas still
        /// open at a carried instance may adopt its value — adopting it into
        /// a *later* instance would re-decide old content and fork the
        /// history. Encoded with a one-byte count, byte-identical to the
        /// former `Option` encoding for 0 or 1 entries (always at α = 1).
        adopted: Vec<(u64, ValueBytes)>,
    },
}

impl SyncMsg {
    /// Wire size in bytes, derived from the canonical [`Encode`] output
    /// (plus shared transport framing) — see `ConsensusMsg::wire_size`.
    pub fn wire_size(&self) -> usize {
        smartchain_codec::FRAME_BYTES + self.encoded_len()
    }
}

impl Encode for SyncMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SyncMsg::Stop { regency } => {
                0u8.encode(out);
                regency.encode(out);
            }
            SyncMsg::StopData { regency, data } => {
                1u8.encode(out);
                regency.encode(out);
                data.encode(out);
            }
            SyncMsg::Sync {
                regency,
                reports,
                adopted,
            } => {
                2u8.encode(out);
                regency.encode(out);
                encode_seq(reports, out);
                debug_assert!(adopted.len() <= u8::MAX as usize);
                (adopted.len() as u8).encode(out);
                for (instance, value) in adopted {
                    instance.encode(out);
                    value.encode(out);
                }
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            SyncMsg::Stop { regency } => regency.encoded_len(),
            SyncMsg::StopData { regency, data } => regency.encoded_len() + data.encoded_len(),
            SyncMsg::Sync {
                regency,
                reports,
                adopted,
            } => {
                regency.encoded_len()
                    + smartchain_codec::seq_encoded_len(reports)
                    + 1
                    + adopted
                        .iter()
                        .map(|(i, v)| i.encoded_len() + v.encoded_len())
                        .sum::<usize>()
            }
        }
    }
}

impl Decode for SyncMsg {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(SyncMsg::Stop {
                regency: u32::decode(input)?,
            }),
            1 => Ok(SyncMsg::StopData {
                regency: u32::decode(input)?,
                data: StopData::decode(input)?,
            }),
            2 => {
                let regency = u32::decode(input)?;
                let reports = decode_seq(input)?;
                let count = u8::decode(input)?;
                let mut adopted = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    adopted.push((u64::decode(input)?, ValueBytes::decode(input)?));
                }
                Ok(SyncMsg::Sync {
                    regency,
                    reports,
                    adopted,
                })
            }
            d => Err(DecodeError::BadDiscriminant(d as u32)),
        }
    }
}

/// Instructions from the synchronizer to its embedding.
#[derive(Clone, Debug, PartialEq)]
pub enum SyncAction {
    /// Broadcast a message to the view.
    Broadcast(SyncMsg),
    /// Send a message to one replica.
    Send(ReplicaId, SyncMsg),
    /// Ordering must stop; the embedding should call
    /// [`Synchronizer::make_stopdata`] with its log state and send the
    /// result to `leader`.
    ProvideStopData {
        /// Regency awaiting data.
        regency: u32,
        /// The new leader to send it to.
        leader: ReplicaId,
    },
    /// Install `regency` with `leader`; replicas still open at a carried
    /// instance must adopt (and the leader re-propose) the matching value
    /// there.
    Install {
        /// The regency to install.
        regency: u32,
        /// Leader of the new regency.
        leader: ReplicaId,
        /// Locked `(instance, value)` pairs carried over from the previous
        /// regency, ascending by instance.
        adopt: Vec<(u64, ValueBytes)>,
    },
}

/// The per-replica synchronization state machine.
#[derive(Debug)]
pub struct Synchronizer {
    me: ReplicaId,
    view: View,
    /// Ordering-pipeline width the embedding runs at. Governs the
    /// choice rule: α = 1 keeps the seed's single-slot rule (highest
    /// `(instance, epoch)` lock wins, everything else dropped) bit-for-bit;
    /// α > 1 adopts the best lock *per instance* so every in-flight
    /// instance's possibly-decided value survives the change.
    alpha: u64,
    regency: u32,
    /// Highest regency we have broadcast a STOP for.
    sent_stop_for: u32,
    /// Regency we are currently stopped at (awaiting SYNC), if any.
    stopped_at: Option<u32>,
    stops: HashMap<u32, HashSet<ReplicaId>>,
    /// Per-regency STOPDATA reports. The inner map is ordered so the SYNC
    /// message's report list (and thus its bytes on the wire) is identical
    /// on every run — a randomized-hash order here made simulations drift
    /// between identically-seeded runs.
    stopdata: HashMap<u32, BTreeMap<ReplicaId, StopData>>,
    synced: HashSet<u32>,
}

impl Synchronizer {
    /// Creates the synchronizer at regency 0 for an ordering pipeline of
    /// width `alpha` (1 = the seed's one-instance-at-a-time behavior;
    /// clamped to 255, the wire vectors' one-byte count limit).
    pub fn new(me: ReplicaId, view: View, alpha: u64) -> Synchronizer {
        Synchronizer {
            me,
            view,
            alpha: alpha.clamp(1, u8::MAX as u64),
            regency: 0,
            sent_stop_for: 0,
            stopped_at: None,
            stops: HashMap::new(),
            stopdata: HashMap::new(),
            synced: HashSet::new(),
        }
    }

    /// Current regency.
    pub fn regency(&self) -> u32 {
        self.regency
    }

    /// Leader of the given regency.
    pub fn leader_of(&self, regency: u32) -> ReplicaId {
        regency as usize % self.view.n()
    }

    /// Leader of the current regency.
    pub fn current_leader(&self) -> ReplicaId {
        self.leader_of(self.regency)
    }

    /// True while a regency change is in flight.
    pub fn is_stopped(&self) -> bool {
        self.stopped_at.is_some()
    }

    /// Highest regency this replica has broadcast a STOP for (0 = none).
    /// Exposed so an embedding over a lossy transport can re-send the STOP
    /// when a link to a peer is re-established.
    pub fn sent_stop_for(&self) -> u32 {
        self.sent_stop_for
    }

    /// The regency this replica is currently stopped at (awaiting SYNC), if
    /// any — the embedding re-provides its STOPDATA to that regency's leader
    /// after a link reconnect, since the original may have been lost with
    /// the torn connection.
    pub fn stopped_regency(&self) -> Option<u32> {
        self.stopped_at
    }

    /// Jumps straight to `regency` without running the STOP/STOPDATA
    /// protocol — used by a recovering replica adopting the regency its
    /// state-transfer shipper reported (it slept through the change and
    /// cannot reconstruct it). Liveness-only state: epoch quorums still
    /// guard safety, so a lying shipper can at worst point us at the wrong
    /// leader until the next genuine change.
    pub fn fast_forward_regency(&mut self, regency: u32) {
        if regency <= self.regency {
            return;
        }
        self.regency = regency;
        self.sent_stop_for = self.sent_stop_for.max(regency);
        self.stopped_at = None;
        self.stops.retain(|r, _| *r > regency);
    }

    /// Timeout entry point: ask for the next regency. Repeated timeouts
    /// escalate past a pending (stopped) regency whose new leader is itself
    /// unresponsive — otherwise a crashed next-leader would wedge the view
    /// change forever.
    pub fn request_change(&mut self) -> Vec<SyncAction> {
        let target = (self.regency + 1)
            .max(self.stopped_at.map_or(0, |s| s + 1))
            .max(self.sent_stop_for + 1);
        if self.sent_stop_for >= target {
            return Vec::new();
        }
        self.sent_stop_for = target;
        let mut actions = vec![SyncAction::Broadcast(SyncMsg::Stop { regency: target })];
        actions.extend(self.record_stop(self.me, target));
        actions
    }

    fn record_stop(&mut self, from: ReplicaId, regency: u32) -> Vec<SyncAction> {
        let mut actions = Vec::new();
        if regency <= self.regency {
            return actions;
        }
        let votes = self.stops.entry(regency).or_default();
        votes.insert(from);
        let count = votes.len();
        let f = self.view.f();
        if count > f && self.sent_stop_for < regency {
            // Join the change: a correct minority amplifies.
            self.sent_stop_for = regency;
            actions.push(SyncAction::Broadcast(SyncMsg::Stop { regency }));
            actions.extend(self.record_stop(self.me, regency));
            return actions;
        }
        if count > 2 * f && self.stopped_at.is_none_or(|s| s < regency) {
            self.stopped_at = Some(regency);
            actions.push(SyncAction::ProvideStopData {
                regency,
                leader: self.leader_of(regency),
            });
        }
        actions
    }

    /// Builds this replica's STOPDATA message for `regency`.
    pub fn make_stopdata(&self, regency: u32, data: StopData) -> SyncMsg {
        SyncMsg::StopData { regency, data }
    }

    /// Handles a synchronization message.
    pub fn on_message(&mut self, from: ReplicaId, msg: SyncMsg) -> Vec<SyncAction> {
        match msg {
            SyncMsg::Stop { regency } => self.record_stop(from, regency),
            SyncMsg::StopData { regency, data } => self.on_stopdata(from, regency, data),
            SyncMsg::Sync {
                regency,
                reports,
                adopted,
            } => self.on_sync(from, regency, reports, adopted),
        }
    }

    fn on_stopdata(&mut self, from: ReplicaId, regency: u32, data: StopData) -> Vec<SyncAction> {
        if regency <= self.regency || self.leader_of(regency) != self.me {
            return Vec::new();
        }
        if !Self::locks_well_formed(&self.view, &data) {
            return Vec::new();
        }
        let entry = self.stopdata.entry(regency).or_default();
        entry.insert(from, data);
        if entry.len() >= self.view.reconfig_quorum() && !self.synced.contains(&regency) {
            self.synced.insert(regency);
            let reports: Vec<(u64, StopData)> =
                entry.iter().map(|(r, d)| (*r as u64, d.clone())).collect();
            let adopted = self.choose(&reports);
            let mut actions = vec![SyncAction::Broadcast(SyncMsg::Sync {
                regency,
                reports: reports.clone(),
                adopted: adopted.clone(),
            })];
            actions.extend(self.install(regency, adopted));
            return actions;
        }
        Vec::new()
    }

    fn lock_valid(view: &View, locked: &LockedReport) -> bool {
        locked.cert.verify(view)
            && locked.cert.instance == locked.instance
            && locked.cert.epoch == locked.epoch
            && locked.cert.value_hash == locked.value.hash()
    }

    /// Every attached lock must verify, and the list must be strictly
    /// ascending by instance (at most one lock per instance).
    fn locks_well_formed(view: &View, data: &StopData) -> bool {
        data.locked
            .windows(2)
            .all(|w| w[0].instance < w[1].instance)
            && data.locked.iter().all(|l| Self::lock_valid(view, l))
    }

    /// The leader's (and validators') deterministic choice rule.
    ///
    /// At α = 1 (the seed behavior, kept bit-for-bit): the single valid lock
    /// with the highest `(instance, epoch)` wins and everything else is
    /// dropped. At α > 1: for *every* instance that any report locked, the
    /// highest-epoch lock for that instance wins — any value that could have
    /// decided at instance `i` is write-locked at a quorum, so it appears in
    /// every `n−f` report set and is re-adopted at `i` (and only at `i`).
    fn choose(&self, reports: &[(u64, StopData)]) -> Vec<(u64, ValueBytes)> {
        if self.alpha <= 1 {
            return reports
                .iter()
                .flat_map(|(_, d)| d.locked.iter())
                .max_by_key(|l| (l.instance, l.epoch))
                .map(|l| vec![(l.instance, l.value.clone())])
                .unwrap_or_default();
        }
        let mut best: BTreeMap<u64, &LockedReport> = BTreeMap::new();
        for (_, d) in reports {
            for l in &d.locked {
                match best.get(&l.instance) {
                    Some(b) if b.epoch >= l.epoch => {}
                    _ => {
                        best.insert(l.instance, l);
                    }
                }
            }
        }
        best.into_values()
            .map(|l| (l.instance, l.value.clone()))
            .collect()
    }

    fn on_sync(
        &mut self,
        from: ReplicaId,
        regency: u32,
        reports: Vec<(u64, StopData)>,
        adopted: Vec<(u64, ValueBytes)>,
    ) -> Vec<SyncAction> {
        if regency <= self.regency || self.leader_of(regency) != from {
            return Vec::new();
        }
        // Re-validate the leader's choice: all locks must verify and the
        // adopted values must equal the deterministic choice.
        for (_, d) in &reports {
            if !Self::locks_well_formed(&self.view, d) {
                return Vec::new();
            }
        }
        if reports.len() < self.view.reconfig_quorum() {
            return Vec::new();
        }
        let expected = self.choose(&reports);
        if expected != adopted {
            return Vec::new();
        }
        self.install(regency, adopted)
    }

    fn install(&mut self, regency: u32, adopt: Vec<(u64, ValueBytes)>) -> Vec<SyncAction> {
        self.regency = regency;
        self.stopped_at = None;
        self.stops.retain(|r, _| *r > regency);
        vec![SyncAction::Install {
            regency,
            leader: self.leader_of(regency),
            adopt,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::write_sign_payload;
    use smartchain_crypto::keys::{Backend, SecretKey};

    fn setup(n: usize) -> (Vec<SecretKey>, View, Vec<Synchronizer>) {
        let secrets: Vec<SecretKey> = (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 100; 32]))
            .collect();
        let view = View {
            id: 0,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        let syncs = (0..n)
            .map(|i| Synchronizer::new(i, view.clone(), 1))
            .collect();
        (secrets, view, syncs)
    }

    fn deliver_all(
        syncs: &mut [Synchronizer],
        mut queue: Vec<(ReplicaId, ReplicaId, SyncMsg)>,
        stopdata: impl Fn(ReplicaId) -> StopData,
    ) -> Vec<Vec<SyncAction>> {
        let n = syncs.len();
        let mut installs: Vec<Vec<SyncAction>> = vec![Vec::new(); n];
        while let Some((from, to, msg)) = queue.pop() {
            let actions = syncs[to].on_message(from, msg);
            for action in actions {
                match action {
                    SyncAction::Broadcast(m) => {
                        for peer in 0..n {
                            if peer != to {
                                queue.push((to, peer, m.clone()));
                            }
                        }
                    }
                    SyncAction::Send(peer, m) => queue.push((to, peer, m)),
                    SyncAction::ProvideStopData { regency, leader } => {
                        let msg = syncs[to].make_stopdata(regency, stopdata(to));
                        if leader == to {
                            queue.push((to, to, msg));
                        } else {
                            queue.push((to, leader, msg));
                        }
                    }
                    install @ SyncAction::Install { .. } => installs[to].push(install),
                }
            }
        }
        installs
    }

    /// Triggers `request_change` at the given replicas (modelling their
    /// timeouts firing) and returns the initial message queue.
    fn trigger_change(
        syncs: &mut [Synchronizer],
        requesters: &[ReplicaId],
    ) -> Vec<(ReplicaId, ReplicaId, SyncMsg)> {
        let n = syncs.len();
        let mut queue = Vec::new();
        for &r in requesters {
            for a in syncs[r].request_change() {
                if let SyncAction::Broadcast(m) = a {
                    for peer in 0..n {
                        if peer != r {
                            queue.push((r, peer, m.clone()));
                        }
                    }
                }
            }
        }
        queue
    }

    #[test]
    fn regency_change_completes_without_locks() {
        // f+1 = 2 replicas time out; the rest join via the amplification rule.
        let (_, _, mut syncs) = setup(4);
        let queue = trigger_change(&mut syncs, &[1, 2]);
        let installs = deliver_all(&mut syncs, queue, |_| StopData {
            last_decided: 9,
            locked: Vec::new(),
        });
        for (i, acts) in installs.iter().enumerate() {
            assert!(
                acts.iter().any(|a| matches!(
                    a,
                    SyncAction::Install {
                        regency: 1,
                        leader: 1,
                        ..
                    }
                )),
                "replica {i} did not install regency 1: {acts:?}"
            );
            for a in acts {
                if let SyncAction::Install { adopt, .. } = a {
                    assert!(adopt.is_empty(), "nothing was locked: {adopt:?}");
                }
            }
        }
        for s in &syncs {
            assert_eq!(s.regency(), 1);
            assert_eq!(s.current_leader(), 1);
        }
    }

    #[test]
    fn one_faulty_stop_does_not_trigger_change() {
        let (_, _, mut syncs) = setup(4);
        // Replica 3 (faulty) sends STOP alone; nobody joins.
        let actions = syncs[0].on_message(3, SyncMsg::Stop { regency: 1 });
        assert!(actions.is_empty());
        assert_eq!(syncs[0].regency(), 0);
    }

    #[test]
    fn f_plus_one_stops_amplify() {
        let (_, _, mut syncs) = setup(4);
        // Two replicas (> f = 1) request the change; replica 0 must join.
        let a1 = syncs[0].on_message(2, SyncMsg::Stop { regency: 1 });
        assert!(a1.is_empty());
        let a2 = syncs[0].on_message(3, SyncMsg::Stop { regency: 1 });
        assert!(
            a2.iter()
                .any(|a| matches!(a, SyncAction::Broadcast(SyncMsg::Stop { regency: 1 }))),
            "{a2:?}"
        );
    }

    #[test]
    fn locked_value_survives_regency_change() {
        let (secrets, view, mut syncs) = setup(4);
        // Build a genuine write certificate for value "locked-batch" at
        // instance 5, epoch 0.
        let value = b"locked-batch".to_vec();
        let h = smartchain_crypto::sha256::digest(&value);
        let payload = write_sign_payload(5, 0, &h);
        let cert = WriteCertificate {
            instance: 5,
            epoch: 0,
            value_hash: h,
            writes: (0..3).map(|r| (r, secrets[r].sign(&payload))).collect(),
        };
        assert!(cert.verify(&view));
        let locked = LockedReport {
            instance: 5,
            epoch: 0,
            value: value.clone().into(),
            cert,
        };

        let queue = trigger_change(&mut syncs, &[2, 3]);
        // A possibly-decided value is locked at a full quorum (2f+1 = 3) of
        // replicas, so every n-f STOPDATA set the new leader can collect
        // contains at least one report of it — this is the intersection
        // argument that makes decided values survive leader changes.
        let locked_for = locked.clone();
        let installs = deliver_all(&mut syncs, queue, move |r| StopData {
            last_decided: 4,
            locked: (r != 3).then(|| locked_for.clone()).into_iter().collect(),
        });
        for (i, acts) in installs.iter().enumerate() {
            let adopted = acts.iter().find_map(|a| match a {
                SyncAction::Install {
                    regency: 1, adopt, ..
                } => Some(adopt.clone()),
                _ => None,
            });
            assert_eq!(
                adopted,
                Some(vec![(5, value.clone().into())]),
                "replica {i} must adopt the locked value at its instance"
            );
        }
    }

    #[test]
    fn forged_lock_is_ignored() {
        let (secrets, view, mut syncs) = setup(4);
        // A lock whose certificate has only one signature (sub-quorum).
        let value = b"forged".to_vec();
        let h = smartchain_crypto::sha256::digest(&value);
        let payload = write_sign_payload(5, 0, &h);
        let bad_cert = WriteCertificate {
            instance: 5,
            epoch: 0,
            value_hash: h,
            writes: vec![(3, secrets[3].sign(&payload))],
        };
        assert!(!bad_cert.verify(&view));
        let locked = LockedReport {
            instance: 5,
            epoch: 0,
            value: value.into(),
            cert: bad_cert,
        };

        let queue = trigger_change(&mut syncs, &[2, 0]);
        let locked_for = locked.clone();
        let installs = deliver_all(&mut syncs, queue, move |r| StopData {
            last_decided: 4,
            locked: (r == 3).then(|| locked_for.clone()).into_iter().collect(),
        });
        // STOPDATA from replica 3 is rejected (invalid cert), but the other
        // three suffice for the n-f quorum and nothing is adopted.
        for acts in &installs {
            for a in acts {
                if let SyncAction::Install { adopt, .. } = a {
                    assert!(adopt.is_empty(), "forged lock adopted: {adopt:?}");
                }
            }
        }
    }

    #[test]
    fn sync_from_non_leader_rejected() {
        let (_, _, mut syncs) = setup(4);
        let actions = syncs[0].on_message(
            3, // leader of regency 1 is replica 1, not 3
            SyncMsg::Sync {
                regency: 1,
                reports: Vec::new(),
                adopted: Vec::new(),
            },
        );
        assert!(actions.is_empty());
        assert_eq!(syncs[0].regency(), 0);
    }

    #[test]
    fn sync_with_wrong_choice_rejected() {
        let (_, _, mut syncs) = setup(4);
        // Leader 1 claims adoption of a value not justified by any report.
        let reports: Vec<(u64, StopData)> = (0..3u64)
            .map(|r| {
                (
                    r,
                    StopData {
                        last_decided: 0,
                        locked: Vec::new(),
                    },
                )
            })
            .collect();
        let actions = syncs[0].on_message(
            1,
            SyncMsg::Sync {
                regency: 1,
                reports,
                adopted: vec![(5, b"bogus".to_vec().into())],
            },
        );
        assert!(actions.is_empty());
        assert_eq!(syncs[0].regency(), 0);
    }

    #[test]
    fn messages_roundtrip() {
        let msgs = vec![
            SyncMsg::Stop { regency: 3 },
            SyncMsg::StopData {
                regency: 3,
                data: StopData {
                    last_decided: 8,
                    locked: Vec::new(),
                },
            },
            SyncMsg::Sync {
                regency: 3,
                reports: vec![(
                    0,
                    StopData {
                        last_decided: 8,
                        locked: Vec::new(),
                    },
                )],
                adopted: vec![(9, vec![1, 2, 3].into()), (10, vec![4, 5].into())],
            },
        ];
        for m in msgs {
            let bytes = smartchain_codec::to_bytes(&m);
            let back: SyncMsg = smartchain_codec::from_bytes(&bytes).unwrap();
            assert_eq!(back, m);
        }
    }
}
#[cfg(test)]
mod wire_len_tests {
    use super::*;
    use crate::proof::WriteCertificate;
    use smartchain_crypto::keys::{Backend, SecretKey};

    /// The compositional `encoded_len` overrides must stay exact.
    #[test]
    fn encoded_len_override_matches_encoding() {
        let sk = SecretKey::from_seed(Backend::Sim, &[3u8; 32]);
        let cert = WriteCertificate {
            instance: 4,
            epoch: 1,
            value_hash: [5u8; 32],
            writes: vec![(0, sk.sign(b"w")), (1, sk.sign(b"x"))],
        };
        let locked = LockedReport {
            instance: 4,
            epoch: 1,
            value: vec![7; 40].into(),
            cert: cert.clone(),
        };
        let data = StopData {
            last_decided: 3,
            locked: vec![locked.clone()],
        };
        let msgs = vec![
            SyncMsg::Stop { regency: 2 },
            SyncMsg::StopData {
                regency: 2,
                data: data.clone(),
            },
            SyncMsg::Sync {
                regency: 2,
                reports: vec![
                    (0, data.clone()),
                    (
                        1,
                        StopData {
                            last_decided: 1,
                            locked: Vec::new(),
                        },
                    ),
                ],
                adopted: vec![(4, vec![7; 40].into())],
            },
        ];
        assert_eq!(cert.encoded_len(), cert.to_vec().len());
        assert_eq!(locked.encoded_len(), locked.to_vec().len());
        assert_eq!(data.encoded_len(), data.to_vec().len());
        for m in msgs {
            assert_eq!(m.encoded_len(), m.to_vec().len());
        }
    }
}
