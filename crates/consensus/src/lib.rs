//! VP-Consensus — the Byzantine consensus algorithm at the core of
//! Mod-SMaRt / BFT-SMaRt (Cachin, "Yet another visit to Paxos", adapted as in
//! the paper's §II-C1).
//!
//! Each consensus *instance* decides one value (a batch of transactions).
//! During normal operation the message pattern matches PBFT (paper Fig. 1):
//!
//! ```text
//! leader   --PROPOSE(v)-->  all
//! replica  --WRITE(H(v))--> all        (on valid proposal)
//! replica  --ACCEPT(H(v), signed)-->   (on quorum of matching WRITEs)
//! decide(v, proof)                     (on quorum of matching ACCEPTs)
//! ```
//!
//! where a quorum is ⌈(n+f+1)/2⌉ replicas. The signed ACCEPT set forms a
//! **decision proof** ([`proof::DecisionProof`]) which the blockchain layer
//! later embeds in blocks — this is why a single correct durable log suffices
//! for recovery (paper Observation 2).
//!
//! Leader changes are handled by the [`synchronizer`] (Mod-SMaRt's
//! synchronization phase): `STOP`/`STOPDATA`/`SYNC` with regencies.

pub mod instance;
pub mod messages;
pub mod proof;
pub mod synchronizer;

pub use smartchain_crypto::ValueBytes;

/// Identifies a replica inside a view (dense, 0-based).
pub type ReplicaId = usize;

/// A view: the set of replicas currently running the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View {
    /// Monotonic view number (0 = initial view from the genesis block).
    pub id: u64,
    /// Public consensus keys, indexed by replica id; `members.len() == n`.
    pub members: Vec<smartchain_crypto::keys::PublicKey>,
}

impl View {
    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// Maximum tolerated Byzantine replicas: ⌊(n-1)/3⌋.
    pub fn f(&self) -> usize {
        (self.n().saturating_sub(1)) / 3
    }

    /// Byzantine quorum size ⌈(n+f+1)/2⌉ (≥ 2f+1).
    pub fn quorum(&self) -> usize {
        (self.n() + self.f() + 2) / 2 // integer ceil of (n+f+1)/2
    }

    /// Size of the "join/leave" certificate quorum n−f.
    pub fn reconfig_quorum(&self) -> usize {
        self.n() - self.f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_crypto::keys::{Backend, SecretKey};

    fn view(n: usize) -> View {
        let members = (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 1; 32]).public_key())
            .collect();
        View { id: 0, members }
    }

    #[test]
    fn quorum_math_matches_paper() {
        // n=4, f=1 -> quorum 3; n=7, f=2 -> quorum 5; n=10, f=3 -> quorum 7.
        for (n, f, q) in [(4, 1, 3), (7, 2, 5), (10, 3, 7), (5, 1, 4), (6, 1, 4)] {
            let v = view(n);
            assert_eq!(v.f(), f, "n={n}");
            assert_eq!(v.quorum(), q, "n={n}");
            // Quorum intersection: two quorums intersect in >= f+1 replicas.
            assert!(2 * v.quorum() > v.n() + v.f(), "n={n}");
        }
    }

    #[test]
    fn reconfig_quorum_is_n_minus_f() {
        assert_eq!(view(4).reconfig_quorum(), 3);
        assert_eq!(view(10).reconfig_quorum(), 7);
    }
}
