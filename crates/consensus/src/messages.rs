//! Wire messages of VP-Consensus and the synchronization phase.

use crate::ReplicaId;
use smartchain_codec::{Decode, DecodeError, Encode};
use smartchain_crypto::keys::Signature;
use smartchain_crypto::{Hash, ValueBytes};

/// A consensus-protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum ConsensusMsg {
    /// Leader's proposal of a value for an instance/epoch.
    Propose {
        /// Consensus instance number.
        instance: u64,
        /// Epoch (regency) in which this proposal is made.
        epoch: u32,
        /// The proposed value (an encoded request batch), shared and
        /// hash-memoized so relays and repair replies never re-copy it.
        value: ValueBytes,
    },
    /// Echo of the proposal hash (Byzantine-leader detection round).
    Write {
        /// Consensus instance number.
        instance: u64,
        /// Epoch of the proposal being echoed.
        epoch: u32,
        /// SHA-256 of the proposed value.
        value_hash: Hash,
        /// Signature over [`crate::proof::write_sign_payload`] with the
        /// sender's consensus key; a quorum of these forms the
        /// [`crate::proof::WriteCertificate`] used in leader changes.
        signature: Signature,
    },
    /// Signed commitment to a value; a quorum of these is a decision proof.
    Accept {
        /// Consensus instance number.
        instance: u64,
        /// Epoch of the commitment.
        epoch: u32,
        /// SHA-256 of the value being committed.
        value_hash: Hash,
        /// Signature over [`accept_sign_payload`] with the sender's
        /// consensus key.
        signature: Signature,
    },
    /// Request to retransmit a decided/proposed value the sender is missing.
    FetchValue {
        /// Consensus instance number.
        instance: u64,
    },
    /// Reply to [`ConsensusMsg::FetchValue`].
    ValueReply {
        /// Consensus instance number.
        instance: u64,
        /// Epoch the value was proposed in.
        epoch: u32,
        /// The value itself (shared handle; see [`ValueBytes`]).
        value: ValueBytes,
    },
}

impl ConsensusMsg {
    /// Instance this message belongs to.
    pub fn instance(&self) -> u64 {
        match self {
            ConsensusMsg::Propose { instance, .. }
            | ConsensusMsg::Write { instance, .. }
            | ConsensusMsg::Accept { instance, .. }
            | ConsensusMsg::FetchValue { instance }
            | ConsensusMsg::ValueReply { instance, .. } => *instance,
        }
    }

    /// The epoch (regency) this message was sent in, when it carries one.
    /// A message from an epoch above our regency means we missed a leader
    /// change — metal deployments use this to trigger state transfer.
    pub fn epoch(&self) -> Option<u32> {
        match self {
            ConsensusMsg::Propose { epoch, .. }
            | ConsensusMsg::Write { epoch, .. }
            | ConsensusMsg::Accept { epoch, .. }
            | ConsensusMsg::ValueReply { epoch, .. } => Some(*epoch),
            ConsensusMsg::FetchValue { .. } => None,
        }
    }

    /// Wire size in bytes (transport framing + canonical encoding), used by
    /// the simulator's NIC model. Derived from the [`Encode`] output so the
    /// encoder is the single source of truth.
    pub fn wire_size(&self) -> usize {
        smartchain_codec::FRAME_BYTES + self.encoded_len()
    }

    /// For signed messages (WRITE/ACCEPT), the canonical sign payload and
    /// the carried signature — the inputs a batch verifier needs. `None`
    /// for unsigned messages (PROPOSE/FETCH/VALUE-REPLY are authenticated
    /// structurally, not by signature).
    pub fn sign_check(&self) -> Option<(Vec<u8>, &Signature)> {
        match self {
            ConsensusMsg::Write {
                instance,
                epoch,
                value_hash,
                signature,
            } => Some((
                crate::proof::write_sign_payload(*instance, *epoch, value_hash),
                signature,
            )),
            ConsensusMsg::Accept {
                instance,
                epoch,
                value_hash,
                signature,
            } => Some((
                accept_sign_payload(*instance, *epoch, value_hash),
                signature,
            )),
            _ => None,
        }
    }
}

/// Canonical bytes a replica signs in an ACCEPT message: the tuple
/// (domain tag, instance, epoch, value hash). Every correct replica signs the
/// same bytes, so any third party can later validate decision proofs.
pub fn accept_sign_payload(instance: u64, epoch: u32, value_hash: &Hash) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + 32 + 8);
    b"sc-accept".as_slice().encode(&mut out);
    instance.encode(&mut out);
    epoch.encode(&mut out);
    value_hash.encode(&mut out);
    out
}

impl Encode for ConsensusMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ConsensusMsg::Propose {
                instance,
                epoch,
                value,
            } => {
                0u8.encode(out);
                instance.encode(out);
                epoch.encode(out);
                value.encode(out);
            }
            ConsensusMsg::Write {
                instance,
                epoch,
                value_hash,
                signature,
            } => {
                1u8.encode(out);
                instance.encode(out);
                epoch.encode(out);
                value_hash.encode(out);
                signature.to_wire().encode(out);
            }
            ConsensusMsg::Accept {
                instance,
                epoch,
                value_hash,
                signature,
            } => {
                2u8.encode(out);
                instance.encode(out);
                epoch.encode(out);
                value_hash.encode(out);
                signature.to_wire().encode(out);
            }
            ConsensusMsg::FetchValue { instance } => {
                3u8.encode(out);
                instance.encode(out);
            }
            ConsensusMsg::ValueReply {
                instance,
                epoch,
                value,
            } => {
                4u8.encode(out);
                instance.encode(out);
                epoch.encode(out);
                value.encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        // Composed per field so sizing a Propose never copies its value.
        1 + match self {
            ConsensusMsg::Propose {
                instance,
                epoch,
                value,
            }
            | ConsensusMsg::ValueReply {
                instance,
                epoch,
                value,
            } => instance.encoded_len() + epoch.encoded_len() + value.encoded_len(),
            ConsensusMsg::Write { .. } | ConsensusMsg::Accept { .. } => 8 + 4 + 32 + 65,
            ConsensusMsg::FetchValue { instance } => instance.encoded_len(),
        }
    }
}

impl Decode for ConsensusMsg {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(ConsensusMsg::Propose {
                instance: u64::decode(input)?,
                epoch: u32::decode(input)?,
                value: ValueBytes::decode(input)?,
            }),
            1 => Ok(ConsensusMsg::Write {
                instance: u64::decode(input)?,
                epoch: u32::decode(input)?,
                value_hash: <[u8; 32]>::decode(input)?,
                signature: Signature::from_wire(&<[u8; 65]>::decode(input)?),
            }),
            2 => Ok(ConsensusMsg::Accept {
                instance: u64::decode(input)?,
                epoch: u32::decode(input)?,
                value_hash: <[u8; 32]>::decode(input)?,
                signature: Signature::from_wire(&<[u8; 65]>::decode(input)?),
            }),
            3 => Ok(ConsensusMsg::FetchValue {
                instance: u64::decode(input)?,
            }),
            4 => Ok(ConsensusMsg::ValueReply {
                instance: u64::decode(input)?,
                epoch: u32::decode(input)?,
                value: ValueBytes::decode(input)?,
            }),
            d => Err(DecodeError::BadDiscriminant(d as u32)),
        }
    }
}

/// Output of the instance/synchronizer state machines — the embedding layer
/// translates these into actual network operations.
#[derive(Clone, Debug, PartialEq)]
pub enum Output<M> {
    /// Send `msg` to every replica in the view (including self, which the
    /// embedding may short-circuit).
    Broadcast(M),
    /// Send `msg` to one replica.
    Send(ReplicaId, M),
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_codec::{from_bytes, to_bytes};
    use smartchain_crypto::keys::{Backend, SecretKey};

    #[test]
    fn messages_roundtrip() {
        let sk = SecretKey::from_seed(Backend::Sim, &[1u8; 32]);
        let msgs = vec![
            ConsensusMsg::Propose {
                instance: 3,
                epoch: 1,
                value: vec![1, 2, 3].into(),
            },
            ConsensusMsg::Write {
                instance: 3,
                epoch: 1,
                value_hash: [7u8; 32],
                signature: sk.sign(b"w"),
            },
            ConsensusMsg::Accept {
                instance: 3,
                epoch: 1,
                value_hash: [7u8; 32],
                signature: sk.sign(b"x"),
            },
            ConsensusMsg::FetchValue { instance: 9 },
            ConsensusMsg::ValueReply {
                instance: 9,
                epoch: 0,
                value: vec![].into(),
            },
        ];
        for m in msgs {
            let bytes = to_bytes(&m);
            let back: ConsensusMsg = from_bytes(&bytes).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn encoded_len_override_matches_encoding() {
        let sk = SecretKey::from_seed(Backend::Sim, &[2u8; 32]);
        let msgs = vec![
            ConsensusMsg::Propose {
                instance: 1,
                epoch: 2,
                value: vec![9; 100].into(),
            },
            ConsensusMsg::Write {
                instance: 1,
                epoch: 2,
                value_hash: [1u8; 32],
                signature: sk.sign(b"w"),
            },
            ConsensusMsg::Accept {
                instance: 1,
                epoch: 2,
                value_hash: [1u8; 32],
                signature: sk.sign(b"a"),
            },
            ConsensusMsg::FetchValue { instance: 5 },
            ConsensusMsg::ValueReply {
                instance: 5,
                epoch: 0,
                value: vec![1].into(),
            },
        ];
        for m in msgs {
            assert_eq!(m.encoded_len(), to_bytes(&m).len(), "{m:?}");
        }
    }

    #[test]
    fn accept_payload_binds_all_fields() {
        let base = accept_sign_payload(1, 2, &[3u8; 32]);
        assert_ne!(accept_sign_payload(9, 2, &[3u8; 32]), base);
        assert_ne!(accept_sign_payload(1, 9, &[3u8; 32]), base);
        assert_ne!(accept_sign_payload(1, 2, &[9u8; 32]), base);
    }

    #[test]
    fn wire_size_tracks_value() {
        let small = ConsensusMsg::Propose {
            instance: 0,
            epoch: 0,
            value: vec![0; 10].into(),
        };
        let big = ConsensusMsg::Propose {
            instance: 0,
            epoch: 0,
            value: vec![0; 10_000].into(),
        };
        assert!(big.wire_size() > small.wire_size() + 9_000);
    }
}
