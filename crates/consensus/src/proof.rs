//! Decision proofs: quorums of signed ACCEPT (or WRITE) messages.
//!
//! Every value decided by VP-Consensus comes with a proof that a Byzantine
//! quorum committed to it. The blockchain layer stores these proofs next to
//! each batch (Algorithm 1, line 18), which is what makes a *single* correct
//! replica's log sufficient evidence of the committed history.

use crate::messages::accept_sign_payload;
use crate::{ReplicaId, View};
use smartchain_codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};
use smartchain_crypto::keys::Signature;
use smartchain_crypto::Hash;

/// Canonical bytes a replica signs in a WRITE message.
pub fn write_sign_payload(instance: u64, epoch: u32, value_hash: &Hash) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + 32 + 8);
    b"sc-write".as_slice().encode(&mut out);
    instance.encode(&mut out);
    epoch.encode(&mut out);
    value_hash.encode(&mut out);
    out
}

/// A quorum of signed ACCEPTs for one `(instance, epoch, value_hash)`.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionProof {
    /// Consensus instance this proof belongs to.
    pub instance: u64,
    /// Epoch in which the decision happened.
    pub epoch: u32,
    /// Hash of the decided value.
    pub value_hash: Hash,
    /// `(signer, signature)` pairs; valid proofs have ≥ quorum distinct
    /// signers from the view.
    pub accepts: Vec<(ReplicaId, Signature)>,
}

impl DecisionProof {
    /// Checks the proof against `view`: enough distinct signers, all of them
    /// members, every signature valid over the canonical accept payload.
    pub fn verify(&self, view: &View) -> bool {
        let payload = accept_sign_payload(self.instance, self.epoch, &self.value_hash);
        let mut seen = vec![false; view.n()];
        let mut valid = 0usize;
        for (signer, signature) in &self.accepts {
            let Some(key) = view.members.get(*signer) else {
                return false;
            };
            if seen[*signer] {
                return false; // duplicate signer — malformed proof
            }
            seen[*signer] = true;
            if !key.verify(&payload, signature) {
                return false;
            }
            valid += 1;
        }
        valid >= view.quorum()
    }

    /// Wire size (for the simulator and for block storage accounting) —
    /// the canonical encoding's exact length.
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for DecisionProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.instance.encode(out);
        self.epoch.encode(out);
        self.value_hash.encode(out);
        let entries: Vec<(u64, [u8; 65])> = self
            .accepts
            .iter()
            .map(|(r, s)| (*r as u64, s.to_wire()))
            .collect();
        encode_seq(&entries, out);
    }
    fn encoded_len(&self) -> usize {
        self.instance.encoded_len()
            + self.epoch.encoded_len()
            + self.value_hash.encoded_len()
            + 4
            + self.accepts.len() * (8 + 65)
    }
}

impl Decode for DecisionProof {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let instance = u64::decode(input)?;
        let epoch = u32::decode(input)?;
        let value_hash = <[u8; 32]>::decode(input)?;
        let entries: Vec<(u64, [u8; 65])> = decode_seq(input)?;
        Ok(DecisionProof {
            instance,
            epoch,
            value_hash,
            accepts: entries
                .into_iter()
                .map(|(r, s)| (r as usize, Signature::from_wire(&s)))
                .collect(),
        })
    }
}

/// A quorum of signed WRITEs — carried in STOPDATA during leader changes to
/// justify a replica's locked value.
#[derive(Clone, Debug, PartialEq)]
pub struct WriteCertificate {
    /// Consensus instance.
    pub instance: u64,
    /// Epoch the writes happened in.
    pub epoch: u32,
    /// Hash of the certified value.
    pub value_hash: Hash,
    /// `(signer, signature)` pairs over the canonical write payload.
    pub writes: Vec<(ReplicaId, Signature)>,
}

impl WriteCertificate {
    /// Verifies against `view` (same rules as [`DecisionProof::verify`]).
    pub fn verify(&self, view: &View) -> bool {
        let payload = write_sign_payload(self.instance, self.epoch, &self.value_hash);
        let mut seen = vec![false; view.n()];
        let mut valid = 0usize;
        for (signer, signature) in &self.writes {
            let Some(key) = view.members.get(*signer) else {
                return false;
            };
            if seen[*signer] {
                return false;
            }
            seen[*signer] = true;
            if !key.verify(&payload, signature) {
                return false;
            }
            valid += 1;
        }
        valid >= view.quorum()
    }
}

impl Encode for WriteCertificate {
    fn encode(&self, out: &mut Vec<u8>) {
        self.instance.encode(out);
        self.epoch.encode(out);
        self.value_hash.encode(out);
        let entries: Vec<(u64, [u8; 65])> = self
            .writes
            .iter()
            .map(|(r, s)| (*r as u64, s.to_wire()))
            .collect();
        encode_seq(&entries, out);
    }
    fn encoded_len(&self) -> usize {
        self.instance.encoded_len()
            + self.epoch.encoded_len()
            + self.value_hash.encoded_len()
            + 4
            + self.writes.len() * (8 + 65)
    }
}

impl Decode for WriteCertificate {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let instance = u64::decode(input)?;
        let epoch = u32::decode(input)?;
        let value_hash = <[u8; 32]>::decode(input)?;
        let entries: Vec<(u64, [u8; 65])> = decode_seq(input)?;
        Ok(WriteCertificate {
            instance,
            epoch,
            value_hash,
            writes: entries
                .into_iter()
                .map(|(r, s)| (r as usize, Signature::from_wire(&s)))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_crypto::keys::{Backend, SecretKey};

    fn keys(n: usize) -> (Vec<SecretKey>, View) {
        let secrets: Vec<SecretKey> = (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 10; 32]))
            .collect();
        let view = View {
            id: 0,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        (secrets, view)
    }

    fn proof(secrets: &[SecretKey], signers: &[usize], h: Hash) -> DecisionProof {
        let payload = accept_sign_payload(5, 0, &h);
        DecisionProof {
            instance: 5,
            epoch: 0,
            value_hash: h,
            accepts: signers
                .iter()
                .map(|&r| (r, secrets[r].sign(&payload)))
                .collect(),
        }
    }

    #[test]
    fn quorum_proof_verifies() {
        let (secrets, view) = keys(4);
        assert!(proof(&secrets, &[0, 1, 2], [9u8; 32]).verify(&view));
        assert!(proof(&secrets, &[0, 1, 2, 3], [9u8; 32]).verify(&view));
    }

    #[test]
    fn subquorum_proof_rejected() {
        let (secrets, view) = keys(4);
        assert!(!proof(&secrets, &[0, 1], [9u8; 32]).verify(&view));
    }

    #[test]
    fn duplicate_signer_rejected() {
        let (secrets, view) = keys(4);
        let mut p = proof(&secrets, &[0, 1], [9u8; 32]);
        p.accepts.push(p.accepts[0]);
        assert!(!p.verify(&view));
    }

    #[test]
    fn wrong_signer_index_rejected() {
        let (secrets, view) = keys(4);
        let mut p = proof(&secrets, &[0, 1, 2], [9u8; 32]);
        // Signature from replica 2 attributed to replica 3.
        p.accepts[2].0 = 3;
        assert!(!p.verify(&view));
    }

    #[test]
    fn out_of_view_signer_rejected() {
        let (secrets, view) = keys(4);
        let mut p = proof(&secrets, &[0, 1, 2], [9u8; 32]);
        p.accepts[0].0 = 11;
        assert!(!p.verify(&view));
    }

    #[test]
    fn proof_does_not_verify_in_other_view() {
        let (secrets, _) = keys(4);
        let (_, other_view) = keys_with_offset(4, 99);
        assert!(!proof(&secrets, &[0, 1, 2], [9u8; 32]).verify(&other_view));
    }

    fn keys_with_offset(n: usize, offset: u8) -> (Vec<SecretKey>, View) {
        let secrets: Vec<SecretKey> = (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + offset; 32]))
            .collect();
        let view = View {
            id: 1,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        (secrets, view)
    }

    #[test]
    fn proof_codec_roundtrip() {
        let (secrets, _) = keys(4);
        let p = proof(&secrets, &[0, 1, 2], [3u8; 32]);
        let bytes = smartchain_codec::to_bytes(&p);
        let back: DecisionProof = smartchain_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn write_certificate_verifies() {
        let (secrets, view) = keys(4);
        let h = [4u8; 32];
        let payload = write_sign_payload(2, 1, &h);
        let cert = WriteCertificate {
            instance: 2,
            epoch: 1,
            value_hash: h,
            writes: (0..3).map(|r| (r, secrets[r].sign(&payload))).collect(),
        };
        assert!(cert.verify(&view));
        // Accept signatures are domain-separated from write signatures.
        let wrong_domain = WriteCertificate {
            writes: (0..3)
                .map(|r| (r, secrets[r].sign(&accept_sign_payload(2, 1, &h))))
                .collect(),
            ..cert
        };
        assert!(!wrong_domain.verify(&view));
    }
}

#[cfg(test)]
mod wire_len_tests {
    use super::*;
    use smartchain_crypto::keys::{Backend, SecretKey};

    #[test]
    fn encoded_len_override_matches_encoding() {
        let sk = SecretKey::from_seed(Backend::Sim, &[4u8; 32]);
        let proof = DecisionProof {
            instance: 9,
            epoch: 2,
            value_hash: [6u8; 32],
            accepts: vec![(0, sk.sign(b"a")), (2, sk.sign(b"b"))],
        };
        assert_eq!(proof.encoded_len(), proof.to_vec().len());
        assert_eq!(proof.wire_size(), proof.to_vec().len());
    }
}
