//! Byzantine-safety property tests for VP-Consensus: an equivocating leader
//! sending arbitrary value splits to arbitrary replica subsets, with
//! arbitrary delivery orders, can never produce two conflicting decisions —
//! and whatever decides carries a verifiable quorum proof.
//!
//! Randomized splits and delivery orders come from a seeded splitmix64
//! generator so every run covers the same 64 adversarial schedules.

use smartchain_consensus::instance::{Decision, Instance};
use smartchain_consensus::messages::{ConsensusMsg, Output};
use smartchain_consensus::proof::{write_sign_payload, WriteCertificate};
use smartchain_consensus::synchronizer::{
    LockedReport, StopData, SyncAction, SyncMsg, Synchronizer,
};
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::{Backend, SecretKey};
use smartchain_crypto::sha256;

use smartchain_sim::rng::SimRng;

/// Seeded generator helpers over the simulator's RNG (no external crates).
struct Gen(SimRng);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(SimRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn bytes(&mut self, min: usize, max: usize) -> Vec<u8> {
        let len = min + self.0.gen_range((max - min + 1) as u64) as usize;
        self.0.gen_bytes(len)
    }
}

fn cluster(n: usize) -> (Vec<Instance>, View) {
    let secrets: Vec<SecretKey> = (0..n)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 180; 32]))
        .collect();
    let view = View {
        id: 0,
        members: secrets.iter().map(|s| s.public_key()).collect(),
    };
    let instances = (0..n)
        .map(|i| Instance::new(1, i, view.clone(), secrets[i].clone(), 0, 0))
        .collect();
    (instances, view)
}

/// Leader 0 is Byzantine: it partitions the followers between two
/// proposals. No two correct replicas may decide different values, and
/// every decision proof must verify.
#[test]
fn equivocation_never_splits_decisions() {
    let mut g = Gen::new(0xb1);
    for case in 0..64 {
        let assignment: Vec<bool> = (0..3).map(|_| g.next_u64().is_multiple_of(2)).collect();
        let value_a = g.bytes(1, 24);
        let mut value_b = g.bytes(1, 24);
        if value_b == value_a {
            value_b.push(0x5a); // force distinct proposals
        }
        let (mut instances, view) = cluster(4);
        // The Byzantine leader sends value A or B to each follower.
        let mut queue: Vec<(ReplicaId, ReplicaId, ConsensusMsg)> = Vec::new();
        for (i, takes_a) in assignment.iter().enumerate() {
            let to = i + 1;
            let value = if *takes_a {
                value_a.clone()
            } else {
                value_b.clone()
            };
            queue.push((
                0,
                to,
                ConsensusMsg::Propose {
                    instance: 1,
                    epoch: 0,
                    value: value.into(),
                },
            ));
        }
        let mut decisions: Vec<Option<Decision>> = vec![None; 4];
        let mut step = 0usize;
        while !queue.is_empty() && step < 20_000 {
            let pick = (g.next_u64() as usize) % queue.len();
            step += 1;
            let (from, to, msg) = queue.swap_remove(pick);
            let (outs, decision) = instances[to].on_message(from, msg);
            if let Some(d) = decision {
                decisions[to] = Some(d);
            }
            for out in outs {
                match out {
                    Output::Broadcast(m) => {
                        // Follower broadcasts reach everyone except the
                        // (silent, Byzantine) leader's honest path — include
                        // the leader anyway; it stays mute.
                        for peer in 0..4 {
                            if peer != to {
                                queue.push((to, peer, m.clone()));
                            }
                        }
                    }
                    Output::Send(peer, m) => queue.push((to, peer, m)),
                }
            }
        }
        let decided: Vec<&Decision> = decisions.iter().flatten().collect();
        let values: std::collections::HashSet<Vec<u8>> =
            decided.iter().map(|d| d.value.to_vec()).collect();
        assert!(
            values.len() <= 1,
            "case {case}: conflicting decisions ({} values)",
            values.len()
        );
        for d in decided {
            assert!(
                d.proof.verify(&view),
                "case {case}: decision proof must verify"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Pipelined (α > 1) view-change safety
// ---------------------------------------------------------------------------

fn sync_setup(n: usize, alpha: u64) -> (Vec<SecretKey>, View, Vec<Synchronizer>) {
    let secrets: Vec<SecretKey> = (0..n)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 210; 32]))
        .collect();
    let view = View {
        id: 0,
        members: secrets.iter().map(|s| s.public_key()).collect(),
    };
    let syncs = (0..n)
        .map(|i| Synchronizer::new(i, view.clone(), alpha))
        .collect();
    (secrets, view, syncs)
}

fn genuine_lock(
    secrets: &[SecretKey],
    signers: &[ReplicaId],
    instance: u64,
    epoch: u32,
    value: &[u8],
) -> LockedReport {
    let h = sha256::digest(value);
    let payload = write_sign_payload(instance, epoch, &h);
    LockedReport {
        instance,
        epoch,
        value: value.to_vec().into(),
        cert: WriteCertificate {
            instance,
            epoch,
            value_hash: h,
            writes: signers
                .iter()
                .map(|&r| (r, secrets[r].sign(&payload)))
                .collect(),
        },
    }
}

/// An installed adoption vector: `(instance, value)` pairs.
type Adopted = Vec<(u64, smartchain_consensus::ValueBytes)>;

/// Drives a full regency change with per-replica STOPDATA contents and
/// returns each replica's adopted `(instance, value)` vector.
fn run_change(
    syncs: &mut [Synchronizer],
    stopdata: impl Fn(ReplicaId) -> StopData,
) -> Vec<Option<Adopted>> {
    let n = syncs.len();
    let mut adopted: Vec<Option<Adopted>> = vec![None; n];
    let mut queue: Vec<(ReplicaId, ReplicaId, SyncMsg)> = Vec::new();
    for r in [1usize, 2] {
        for a in syncs[r].request_change() {
            if let SyncAction::Broadcast(m) = a {
                for peer in 0..n {
                    if peer != r {
                        queue.push((r, peer, m.clone()));
                    }
                }
            }
        }
    }
    while let Some((from, to, msg)) = queue.pop() {
        for action in syncs[to].on_message(from, msg) {
            match action {
                SyncAction::Broadcast(m) => {
                    for peer in 0..n {
                        if peer != to {
                            queue.push((to, peer, m.clone()));
                        }
                    }
                }
                SyncAction::Send(peer, m) => queue.push((to, peer, m)),
                SyncAction::ProvideStopData { regency, leader } => {
                    let msg = syncs[to].make_stopdata(regency, stopdata(to));
                    queue.push((to, leader, msg));
                }
                SyncAction::Install { adopt, .. } => adopted[to] = Some(adopt),
            }
        }
    }
    adopted
}

/// With α = 4 in-flight instances, every instance's locked (possibly
/// decided) value must be adopted at its OWN instance — the per-instance
/// choice rule — and all correct replicas must adopt identical vectors.
#[test]
fn pipelined_view_change_adopts_every_locked_instance() {
    let (secrets, _, mut syncs) = sync_setup(4, 4);
    // Quorum-locked values at instances 5..=8, reported unevenly: replica 0
    // holds locks for 5..=8, replica 1 for 5..=6, replica 2 for 7..=8,
    // replica 3 for none. Any n−f = 3 reports still cover all four.
    let locks: Vec<LockedReport> = (5..=8u64)
        .map(|i| genuine_lock(&secrets, &[0, 1, 2], i, 0, format!("value-{i}").as_bytes()))
        .collect();
    let adopted = run_change(&mut syncs, |r| StopData {
        last_decided: 4,
        locked: match r {
            0 => locks.clone(),
            1 => locks[..2].to_vec(),
            2 => locks[2..].to_vec(),
            _ => Vec::new(),
        },
    });
    let expected: Adopted = (5..=8u64)
        .map(|i| (i, format!("value-{i}").into_bytes().into()))
        .collect();
    for (r, a) in adopted.iter().enumerate() {
        assert_eq!(
            a.as_ref(),
            Some(&expected),
            "replica {r} must adopt every in-flight locked value at its instance"
        );
    }
}

/// A forged lock (sub-quorum certificate) for one pipelined instance
/// invalidates only the reports carrying it; genuine locks at the other
/// instances still survive, and the forged instance is adopted from the
/// highest genuine epoch instead.
#[test]
fn pipelined_view_change_drops_forged_locks_keeps_genuine() {
    let (secrets, view, mut syncs) = sync_setup(4, 4);
    let good5 = genuine_lock(&secrets, &[0, 1, 2], 5, 0, b"good-5");
    let good6 = genuine_lock(&secrets, &[0, 1, 3], 6, 1, b"good-6-epoch1");
    let old6 = genuine_lock(&secrets, &[0, 1, 2], 6, 0, b"good-6-epoch0");
    let forged7 = {
        let mut l = genuine_lock(&secrets, &[3], 7, 0, b"forged-7");
        assert!(!l.cert.verify(&view), "sub-quorum cert must not verify");
        l.epoch = 0;
        l
    };
    let adopted = run_change(&mut syncs, |r| StopData {
        last_decided: 4,
        locked: match r {
            // Replica 3's report carries a forged lock: the whole report is
            // rejected, but 0..2 suffice for the n−f quorum.
            3 => vec![good5.clone(), forged7.clone()],
            2 => vec![good5.clone(), old6.clone()],
            _ => vec![good5.clone(), good6.clone()],
        },
    });
    for (r, a) in adopted.iter().enumerate().take(3) {
        let a = a
            .as_ref()
            .unwrap_or_else(|| panic!("replica {r} no install"));
        assert_eq!(
            a,
            &vec![
                (5, b"good-5".to_vec().into()),
                (6, b"good-6-epoch1".to_vec().into()),
            ],
            "replica {r}: forged lock dropped, per-instance highest epoch wins"
        );
    }
}

/// A Byzantine new leader cannot smuggle a value to a different instance:
/// followers recompute the per-instance choice from the reports and reject
/// a SYNC whose adoption vector moves a locked value one slot over (the
/// precise way pipelined histories would fork).
#[test]
fn pipelined_sync_with_shifted_adoption_rejected() {
    let (secrets, _, mut syncs) = sync_setup(4, 4);
    let lock = genuine_lock(&secrets, &[0, 1, 2], 5, 0, b"locked-at-5");
    let reports: Vec<(u64, StopData)> = (0..3u64)
        .map(|r| {
            (
                r,
                StopData {
                    last_decided: 4,
                    locked: vec![lock.clone()],
                },
            )
        })
        .collect();
    // Regency 1's leader is replica 1; it re-targets the value at instance 6.
    let actions = syncs[0].on_message(
        1,
        SyncMsg::Sync {
            regency: 1,
            reports: reports.clone(),
            adopted: vec![(6, b"locked-at-5".to_vec().into())],
        },
    );
    assert!(actions.is_empty(), "shifted adoption must be rejected");
    // The honest vector is accepted.
    let actions = syncs[0].on_message(
        1,
        SyncMsg::Sync {
            regency: 1,
            reports,
            adopted: vec![(5, b"locked-at-5".to_vec().into())],
        },
    );
    assert!(actions
        .iter()
        .any(|a| matches!(a, SyncAction::Install { .. })));
}

/// Randomized: under arbitrary subsets of genuinely locked pipelined
/// instances and arbitrary report distributions, the adoption vector every
/// replica installs (a) is identical cluster-wide, (b) never moves a value
/// across instances, and (c) contains every instance that any collected
/// report locked.
#[test]
fn prop_pipelined_adoption_consistent() {
    let mut g = Gen::new(0xc4);
    for case in 0..24 {
        let (secrets, _, mut syncs) = sync_setup(4, 8);
        let mut locks: Vec<LockedReport> = Vec::new();
        for i in 1..=6u64 {
            if !g.next_u64().is_multiple_of(2) {
                continue;
            }
            let epoch = (g.next_u64() % 2) as u32;
            locks.push(genuine_lock(
                &secrets,
                &[0, 1, 2],
                i,
                epoch,
                format!("case-{case}-v{i}-e{epoch}").as_bytes(),
            ));
        }
        let mask: Vec<u64> = (0..4).map(|_| g.next_u64()).collect();
        let adopted = run_change(&mut syncs, |r| StopData {
            last_decided: 0,
            locked: locks
                .iter()
                .enumerate()
                .filter(|(k, _)| r == 0 || mask[r] >> k & 1 == 1)
                .map(|(_, l)| l.clone())
                .collect(),
        });
        let reference = adopted
            .iter()
            .flatten()
            .next()
            .cloned()
            .unwrap_or_else(|| panic!("case {case}: nobody installed"));
        for (r, a) in adopted.iter().enumerate() {
            let a = a
                .as_ref()
                .unwrap_or_else(|| panic!("case {case} replica {r}"));
            assert_eq!(a, &reference, "case {case}: adoption vectors diverge");
            for (instance, value) in a {
                let lock = locks
                    .iter()
                    .find(|l| l.value == *value)
                    .unwrap_or_else(|| panic!("case {case}: unknown value adopted"));
                assert_eq!(
                    lock.instance, *instance,
                    "case {case}: value moved across instances"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-instance repair: replayed messages and fetched values
// ---------------------------------------------------------------------------

/// Decides instance 1 at replicas 0..=2 while replica 3 receives nothing,
/// and returns the instances plus the decided value.
fn decided_with_blind_replica() -> (Vec<Instance>, View, Vec<u8>) {
    let (mut instances, view) = cluster(4);
    let value = b"repair-me".to_vec();
    let mut queue: Vec<(ReplicaId, ReplicaId, ConsensusMsg)> = Vec::new();
    for out in instances[0].propose(value.clone()) {
        if let Output::Broadcast(m) = out {
            for to in 0..4 {
                queue.push((0, to, m.clone()));
            }
        }
    }
    while let Some((from, to, msg)) = queue.pop() {
        if to == 3 {
            continue; // replica 3 is dark
        }
        let (outs, _) = instances[to].on_message(from, msg);
        for out in outs {
            match out {
                Output::Broadcast(m) => {
                    for peer in 0..4 {
                        if peer != to {
                            queue.push((to, peer, m.clone()));
                        }
                    }
                }
                Output::Send(peer, m) => queue.push((to, peer, m)),
            }
        }
    }
    for (r, instance) in instances.iter().enumerate().take(3) {
        assert!(instance.is_decided(), "replica {r} must decide");
    }
    assert!(!instances[3].is_decided(), "replica 3 must be blind");
    (instances, view, value)
}

/// The repair protocol replays a responder's own PROPOSE/WRITE/ACCEPT
/// through the ordinary consensus checks, which bind every signature to the
/// wire sender. A Byzantine replica relaying *someone else's* signed
/// messages under its own identity contributes nothing toward any quorum;
/// the same messages replayed truthfully rebuild the instance and decide
/// it with a verifiable proof.
#[test]
fn repair_replay_binds_messages_to_wire_sender() {
    let (mut instances, view, value) = decided_with_blind_replica();

    // Replica 2 relays replica 1's repair payload as its own.
    for msg in instances[1].own_messages(true) {
        let (_, decision) = instances[3].on_message(2, msg);
        assert!(decision.is_none(), "relabeled replay must not decide");
    }
    assert!(
        !instances[3].is_decided(),
        "relabeled replays must leave the blind replica undecided"
    );

    // Truthful replays from all three responders heal the instance.
    let mut healed = None;
    for r in 0..3usize {
        for msg in instances[r].own_messages(true) {
            let (_, decision) = instances[3].on_message(r, msg);
            if let Some(d) = decision {
                healed = Some(d);
            }
        }
    }
    let healed = healed.expect("truthful replays must decide");
    assert_eq!(healed.value, value, "the decided value survives repair");
    assert!(
        healed.proof.verify(&view),
        "the repair decision proof verifies"
    );
}

/// A fetched value that does not hash to the write/accept quorum's value
/// hash can never complete a decision: a Byzantine responder holding the
/// real quorum votes still cannot smuggle a different value through the
/// repair path.
#[test]
fn tampered_fetched_value_never_decides() {
    let (mut instances, _, _) = decided_with_blind_replica();

    // The tampered value lands first and occupies the value slot.
    let (_, decision) = instances[3].on_message(
        2,
        ConsensusMsg::ValueReply {
            instance: 1,
            epoch: 0,
            value: b"forged-value".to_vec().into(),
        },
    );
    assert!(decision.is_none(), "a bare value reply never decides");

    // Genuine votes arrive: full write + accept quorums on the real hash.
    for r in 0..3usize {
        for msg in instances[r].own_messages(false) {
            let (_, decision) = instances[3].on_message(r, msg);
            assert!(
                decision.is_none(),
                "quorum on the real hash must not marry the forged value"
            );
        }
    }
    assert!(
        !instances[3].is_decided(),
        "hash binding keeps the forged value out of any decision"
    );
}
