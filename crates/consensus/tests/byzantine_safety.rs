//! Byzantine-safety property tests for VP-Consensus: an equivocating leader
//! sending arbitrary value splits to arbitrary replica subsets, with
//! arbitrary delivery orders, can never produce two conflicting decisions —
//! and whatever decides carries a verifiable quorum proof.
//!
//! Randomized splits and delivery orders come from a seeded splitmix64
//! generator so every run covers the same 64 adversarial schedules.

use smartchain_consensus::instance::{Decision, Instance};
use smartchain_consensus::messages::{ConsensusMsg, Output};
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::{Backend, SecretKey};

use smartchain_sim::rng::SimRng;

/// Seeded generator helpers over the simulator's RNG (no external crates).
struct Gen(SimRng);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(SimRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn bytes(&mut self, min: usize, max: usize) -> Vec<u8> {
        let len = min + self.0.gen_range((max - min + 1) as u64) as usize;
        self.0.gen_bytes(len)
    }
}

fn cluster(n: usize) -> (Vec<Instance>, View) {
    let secrets: Vec<SecretKey> = (0..n)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 180; 32]))
        .collect();
    let view = View {
        id: 0,
        members: secrets.iter().map(|s| s.public_key()).collect(),
    };
    let instances = (0..n)
        .map(|i| Instance::new(1, i, view.clone(), secrets[i].clone(), 0, 0))
        .collect();
    (instances, view)
}

/// Leader 0 is Byzantine: it partitions the followers between two
/// proposals. No two correct replicas may decide different values, and
/// every decision proof must verify.
#[test]
fn equivocation_never_splits_decisions() {
    let mut g = Gen::new(0xb1);
    for case in 0..64 {
        let assignment: Vec<bool> = (0..3).map(|_| g.next_u64().is_multiple_of(2)).collect();
        let value_a = g.bytes(1, 24);
        let mut value_b = g.bytes(1, 24);
        if value_b == value_a {
            value_b.push(0x5a); // force distinct proposals
        }
        let (mut instances, view) = cluster(4);
        // The Byzantine leader sends value A or B to each follower.
        let mut queue: Vec<(ReplicaId, ReplicaId, ConsensusMsg)> = Vec::new();
        for (i, takes_a) in assignment.iter().enumerate() {
            let to = i + 1;
            let value = if *takes_a {
                value_a.clone()
            } else {
                value_b.clone()
            };
            queue.push((
                0,
                to,
                ConsensusMsg::Propose {
                    instance: 1,
                    epoch: 0,
                    value,
                },
            ));
        }
        let mut decisions: Vec<Option<Decision>> = vec![None; 4];
        let mut step = 0usize;
        while !queue.is_empty() && step < 20_000 {
            let pick = (g.next_u64() as usize) % queue.len();
            step += 1;
            let (from, to, msg) = queue.swap_remove(pick);
            let (outs, decision) = instances[to].on_message(from, msg);
            if let Some(d) = decision {
                decisions[to] = Some(d);
            }
            for out in outs {
                match out {
                    Output::Broadcast(m) => {
                        // Follower broadcasts reach everyone except the
                        // (silent, Byzantine) leader's honest path — include
                        // the leader anyway; it stays mute.
                        for peer in 0..4 {
                            if peer != to {
                                queue.push((to, peer, m.clone()));
                            }
                        }
                    }
                    Output::Send(peer, m) => queue.push((to, peer, m)),
                }
            }
        }
        let decided: Vec<&Decision> = decisions.iter().flatten().collect();
        let values: std::collections::HashSet<&Vec<u8>> =
            decided.iter().map(|d| &d.value).collect();
        assert!(
            values.len() <= 1,
            "case {case}: conflicting decisions ({} values)",
            values.len()
        );
        for d in decided {
            assert!(
                d.proof.verify(&view),
                "case {case}: decision proof must verify"
            );
        }
    }
}
