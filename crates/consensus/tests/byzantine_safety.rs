//! Byzantine-safety property tests for VP-Consensus: an equivocating leader
//! sending arbitrary value splits to arbitrary replica subsets, with
//! arbitrary delivery orders, can never produce two conflicting decisions —
//! and whatever decides carries a verifiable quorum proof.

use proptest::prelude::*;
use smartchain_consensus::instance::{Decision, Instance};
use smartchain_consensus::messages::{ConsensusMsg, Output};
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::{Backend, SecretKey};

fn cluster(n: usize) -> (Vec<Instance>, View) {
    let secrets: Vec<SecretKey> = (0..n)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 180; 32]))
        .collect();
    let view = View { id: 0, members: secrets.iter().map(|s| s.public_key()).collect() };
    let instances = (0..n)
        .map(|i| Instance::new(1, i, view.clone(), secrets[i].clone(), 0, 0))
        .collect();
    (instances, view)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Leader 0 is Byzantine: it partitions the followers between two
    /// proposals. No two correct replicas may decide different values, and
    /// every decision proof must verify.
    #[test]
    fn equivocation_never_splits_decisions(
        assignment in proptest::collection::vec(prop::bool::ANY, 3),
        order in proptest::collection::vec(any::<u8>(), 48),
        value_a in proptest::collection::vec(any::<u8>(), 1..24),
        value_b in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        prop_assume!(value_a != value_b);
        let (mut instances, view) = cluster(4);
        // The Byzantine leader sends value A or B to each follower.
        let mut queue: Vec<(ReplicaId, ReplicaId, ConsensusMsg)> = Vec::new();
        for (i, takes_a) in assignment.iter().enumerate() {
            let to = i + 1;
            let value = if *takes_a { value_a.clone() } else { value_b.clone() };
            queue.push((0, to, ConsensusMsg::Propose { instance: 1, epoch: 0, value }));
        }
        let mut decisions: Vec<Option<Decision>> = vec![None; 4];
        let mut step = 0usize;
        while !queue.is_empty() && step < 20_000 {
            let pick = order[step % order.len()] as usize % queue.len();
            step += 1;
            let (from, to, msg) = queue.swap_remove(pick);
            let (outs, decision) = instances[to].on_message(from, msg);
            if let Some(d) = decision {
                decisions[to] = Some(d);
            }
            for out in outs {
                match out {
                    Output::Broadcast(m) => {
                        // Follower broadcasts reach everyone except the
                        // (silent, Byzantine) leader's honest path — include
                        // the leader anyway; it stays mute.
                        for peer in 0..4 {
                            if peer != to {
                                queue.push((to, peer, m.clone()));
                            }
                        }
                    }
                    Output::Send(peer, m) => queue.push((to, peer, m)),
                }
            }
        }
        let decided: Vec<&Decision> = decisions.iter().flatten().collect();
        let values: std::collections::HashSet<&Vec<u8>> =
            decided.iter().map(|d| &d.value).collect();
        prop_assert!(values.len() <= 1, "conflicting decisions: {} values", values.len());
        for d in decided {
            prop_assert!(d.proof.verify(&view), "decision proof must verify");
        }
    }
}
