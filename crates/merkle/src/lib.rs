//! Binary Merkle trees over SHA-256 — the commitment subsystem.
//!
//! One tree shape, three access patterns:
//!
//! * [`root`] / [`prove`] / [`verify`] — one-shot roots and membership
//!   proofs over a list of leaves (block transaction and result
//!   commitments).
//! * [`MerkleTree`] — incremental append: the binary-carry peak set (one
//!   peak per set bit of the leaf count, bagged right-to-left) produces
//!   the *same* root as a full rebuild, in O(log n) memory.
//! * [`chunked_root`] / [`prove_chunk`] / [`prove_range`] — fixed-size
//!   chunking of an opaque byte string (application snapshots), with
//!   single-chunk membership proofs and contiguous range proofs, so a
//!   shipped snapshot can be verified chunk-by-chunk against a certified
//!   state root.
//!
//! Leaves and interior nodes are domain-separated (`0x00`/`0x01` prefixes)
//! and odd nodes are promoted unchanged — Bitcoin-style duplication would
//! enable CVE-2012-2459-class mutations ([`tests`] pin this). The resulting
//! tree is the RFC 6962 shape: the root of `n > 1` leaves splits at the
//! largest power of two strictly below `n`.

use smartchain_codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};
use smartchain_crypto::sha256;

/// 32-byte hash value.
pub type Hash = [u8; 32];

const LEAF_PREFIX: &[u8] = b"\x00";
const NODE_PREFIX: &[u8] = b"\x01";

/// Chunk size (bytes) used for snapshot state roots throughout the
/// workspace. One leaf per 256-byte chunk keeps proofs log-sized while a
/// tampered byte invalidates exactly one identifiable chunk.
pub const STATE_CHUNK: usize = 256;

/// Hashes a leaf with domain separation from interior nodes.
pub fn leaf_hash(data: &[u8]) -> Hash {
    sha256::digest_parts(&[LEAF_PREFIX, data])
}

/// Hashes an interior node.
pub fn node_hash(left: &Hash, right: &Hash) -> Hash {
    sha256::digest_parts(&[NODE_PREFIX, left, right])
}

/// Computes the Merkle root of a list of leaves.
///
/// The empty list hashes to `leaf_hash(b"")` so that every input has a
/// well-defined root. Odd levels promote the unpaired node unchanged
/// (Bitcoin-style duplication would enable CVE-2012-2459-class mutations).
pub fn root(leaves: &[Vec<u8>]) -> Hash {
    root_of_hashes(leaves.iter().map(|l| leaf_hash(l)).collect())
}

fn root_of_hashes(mut level: Vec<Hash>) -> Hash {
    if level.is_empty() {
        return leaf_hash(b"");
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(node_hash(&pair[0], &pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// A Merkle inclusion proof: the sibling hashes from leaf to root, with a
/// direction flag (`true` = sibling is on the right).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes bottom-up; the flag is true when the sibling sits to
    /// the right of the running hash.
    pub path: Vec<(Hash, bool)>,
}

impl Encode for Proof {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.index as u64).encode(out);
        let entries: Vec<(Hash, u8)> = self
            .path
            .iter()
            .map(|(h, right)| (*h, u8::from(*right)))
            .collect();
        encode_seq(&entries, out);
    }
    fn encoded_len(&self) -> usize {
        8 + 4 + self.path.len() * 33
    }
}

impl Decode for Proof {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let index = u64::decode(input)? as usize;
        let entries: Vec<(Hash, u8)> = decode_seq(input)?;
        let mut path = Vec::with_capacity(entries.len());
        for (h, flag) in entries {
            match flag {
                0 => path.push((h, false)),
                1 => path.push((h, true)),
                d => return Err(DecodeError::BadDiscriminant(d as u32)),
            }
        }
        Ok(Proof { index, path })
    }
}

/// Builds an inclusion proof for `leaves[index]`.
///
/// # Panics
///
/// Panics if `index >= leaves.len()`.
pub fn prove(leaves: &[Vec<u8>], index: usize) -> Proof {
    assert!(index < leaves.len(), "proof index out of range");
    let mut level: Vec<Hash> = leaves.iter().map(|l| leaf_hash(l)).collect();
    let mut idx = index;
    let mut path = Vec::new();
    while level.len() > 1 {
        let sibling = idx ^ 1;
        if sibling < level.len() {
            path.push((level[sibling], sibling > idx));
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(node_hash(&pair[0], &pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        idx /= 2;
    }
    Proof { index, path }
}

/// Verifies that `leaf_data` is included under `expected_root` at the proof's
/// position.
pub fn verify(expected_root: &Hash, leaf_data: &[u8], proof: &Proof) -> bool {
    let mut h = leaf_hash(leaf_data);
    for (sibling, sibling_right) in &proof.path {
        h = if *sibling_right {
            node_hash(&h, sibling)
        } else {
            node_hash(sibling, &h)
        };
    }
    &h == expected_root
}

/// An incrementally-built Merkle tree.
///
/// Appending a leaf is O(1) amortized: leaves accumulate into *peaks* — one
/// perfect subtree per set bit of the leaf count, merged binary-carry style
/// whenever two peaks reach the same height. [`MerkleTree::root`] bags the
/// peaks right-to-left, which reproduces exactly the promote-the-odd-node
/// root of a full [`root`] rebuild over the same leaves.
#[derive(Clone, Debug, Default)]
pub struct MerkleTree {
    /// `(height, hash)` peaks, heights strictly decreasing left to right.
    peaks: Vec<(u32, Hash)>,
    len: u64,
}

impl MerkleTree {
    /// An empty tree (root = `leaf_hash(b"")`, like [`root`] of no leaves).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of leaves appended so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree holds no leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one leaf (hashed with the leaf domain prefix).
    pub fn append(&mut self, leaf: &[u8]) {
        self.append_leaf_hash(leaf_hash(leaf));
    }

    /// Appends an already-hashed leaf.
    pub fn append_leaf_hash(&mut self, hash: Hash) {
        self.peaks.push((0, hash));
        while self.peaks.len() >= 2 {
            let (hb, b) = self.peaks[self.peaks.len() - 1];
            let (ha, a) = self.peaks[self.peaks.len() - 2];
            if ha != hb {
                break;
            }
            self.peaks.truncate(self.peaks.len() - 2);
            self.peaks.push((ha + 1, node_hash(&a, &b)));
        }
        self.len += 1;
    }

    /// Current root — identical to `root(&leaves_so_far)`.
    pub fn root(&self) -> Hash {
        match self.peaks.split_last() {
            None => leaf_hash(b""),
            Some(((_, last), rest)) => {
                let mut acc = *last;
                for (_, peak) in rest.iter().rev() {
                    acc = node_hash(peak, &acc);
                }
                acc
            }
        }
    }
}

/// Splits `data` into fixed-size chunks — the leaves of a snapshot
/// commitment. Empty data has zero chunks.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn chunk_leaves(data: &[u8], chunk_size: usize) -> Vec<Vec<u8>> {
    assert!(chunk_size > 0, "chunk size must be positive");
    data.chunks(chunk_size).map(<[u8]>::to_vec).collect()
}

/// Merkle root of `data` split into `chunk_size`-byte chunks.
pub fn chunked_root(data: &[u8], chunk_size: usize) -> Hash {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut tree = MerkleTree::new();
    for chunk in data.chunks(chunk_size) {
        tree.append(chunk);
    }
    tree.root()
}

/// Membership proof for chunk `index` of `data` under [`chunked_root`].
pub fn prove_chunk(data: &[u8], chunk_size: usize, index: usize) -> Proof {
    prove(&chunk_leaves(data, chunk_size), index)
}

/// A proof that a contiguous run of leaves `[start, end)` belongs to a tree
/// of `total` leaves: the subtree roots covering everything *outside* the
/// range, in recursion order over the RFC 6962 tree shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeProof {
    /// First proven leaf index.
    pub start: usize,
    /// One past the last proven leaf index.
    pub end: usize,
    /// Total number of leaves in the tree.
    pub total: usize,
    /// Subtree roots for the parts of the tree outside `[start, end)`.
    pub siblings: Vec<Hash>,
}

impl Encode for RangeProof {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.start as u64).encode(out);
        (self.end as u64).encode(out);
        (self.total as u64).encode(out);
        encode_seq(&self.siblings, out);
    }
    fn encoded_len(&self) -> usize {
        24 + 4 + self.siblings.len() * 32
    }
}

impl Decode for RangeProof {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(RangeProof {
            start: u64::decode(input)? as usize,
            end: u64::decode(input)? as usize,
            total: u64::decode(input)? as usize,
            siblings: decode_seq(input)?,
        })
    }
}

/// Largest power of two strictly below `n` — the RFC 6962 split point.
fn split_point(n: usize) -> usize {
    debug_assert!(n >= 2);
    1 << (usize::BITS - 1 - (n - 1).leading_zeros())
}

/// Root of the implicit subtree over `hashes[lo..hi]`.
fn sub_root(hashes: &[Hash], lo: usize, hi: usize) -> Hash {
    if hi - lo == 1 {
        return hashes[lo];
    }
    let mid = lo + split_point(hi - lo);
    node_hash(&sub_root(hashes, lo, mid), &sub_root(hashes, mid, hi))
}

fn collect_range_siblings(
    hashes: &[Hash],
    lo: usize,
    hi: usize,
    start: usize,
    end: usize,
    out: &mut Vec<Hash>,
) {
    if lo >= start && hi <= end {
        return; // fully inside the range: the verifier recomputes this part
    }
    if hi <= start || lo >= end {
        out.push(sub_root(hashes, lo, hi)); // fully outside: one subtree root
        return;
    }
    let mid = lo + split_point(hi - lo);
    collect_range_siblings(hashes, lo, mid, start, end, out);
    collect_range_siblings(hashes, mid, hi, start, end, out);
}

/// Builds a range proof for `leaves[start..end]`.
///
/// # Panics
///
/// Panics on an empty or out-of-range interval.
pub fn prove_range(leaves: &[Vec<u8>], start: usize, end: usize) -> RangeProof {
    assert!(start < end && end <= leaves.len(), "range out of bounds");
    let hashes: Vec<Hash> = leaves.iter().map(|l| leaf_hash(l)).collect();
    let mut siblings = Vec::new();
    collect_range_siblings(&hashes, 0, leaves.len(), start, end, &mut siblings);
    RangeProof {
        start,
        end,
        total: leaves.len(),
        siblings,
    }
}

fn reconstruct_range(
    range_hashes: &[Hash],
    lo: usize,
    hi: usize,
    start: usize,
    end: usize,
    siblings: &mut std::slice::Iter<'_, Hash>,
) -> Option<Hash> {
    if lo >= start && hi <= end {
        return Some(sub_root(range_hashes, lo - start, hi - start));
    }
    if hi <= start || lo >= end {
        return siblings.next().copied();
    }
    let mid = lo + split_point(hi - lo);
    let left = reconstruct_range(range_hashes, lo, mid, start, end, siblings)?;
    let right = reconstruct_range(range_hashes, mid, hi, start, end, siblings)?;
    Some(node_hash(&left, &right))
}

/// Verifies that `range_leaves` occupy positions `[proof.start, proof.end)`
/// of a `proof.total`-leaf tree with root `expected_root`.
pub fn verify_range(expected_root: &Hash, range_leaves: &[Vec<u8>], proof: &RangeProof) -> bool {
    if proof.start >= proof.end
        || proof.end > proof.total
        || range_leaves.len() != proof.end - proof.start
    {
        return false;
    }
    let hashes: Vec<Hash> = range_leaves.iter().map(|l| leaf_hash(l)).collect();
    let mut siblings = proof.siblings.iter();
    let Some(computed) = reconstruct_range(
        &hashes,
        0,
        proof.total,
        proof.start,
        proof.end,
        &mut siblings,
    ) else {
        return false;
    };
    siblings.next().is_none() && &computed == expected_root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(root(&[]), leaf_hash(b""));
        let one = leaves(1);
        assert_eq!(root(&one), leaf_hash(b"leaf-0"));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = leaves(8);
        let r = root(&base);
        for i in 0..8 {
            let mut tampered = base.clone();
            tampered[i].push(b'!');
            assert_ne!(root(&tampered), r, "leaf {i}");
        }
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..20usize {
            let ls = leaves(n);
            let r = root(&ls);
            for i in 0..n {
                let p = prove(&ls, i);
                assert!(verify(&r, &ls[i], &p), "n={n} i={i}");
                // Wrong leaf data must fail.
                assert!(!verify(&r, b"bogus", &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_from_other_index_fails() {
        let ls = leaves(8);
        let r = root(&ls);
        let p = prove(&ls, 3);
        assert!(!verify(&r, &ls[4], &p));
    }

    #[test]
    fn forged_and_truncated_proofs_rejected() {
        for n in [2usize, 5, 8, 13] {
            let ls = leaves(n);
            let r = root(&ls);
            let p = prove(&ls, 1);
            // Forged sibling hash.
            let mut forged = p.clone();
            forged.path[0].0[0] ^= 0xff;
            assert!(!verify(&r, &ls[1], &forged), "n={n}");
            // Flipped direction flag.
            let mut flipped = p.clone();
            flipped.path[0].1 = !flipped.path[0].1;
            assert!(!verify(&r, &ls[1], &flipped), "n={n}");
            // Truncated path (claims a shallower tree).
            let mut truncated = p.clone();
            truncated.path.pop();
            assert!(!verify(&r, &ls[1], &truncated), "n={n}");
            // Extended path (claims a deeper tree).
            let mut extended = p.clone();
            extended.path.push(([0xab; 32], true));
            assert!(!verify(&r, &ls[1], &extended), "n={n}");
        }
    }

    #[test]
    fn unbalanced_tree_no_duplication_mutation() {
        // With promote-the-odd-node trees, [a, b, c] and [a, b, c, c] must
        // have different roots (the classic duplication bug makes them equal).
        let three = leaves(3);
        let mut four = leaves(3);
        four.push(three[2].clone());
        assert_ne!(root(&three), root(&four));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prove_out_of_range_panics() {
        prove(&leaves(3), 3);
    }

    #[test]
    fn incremental_append_matches_full_rebuild() {
        let all = leaves(65);
        let mut tree = MerkleTree::new();
        assert_eq!(tree.root(), root(&[]));
        for n in 0..all.len() {
            tree.append(&all[n]);
            assert_eq!(tree.len(), n as u64 + 1);
            assert_eq!(tree.root(), root(&all[..=n]), "n={}", n + 1);
        }
    }

    #[test]
    fn chunked_root_equals_leaf_root() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        for chunk in [1usize, 7, 64, 256, 1000, 2000] {
            assert_eq!(
                chunked_root(&data, chunk),
                root(&chunk_leaves(&data, chunk)),
                "chunk={chunk}"
            );
        }
        assert_eq!(chunked_root(&[], 256), root(&[]));
    }

    #[test]
    fn chunk_proofs_verify_and_reject_tampering() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let r = chunked_root(&data, 64);
        let chunks = chunk_leaves(&data, 64);
        for (i, chunk) in chunks.iter().enumerate() {
            let p = prove_chunk(&data, 64, i);
            assert!(verify(&r, chunk, &p), "chunk {i}");
            let mut tampered = chunk.clone();
            tampered[0] ^= 1;
            assert!(!verify(&r, &tampered, &p), "tampered chunk {i}");
        }
    }

    #[test]
    fn range_proofs_verify_for_all_ranges() {
        for n in 1..=12usize {
            let ls = leaves(n);
            let r = root(&ls);
            for start in 0..n {
                for end in start + 1..=n {
                    let p = prove_range(&ls, start, end);
                    assert!(
                        verify_range(&r, &ls[start..end], &p),
                        "n={n} [{start},{end})"
                    );
                    // A shifted range with the same proof must fail.
                    if end < n {
                        assert!(
                            !verify_range(&r, &ls[start + 1..end + 1], &p),
                            "n={n} [{start},{end}) shifted"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn range_proof_rejects_tampering() {
        let ls = leaves(9);
        let r = root(&ls);
        let p = prove_range(&ls, 2, 6);
        let mut tampered: Vec<Vec<u8>> = ls[2..6].to_vec();
        tampered[1][0] ^= 1;
        assert!(!verify_range(&r, &tampered, &p));
        let mut short = p.clone();
        short.siblings.pop();
        assert!(!verify_range(&r, &ls[2..6], &short));
        let mut long = p.clone();
        long.siblings.push([9; 32]);
        assert!(!verify_range(&r, &ls[2..6], &long));
    }

    #[test]
    fn proof_codec_roundtrip() {
        let ls = leaves(11);
        let p = prove(&ls, 5);
        let bytes = smartchain_codec::to_bytes(&p);
        assert_eq!(bytes.len(), p.encoded_len());
        assert_eq!(smartchain_codec::from_bytes::<Proof>(&bytes).unwrap(), p);

        let rp = prove_range(&ls, 3, 8);
        let bytes = smartchain_codec::to_bytes(&rp);
        assert_eq!(bytes.len(), rp.encoded_len());
        assert_eq!(
            smartchain_codec::from_bytes::<RangeProof>(&bytes).unwrap(),
            rp
        );
    }
}
