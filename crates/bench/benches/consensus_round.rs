//! Micro-benchmark of a full VP-Consensus round (4 replicas, in-process
//! message pumping): the pure protocol cost without any network/disk model.

use smartchain_bench::micro::bench;
use smartchain_consensus::instance::Instance;
use smartchain_consensus::messages::{ConsensusMsg, Output};
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::{Backend, SecretKey};

fn run_round(n: usize, value: &[u8]) -> usize {
    let secrets: Vec<SecretKey> = (0..n)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 60; 32]))
        .collect();
    let view = View {
        id: 0,
        members: secrets.iter().map(|s| s.public_key()).collect(),
    };
    let mut instances: Vec<Instance> = (0..n)
        .map(|i| Instance::new(1, i, view.clone(), secrets[i].clone(), 0, 0))
        .collect();
    let mut queue: Vec<(ReplicaId, ReplicaId, ConsensusMsg)> = Vec::new();
    for out in instances[0].propose(value.to_vec()) {
        if let Output::Broadcast(m) = out {
            for to in 0..n {
                queue.push((0, to, m.clone()));
            }
        }
    }
    let mut decided = 0usize;
    while let Some((from, to, msg)) = queue.pop() {
        let (outs, decision) = instances[to].on_message(from, msg);
        if decision.is_some() {
            decided += 1;
        }
        for out in outs {
            match out {
                Output::Broadcast(m) => {
                    for peer in 0..n {
                        if peer != to {
                            queue.push((to, peer, m.clone()));
                        }
                    }
                }
                Output::Send(peer, m) => queue.push((to, peer, m)),
            }
        }
    }
    decided
}

fn main() {
    for (n, batch_bytes) in [
        (4usize, 512usize),
        (4, 160_000),
        (7, 160_000),
        (10, 160_000),
    ] {
        let value = vec![0x11u8; batch_bytes];
        bench(&format!("consensus_round/n{n}/{batch_bytes}B"), || {
            let decided = run_round(n, &value);
            assert!(decided >= n - (n - 1) / 3);
        });
    }
}
