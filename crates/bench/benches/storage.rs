//! Micro-benchmarks of the storage substrate — in particular the
//! group-commit coalescing that underlies the Dura-SMaRt durability layer
//! (one fsync covering many batches, paper §II-C2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smartchain_storage::log::FileLog;
use smartchain_storage::mem::MemLog;
use smartchain_storage::wal::BatchingWriter;
use smartchain_storage::{RecordLog, SyncPolicy};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("smartchain-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_append_512B");
    let record = vec![0xaau8; 512];
    group.throughput(Throughput::Bytes(512));
    group.bench_function("mem", |b| {
        let mut log = MemLog::new();
        b.iter(|| log.append(&record).expect("append"));
    });
    group.bench_function("file_async", |b| {
        let path = tmp("bench-async.log");
        let _ = std::fs::remove_file(&path);
        let mut log = FileLog::open(&path, SyncPolicy::Async).expect("open");
        b.iter(|| log.append(&record).expect("append"));
    });
    group.sample_size(20);
    group.bench_function("file_sync", |b| {
        let path = tmp("bench-sync.log");
        let _ = std::fs::remove_file(&path);
        let mut log = FileLog::open(&path, SyncPolicy::Sync).expect("open");
        b.iter(|| log.append(&record).expect("append"));
    });
    group.finish();
}

fn bench_group_commit(c: &mut Criterion) {
    // The Dura-SMaRt effect: N records per flush vs one flush per record.
    let mut group = c.benchmark_group("group_commit");
    group.sample_size(20);
    for batch in [1usize, 10, 100] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::new("records_per_flush", batch),
            &batch,
            |b, &batch| {
                let path = tmp(&format!("bench-gc-{batch}.log"));
                let _ = std::fs::remove_file(&path);
                let log = FileLog::open(&path, SyncPolicy::Async).expect("open");
                let mut writer = BatchingWriter::new(log);
                let record = vec![0x55u8; 512];
                b.iter(|| {
                    for _ in 0..batch {
                        writer.submit(record.clone());
                    }
                    writer.flush().expect("flush");
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_append, bench_group_commit);
criterion_main!(benches);
