//! Micro-benchmarks of the storage substrate — in particular the
//! group-commit coalescing that underlies the Dura-SMaRt durability layer
//! (one fsync covering many batches, paper §II-C2).

use smartchain_bench::micro::bench;
use smartchain_storage::log::FileLog;
use smartchain_storage::mem::MemLog;
use smartchain_storage::wal::BatchingWriter;
use smartchain_storage::{RecordLog, SyncPolicy};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("smartchain-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn main() {
    let record = vec![0xaau8; 512];

    let mut log = MemLog::new();
    bench("log_append_512B/mem", || {
        log.append(&record).expect("append");
    });

    let path = tmp("bench-async.log");
    let _ = std::fs::remove_file(&path);
    let mut log = FileLog::open(&path, SyncPolicy::Async).expect("open");
    bench("log_append_512B/file_async", || {
        log.append(&record).expect("append");
    });

    let path = tmp("bench-sync.log");
    let _ = std::fs::remove_file(&path);
    let mut log = FileLog::open(&path, SyncPolicy::Sync).expect("open");
    bench("log_append_512B/file_sync", || {
        log.append(&record).expect("append");
    });

    // The Dura-SMaRt effect: N records per flush vs one flush per record.
    for batch in [1usize, 10, 100] {
        let path = tmp(&format!("bench-gc-{batch}.log"));
        let _ = std::fs::remove_file(&path);
        let log = FileLog::open(&path, SyncPolicy::Async).expect("open");
        let mut writer = BatchingWriter::new(log);
        let record = vec![0x55u8; 512];
        bench(&format!("group_commit/records_per_flush/{batch}"), || {
            for _ in 0..batch {
                writer.submit(record.clone());
            }
            writer.flush().expect("flush");
        });
    }
}
