//! Micro-benchmarks of the cryptographic substrate: hashing, both signature
//! backends, Merkle trees, and sequential-vs-pooled batch verification (the
//! mechanism behind the paper's "parallel signature verification" column).

use smartchain_bench::micro::{bench, black_box};
use smartchain_crypto::keys::{Backend, PublicKey, SecretKey, Signature};
use smartchain_crypto::pool::{verify_batch_sequential, VerifyPool};
use smartchain_crypto::{sha256, sha512};
use smartchain_merkle as merkle;

fn main() {
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        bench(&format!("sha256/{size}"), || {
            black_box(sha256::digest(&data));
        });
        bench(&format!("sha512/{size}"), || {
            black_box(sha512::digest(&data));
        });
    }

    let msg = vec![0x42u8; 310]; // a SPEND-sized payload
    for backend in [Backend::Ed25519, Backend::Sim] {
        let key = SecretKey::from_seed(backend, &[7u8; 32]);
        let sig = key.sign(&msg);
        let pk = key.public_key();
        bench(&format!("sign/{backend:?}"), || {
            black_box(key.sign(&msg));
        });
        bench(&format!("verify/{backend:?}"), || {
            black_box(pk.verify(&msg, &sig));
        });
    }

    let key = SecretKey::from_seed(Backend::Ed25519, &[9u8; 32]);
    let batch: Vec<(PublicKey, Vec<u8>, Signature)> = (0..512u32)
        .map(|i| {
            let msg = i.to_le_bytes().to_vec();
            let sig = key.sign(&msg);
            (key.public_key(), msg, sig)
        })
        .collect();
    bench("verify_batch_512/sequential", || {
        black_box(verify_batch_sequential(&batch));
    });
    let pool = VerifyPool::new(std::thread::available_parallelism().map_or(4, |n| n.get()));
    bench("verify_batch_512/pooled", || {
        black_box(pool.verify_batch(&batch));
    });

    for n in [64usize, 512] {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 380]).collect();
        bench(&format!("merkle_root/{n}"), || {
            black_box(merkle::root(&leaves));
        });
    }
}
