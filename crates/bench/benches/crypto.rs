//! Micro-benchmarks of the cryptographic substrate: hashing, both signature
//! backends, Merkle trees, and sequential-vs-pooled batch verification (the
//! mechanism behind the paper's "parallel signature verification" column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smartchain_crypto::keys::{Backend, PublicKey, SecretKey, Signature};
use smartchain_crypto::pool::{verify_batch_sequential, VerifyPool};
use smartchain_crypto::{merkle, sha256, sha512};

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha2");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256::digest(d))
        });
        group.bench_with_input(BenchmarkId::new("sha512", size), &data, |b, d| {
            b.iter(|| sha512::digest(d))
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("signatures");
    let msg = vec![0x42u8; 310]; // a SPEND-sized payload
    for backend in [Backend::Ed25519, Backend::Sim] {
        let key = SecretKey::from_seed(backend, &[7u8; 32]);
        let sig = key.sign(&msg);
        let pk = key.public_key();
        group.bench_function(BenchmarkId::new("sign", format!("{backend:?}")), |b| {
            b.iter(|| key.sign(&msg))
        });
        group.bench_function(BenchmarkId::new("verify", format!("{backend:?}")), |b| {
            b.iter(|| pk.verify(&msg, &sig))
        });
    }
    group.finish();
}

fn bench_verification_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_batch_512");
    let key = SecretKey::from_seed(Backend::Ed25519, &[9u8; 32]);
    let batch: Vec<(PublicKey, Vec<u8>, Signature)> = (0..512u32)
        .map(|i| {
            let msg = i.to_le_bytes().to_vec();
            let sig = key.sign(&msg);
            (key.public_key(), msg, sig)
        })
        .collect();
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| verify_batch_sequential(&batch))
    });
    let pool = VerifyPool::new(std::thread::available_parallelism().map_or(4, |n| n.get()));
    group.bench_function("pooled", |b| b.iter(|| pool.verify_batch(&batch)));
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for n in [64usize, 512] {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 380]).collect();
        group.bench_with_input(BenchmarkId::new("root", n), &leaves, |b, l| {
            b.iter(|| merkle::root(l))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hashes,
    bench_signatures,
    bench_verification_pool,
    bench_merkle
);
criterion_main!(benches);
