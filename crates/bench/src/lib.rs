//! Experiment harness for the paper's evaluation (§VI).
//!
//! One binary per table/figure:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — SMaRtCoin on plain BFT-SMaRt (sig × storage strategies) |
//! | `fig6`   | Fig. 6 — SMARTCHAIN throughput across consortium sizes & persistence |
//! | `table2` | Table II — SMARTCHAIN vs Tendermint vs Fabric |
//! | `fig7`   | Fig. 7 — throughput timeline with join/crash/recover/checkpoint/leave |
//! | `fig8`   | Fig. 8 — replica update time vs chain length & checkpoint period |
//!
//! Run with `cargo run --release -p smartchain-bench --bin <target>`.
//! All runs are deterministic (fixed seeds) on the calibrated
//! [`HwSpec::paper_testbed`] hardware model; see EXPERIMENTS.md for the
//! calibration rationale and paper-vs-measured comparison.

pub mod micro;

use smartchain_baselines::fabric::{FabConfig, FabMsg, FabricNode};
use smartchain_baselines::tendermint::{TendermintNode, TmConfig, TmMsg};
use smartchain_coin::workload::{authorized_minters, CoinFactory};
use smartchain_coin::SmartCoinApp;
use smartchain_core::harness::ChainClusterBuilder;
use smartchain_core::node::{NodeConfig, Persistence, SigMode, Variant};
use smartchain_sim::hw::HwSpec;
use smartchain_sim::metrics::trimmed_mean;
use smartchain_sim::{Actor, Cluster, NodeId, SECOND};
use smartchain_smr::actor::{client_id, AppLedger, DurabilityMode, ReplicaActor, ReplicaConfig};
use smartchain_smr::client::{ClientActor, ClientConfig};
use smartchain_smr::ordering::{OrderingConfig, SmrMsg};

/// Result of one throughput run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Trimmed-mean throughput (txs/sec) using the paper's methodology.
    pub throughput: f64,
    /// Standard deviation of the kept samples.
    pub std_dev: f64,
    /// Mean client latency in seconds.
    pub latency: f64,
    /// Latency standard deviation in seconds.
    pub latency_std: f64,
    /// Total transactions committed.
    pub total: u64,
}

/// Shared experiment scale (kept below the paper's 1000 requests/client so
/// debug runs stay fast; `--release` sweeps can raise it).
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Client actors (the paper spreads clients over 4 machines).
    pub client_actors: usize,
    /// Logical clients per actor (paper total: 2400).
    pub logical_per_actor: u32,
    /// Requests per logical client (MINT phase + SPEND phase).
    pub requests_per_client: u64,
    /// Virtual-time horizon per run.
    pub horizon_s: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            client_actors: 4,
            logical_per_actor: 600,
            requests_per_client: 60,
            horizon_s: 120,
        }
    }
}

impl Scale {
    /// A smaller scale for quick smoke runs and tests.
    pub fn smoke() -> Scale {
        Scale {
            client_actors: 2,
            logical_per_actor: 100,
            requests_per_client: 20,
            horizon_s: 60,
        }
    }

    /// Total logical clients.
    pub fn clients(&self) -> u64 {
        self.client_actors as u64 * self.logical_per_actor as u64
    }

    /// Total requests the workload will issue.
    pub fn total_requests(&self) -> u64 {
        self.clients() * self.requests_per_client
    }
}

/// All logical client ids a scale will use (for minter authorization).
pub fn workload_clients(replicas: usize, scale: Scale) -> Vec<u64> {
    let mut out = Vec::new();
    for a in 0..scale.client_actors {
        let node = replicas + a;
        for slot in 0..scale.logical_per_actor {
            out.push(client_id(node, slot));
        }
    }
    out
}

/// Runs the Table I configuration: SMaRtCoin hosted directly on the SMR
/// stack (`ReplicaActor`) with the given signature / app-ledger / durability
/// policies.
pub fn run_smr_coin(
    n: usize,
    sig_mode: smartchain_smr::actor::SigMode,
    app_ledger: AppLedger,
    durability: DurabilityMode,
    scale: Scale,
    seed: u64,
) -> RunResult {
    use smartchain_consensus::View;
    use smartchain_crypto::keys::{Backend, SecretKey};

    let secrets: Vec<SecretKey> = (0..n)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 90; 32]))
        .collect();
    let view = View {
        id: 0,
        members: secrets.iter().map(|s| s.public_key()).collect(),
    };
    let peers: Vec<NodeId> = (0..n).collect();
    let clients = workload_clients(n, scale);
    let minters = authorized_minters(clients.iter().copied());
    let config = ReplicaConfig {
        sig_mode,
        app_ledger,
        durability,
        ordering: OrderingConfig {
            max_batch: 512,
            ..OrderingConfig::default()
        },
        execute_ns: 8_000,
        // The naive app-level ledger serializes/link-hashes every
        // transaction inside the state machine (Java object serialization in
        // the paper's prototype).
        app_ledger_ns: 175_000,
        reply_size: 380,
        ..ReplicaConfig::default()
    };
    let mut actors: Vec<Box<dyn Actor<SmrMsg>>> = Vec::new();
    #[allow(clippy::needless_range_loop)] // i is the replica id, not just an index
    for i in 0..n {
        actors.push(Box::new(ReplicaActor::new(
            i,
            view.clone(),
            secrets[i].clone(),
            SmartCoinApp::from_genesis_data(&minters),
            config,
            peers.clone(),
        )));
    }
    let f = (n - 1) / 3;
    let mut client_nodes = Vec::new();
    for a in 0..scale.client_actors {
        let node = n + a;
        client_nodes.push(node);
        actors.push(Box::new(ClientActor::<SmrMsg>::new(
            node,
            peers.clone(),
            f,
            ClientConfig {
                logical_clients: scale.logical_per_actor,
                requests_per_client: Some(scale.requests_per_client),
                ..ClientConfig::default()
            },
            Box::new(CoinFactory::new(scale.requests_per_client / 2)),
        )));
    }
    let mut cluster = Cluster::new(actors, HwSpec::paper_testbed(), seed);
    cluster.run_until(scale.horizon_s * SECOND);
    let replica = cluster
        .actor(0)
        .as_any()
        .downcast_ref::<ReplicaActor<SmartCoinApp>>()
        .expect("replica actor");
    let (throughput, std_dev) = replica.meter().trimmed_mean();
    let (latency, latency_std, _) = client_latency::<SmrMsg>(&cluster, &client_nodes);
    RunResult {
        throughput,
        std_dev,
        latency,
        latency_std,
        total: replica.meter().total(),
    }
}

fn client_latency<M: 'static>(cluster: &Cluster<M>, client_nodes: &[NodeId]) -> (f64, f64, u64) {
    let mut means = Vec::new();
    let mut stds = Vec::new();
    let mut total = 0u64;
    for &c in client_nodes {
        let any = cluster.actor(c).as_any();
        // Clients are ClientActor<M> for the experiment's message type.
        if let Some(client) = any.downcast_ref::<ClientActor<SmrMsg>>() {
            means.push(client.latency().mean_seconds());
            stds.push(client.latency().std_dev_seconds());
            total += client.completed();
        } else if let Some(client) =
            any.downcast_ref::<ClientActor<smartchain_core::node::ChainMsg>>()
        {
            means.push(client.latency().mean_seconds());
            stds.push(client.latency().std_dev_seconds());
            total += client.completed();
        } else if let Some(client) = any.downcast_ref::<ClientActor<TmMsg>>() {
            means.push(client.latency().mean_seconds());
            stds.push(client.latency().std_dev_seconds());
            total += client.completed();
        } else if let Some(client) = any.downcast_ref::<ClientActor<FabMsg>>() {
            means.push(client.latency().mean_seconds());
            stds.push(client.latency().std_dev_seconds());
            total += client.completed();
        }
    }
    let mean = if means.is_empty() {
        0.0
    } else {
        means.iter().sum::<f64>() / means.len() as f64
    };
    let std = if stds.is_empty() {
        0.0
    } else {
        stds.iter().sum::<f64>() / stds.len() as f64
    };
    (mean, std, total)
}

/// Runs one SMARTCHAIN configuration (Fig. 6 / Table II) with the coin app.
pub fn run_smartchain(
    n: usize,
    variant: Variant,
    persistence: Persistence,
    signatures: bool,
    scale: Scale,
    seed: u64,
) -> RunResult {
    let clients = workload_clients(n, scale);
    let minters = authorized_minters(clients.iter().copied());
    let config = NodeConfig {
        variant,
        persistence,
        sig_mode: if signatures {
            SigMode::Parallel
        } else {
            SigMode::None
        },
        ordering: OrderingConfig {
            max_batch: 512,
            ..OrderingConfig::default()
        },
        execute_ns: 8_000,
        reply_size: 380,
        ..NodeConfig::default()
    };
    let mints = scale.requests_per_client / 2;
    let mut cluster = ChainClusterBuilder::new(n, SmartCoinApp::from_genesis_data)
        .node_config(config)
        .hw(HwSpec::paper_testbed())
        .seed(seed)
        .app_data(minters)
        .clients(
            scale.client_actors,
            scale.logical_per_actor,
            Some(scale.requests_per_client),
        )
        .client_factory(move || Box::new(CoinFactory::new(mints)))
        .build();
    cluster.run_until(scale.horizon_s * SECOND);
    let node = cluster.node::<SmartCoinApp>(0);
    let (throughput, std_dev) = node.meter().trimmed_mean();
    let total = node.meter().total();
    let mut lat_mean = 0.0;
    let mut lat_std = 0.0;
    let mut count = 0usize;
    for &c in cluster.client_nodes() {
        let client = cluster.client(c);
        lat_mean += client.latency().mean_seconds();
        lat_std += client.latency().std_dev_seconds();
        count += 1;
    }
    if count > 0 {
        lat_mean /= count as f64;
        lat_std /= count as f64;
    }
    RunResult {
        throughput,
        std_dev,
        latency: lat_mean,
        latency_std: lat_std,
        total,
    }
}

/// Runs the Tendermint model (Table II row).
pub fn run_tendermint(n: usize, scale: Scale, seed: u64) -> RunResult {
    use smartchain_smr::app::Application;
    let clients = workload_clients(n, scale);
    let minters = authorized_minters(clients.iter().copied());
    let peers: Vec<NodeId> = (0..n).collect();
    let config = TmConfig {
        max_block: 4000,
        ..TmConfig::default()
    };
    let mut actors: Vec<Box<dyn Actor<TmMsg>>> = Vec::new();
    for i in 0..n {
        let mut app = SmartCoinApp::from_genesis_data(&minters);
        app.reset();
        actors.push(Box::new(TendermintNode::new(i, peers.clone(), app, config)));
    }
    let mut client_nodes = Vec::new();
    for a in 0..scale.client_actors {
        let node = n + a;
        client_nodes.push(node);
        // Each Tendermint client talks to one (its local) node.
        actors.push(Box::new(ClientActor::<TmMsg>::new(
            node,
            vec![a % n],
            0,
            ClientConfig {
                logical_clients: scale.logical_per_actor,
                requests_per_client: Some(scale.requests_per_client),
                ..ClientConfig::default()
            },
            Box::new(CoinFactory::new(scale.requests_per_client / 2)),
        )));
    }
    let mut cluster = Cluster::new(actors, HwSpec::paper_testbed(), seed);
    cluster.run_until(scale.horizon_s * SECOND);
    let node = cluster
        .actor(0)
        .as_any()
        .downcast_ref::<TendermintNode<SmartCoinApp>>()
        .expect("tendermint node");
    let (throughput, std_dev) = trimmed_mean(node.meter().samples());
    let total = node.meter().total();
    let (latency, latency_std, _) = client_latency::<TmMsg>(&cluster, &client_nodes);
    RunResult {
        throughput,
        std_dev,
        latency,
        latency_std,
        total,
    }
}

/// Runs the Fabric model (Table II row). Fabric's server-side ceiling is far
/// below the full client population's closed-loop demand, so the effective
/// concurrency is reduced (see EXPERIMENTS.md).
pub fn run_fabric(n: usize, scale: Scale, seed: u64) -> RunResult {
    let clients = workload_clients(n, scale);
    let minters = authorized_minters(clients.iter().copied());
    let peers: Vec<NodeId> = (0..n).collect();
    let config = FabConfig::default();
    let mut actors: Vec<Box<dyn Actor<FabMsg>>> = Vec::new();
    for i in 0..n {
        actors.push(Box::new(FabricNode::new(
            i,
            peers.clone(),
            SmartCoinApp::from_genesis_data(&minters),
            config,
        )));
    }
    let mut client_nodes = Vec::new();
    for a in 0..scale.client_actors {
        let node = n + a;
        client_nodes.push(node);
        actors.push(Box::new(ClientActor::<FabMsg>::new(
            node,
            vec![0], // all transactions go through the gateway peer
            0,
            ClientConfig {
                logical_clients: scale.logical_per_actor / 4, // 600 of 2400
                requests_per_client: Some(scale.requests_per_client),
                ..ClientConfig::default()
            },
            Box::new(CoinFactory::new(scale.requests_per_client / 2)),
        )));
    }
    let mut cluster = Cluster::new(actors, HwSpec::paper_testbed(), seed);
    cluster.run_until(scale.horizon_s * SECOND);
    let node = cluster
        .actor(1)
        .as_any()
        .downcast_ref::<FabricNode<SmartCoinApp>>()
        .expect("fabric node");
    let (throughput, std_dev) = trimmed_mean(node.meter().samples());
    let total = node.meter().total();
    let (latency, latency_std, _) = client_latency::<FabMsg>(&cluster, &client_nodes);
    RunResult {
        throughput,
        std_dev,
        latency,
        latency_std,
        total,
    }
}

/// Formats a throughput cell like the paper's tables.
pub fn fmt_tput(r: &RunResult) -> String {
    format!("{:>7.0} ± {:>4.0}", r.throughput, r.std_dev)
}

/// Formats a latency cell like Table II.
pub fn fmt_latency(r: &RunResult) -> String {
    format!("{:.3} ± {:.3}", r.latency, r.latency_std)
}
