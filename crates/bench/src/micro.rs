//! Minimal micro-benchmark harness (the workspace builds without external
//! crates, so criterion is out). Wall-clock timing with a measured-iteration
//! loop and median-of-samples reporting; good enough to spot order-of-magnitude
//! regressions in the hot paths the `benches/` targets cover.
//!
//! Also hosts the deterministic (virtual-time) α-pipeline scenario used by
//! the `bench_check` CI gate: delivered-batches/virtual-second at α = 1 vs
//! α = 4 under the GroupCommit rung, where overlapping ORDER of instance
//! `i+1` with PERSIST of instance `i` is the whole win.

use smartchain_consensus::View;
use smartchain_core::harness::ChainClusterBuilder;
use smartchain_core::node::{NodeConfig, Persistence, SigMode, Variant, VerifyConfig};
use smartchain_crypto::keys::{Backend, SecretKey};
use smartchain_sim::hw::HwSpec;
use smartchain_sim::{MILLI, SECOND};
use smartchain_smr::app::{Application, CounterApp};
use smartchain_smr::client::CounterFactory;
use smartchain_smr::durability::{ckpt_sign_payload, CheckpointCert, DurableApp};
use smartchain_smr::ordering::{AlphaBounds, OrderingConfig, OrderingStats};
use smartchain_smr::runtime::{LocalCluster, RuntimeConfig, TcpCluster};
use smartchain_smr::transport::{TcpClientPool, TransportStats};
use smartchain_smr::types::Request;
use smartchain_storage::{SegmentConfig, SyncPolicy};
use std::time::{Duration, Instant};

/// Outcome of one α-pipeline scenario run. Virtual-time measurement: the
/// numbers are bit-for-bit reproducible across machines.
#[derive(Clone, Copy, Debug)]
pub struct AlphaThroughput {
    /// Pipeline width the run used.
    pub alpha: u64,
    /// Blocks delivered by every replica (minimum across the cluster).
    pub blocks: u64,
    /// Virtual seconds simulated.
    pub virtual_secs: u64,
    /// Delivered batches per virtual second.
    pub batches_per_vsec: f64,
}

/// Runs the α-pipeline scenario: 4 replicas under the GroupCommit rung
/// (`Persistence::Sync`), a closed-loop client fleet, fixed seed, on a
/// latency-dominated network (paper-testbed disk and CPU, 2.5 ms one-way
/// propagation — a metro/WAN deployment of the same machines).
///
/// The regime matters: on the 120 µs LAN the pipeline is fsync-bound even
/// at α = 1, because ORDER already overlaps PERSIST through the delivery
/// queue. What α = 1 *cannot* hide is the consensus round latency itself —
/// instance `i+1` is only proposed after `i` decides, so block rate is
/// capped at 1/round. With propagation ≫ fsync that cap binds, and α > 1
/// lifts it by keeping α instances in flight (HotStuff-style chaining).
pub fn alpha_pipeline_throughput(alpha: u64, virtual_secs: u64) -> AlphaThroughput {
    let mut hw = HwSpec::paper_testbed();
    hw.nic.propagation_ns = 2_500_000; // 2.5 ms one-way
    let config = NodeConfig {
        variant: Variant::Weak,
        persistence: Persistence::Sync,
        ordering: OrderingConfig {
            max_batch: 16,
            alpha,
            ..OrderingConfig::default()
        },
        progress_timeout: 800 * MILLI,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .hw(hw)
        .seed(20_260_730)
        .clients(4, 32, None)
        .build();
    cluster.run_until(virtual_secs * SECOND);
    let blocks = (0..4)
        .map(|r| cluster.node::<CounterApp>(r).height().unwrap_or(0))
        .min()
        .unwrap_or(0);
    AlphaThroughput {
        alpha,
        blocks,
        virtual_secs,
        batches_per_vsec: blocks as f64 / virtual_secs as f64,
    }
}

/// Loss profile of one loss-grid cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossProfile {
    /// No injected loss.
    Clean,
    /// Uniform 5% frame drops for the whole run — the seed-regression
    /// scenario's loss model.
    Drop5,
    /// Bursty loss: 1 virtual second at 80% drops, then 1 s clean,
    /// repeating — the regime where a fixed window keeps paying view-change
    /// tax during bursts it can't see coming.
    Bursty,
}

impl LossProfile {
    /// Short identifier used in pin names and printed rows.
    pub fn key(self) -> &'static str {
        match self {
            LossProfile::Clean => "clean",
            LossProfile::Drop5 => "drop5",
            LossProfile::Bursty => "bursty",
        }
    }
}

/// Window mode of one loss-grid cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlphaMode {
    /// Fixed α = 1 (the seed's strictly sequential core).
    Fixed1,
    /// Fixed α = 4.
    Fixed4,
    /// AIMD window over 1..=8 with per-instance repair.
    Adaptive,
}

impl AlphaMode {
    /// Short identifier used in pin names and printed rows.
    pub fn key(self) -> &'static str {
        match self {
            AlphaMode::Fixed1 => "alpha1",
            AlphaMode::Fixed4 => "alpha4",
            AlphaMode::Adaptive => "adaptive",
        }
    }

    fn ordering(self, max_batch: usize) -> OrderingConfig {
        match self {
            AlphaMode::Fixed1 => OrderingConfig {
                max_batch,
                alpha: 1,
                ..OrderingConfig::default()
            },
            AlphaMode::Fixed4 => OrderingConfig {
                max_batch,
                alpha: 4,
                ..OrderingConfig::default()
            },
            AlphaMode::Adaptive => OrderingConfig {
                max_batch,
                alpha: 1,
                alpha_adaptive: Some(AlphaBounds { min: 1, max: 8 }),
                ..OrderingConfig::default()
            },
        }
    }
}

/// Outcome of one loss-grid cell (virtual time, deterministic).
#[derive(Clone, Debug)]
pub struct LossGridCell {
    /// The loss profile the cell ran under.
    pub profile: LossProfile,
    /// The window mode the cell ran with.
    pub mode: AlphaMode,
    /// Client requests completed cluster-wide.
    pub completed: u64,
    /// Per-replica repair/adaptation counters.
    pub stats: Vec<OrderingStats>,
}

impl LossGridCell {
    /// Sum of regency changes across the cluster.
    pub fn regency_changes(&self) -> u64 {
        self.stats.iter().map(|s| s.regency_changes).sum()
    }

    /// Sum of repair fetches sent across the cluster.
    pub fn fetches_sent(&self) -> u64 {
        self.stats.iter().map(|s| s.fetches_sent).sum()
    }
}

/// Runs one cell of the loss grid gated in `bench_check`: the pinned
/// seed-regression scenario (4 replicas, max_batch 8, 200 ms progress
/// timeout, seed 7, 4 closed-loop clients × 30 requests, 120 virtual
/// seconds) under `profile` × `mode`. The `Drop5` × `Fixed1`/`Fixed4`
/// cells reproduce the seed pins (46 and 49 completed) bit-for-bit — the
/// grid shares one scenario so adaptive α is measured against exactly the
/// numbers the pins already freeze.
pub fn loss_grid_cell(profile: LossProfile, mode: AlphaMode) -> LossGridCell {
    let config = NodeConfig {
        ordering: mode.ordering(8),
        progress_timeout: 200 * MILLI,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .seed(7)
        .clients(1, 4, Some(30))
        .build();
    match profile {
        LossProfile::Clean => {
            cluster.run_until(120 * SECOND);
        }
        LossProfile::Drop5 => {
            cluster.sim().set_drop_probability(0.05);
            cluster.run_until(120 * SECOND);
        }
        LossProfile::Bursty => {
            // 2 s cycles: 1 s at 80% drops, 1 s clean. Deterministic —
            // the drop schedule is a pure function of virtual time.
            let mut t = 0u64;
            while t < 120_000 {
                cluster.sim().set_drop_probability(0.8);
                t += 1_000;
                cluster.run_until(t * MILLI);
                cluster.sim().set_drop_probability(0.0);
                t += 1_000;
                cluster.run_until(t * MILLI);
            }
            cluster.sim().set_drop_probability(0.0);
        }
    }
    let completed = cluster.total_completed();
    let stats = (0..4)
        .map(|r| {
            cluster
                .node::<CounterApp>(r)
                .ordering_stats()
                .unwrap_or_default()
        })
        .collect();
    LossGridCell {
        profile,
        mode,
        completed,
        stats,
    }
}

/// Outcome of the hash-once counting scenario (deterministic).
#[derive(Clone, Copy, Debug)]
pub struct HashOnce {
    /// Consensus instances the cluster decided.
    pub decisions: u64,
    /// SHA-256 value digests actually computed, cluster-wide, during the
    /// run (from the process-global [`hashes_computed`] counter).
    ///
    /// [`hashes_computed`]: smartchain_crypto::value::hashes_computed
    pub digests: u64,
}

impl HashOnce {
    /// Digests per decided value — ≈ 1.0 on the memoized hot path (each
    /// replica used to hash every PROPOSE it validated, ~n per decision).
    pub fn hashes_per_decision(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.digests as f64 / self.decisions as f64
        }
    }
}

/// Counts digest work on the ordering hot path: a 4-replica core-level
/// pump at α = 4 decides eight single-request batches over a clean FIFO
/// network and reads the process-global digest counter around the run.
/// Decided values travel as shared, hash-memoized [`ValueBytes`] handles,
/// so PROPOSE hashing, WRITE/ACCEPT checks, proof validation, and delivery
/// on *all four* replicas cost one digest per decided value total.
///
/// Caller must not run concurrent digest work (the counter is global);
/// `bench_check` is single-threaded, so sequencing is free there.
///
/// [`ValueBytes`]: smartchain_crypto::ValueBytes
pub fn hash_once_scenario() -> HashOnce {
    use smartchain_smr::ordering::{CoreOutput, OrderingCore, SmrMsg};
    let n = 4usize;
    let secrets: Vec<SecretKey> = (0..n)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 70; 32]))
        .collect();
    let view = View {
        id: 0,
        members: secrets.iter().map(|s| s.public_key()).collect(),
    };
    let config = OrderingConfig {
        max_batch: 1,
        alpha: 4,
        ..OrderingConfig::default()
    };
    let mut cores: Vec<OrderingCore> = (0..n)
        .map(|i| OrderingCore::new(i, view.clone(), secrets[i].clone(), config, 0))
        .collect();
    let before = smartchain_crypto::value::hashes_computed();
    let mut decisions = 0u64;
    let mut queue: std::collections::VecDeque<(usize, usize, SmrMsg)> =
        std::collections::VecDeque::new();
    let handle = |from: usize,
                  out: CoreOutput,
                  queue: &mut std::collections::VecDeque<(usize, usize, SmrMsg)>,
                  decisions: &mut u64| match out {
        CoreOutput::Broadcast(m) => {
            for to in 0..n {
                if to != from {
                    queue.push_back((from, to, m.clone()));
                }
            }
        }
        CoreOutput::Send(to, m) => queue.push_back((from, to, m)),
        CoreOutput::Deliver(_) if from == 0 => *decisions += 1,
        CoreOutput::Deliver(_) | CoreOutput::NeedStateTransfer { .. } => {}
    };
    for seq in 0..8u64 {
        let request = Request {
            client: 1,
            seq,
            payload: vec![seq as u8],
            signature: None,
        };
        for (r, core) in cores.iter_mut().enumerate() {
            for out in core.submit(request.clone()) {
                handle(r, out, &mut queue, &mut decisions);
            }
        }
    }
    while let Some((from, to, msg)) = queue.pop_front() {
        for out in cores[to].on_message(from, msg) {
            handle(to, out, &mut queue, &mut decisions);
        }
    }
    HashOnce {
        decisions,
        digests: smartchain_crypto::value::hashes_computed() - before,
    }
}

/// Outcome of one execution-lane scaling run (virtual time, deterministic).
#[derive(Clone, Copy, Debug)]
pub struct ExecLaneThroughput {
    /// Lane count the run used.
    pub lanes: usize,
    /// Blocks delivered by every replica (minimum across the cluster).
    pub blocks: u64,
    /// Delivered batches per virtual second.
    pub batches_per_vsec: f64,
    /// Node-0's accumulated lane-planner accounting.
    pub stats: smartchain_smr::exec::ConflictStats,
}

/// A [`CounterApp`] whose lane hints model workload *skew*: `hot_lane`
/// pretends every account hash-shards onto lane 0, so the planner finds no
/// parallelism — same transactions, same state, degenerate plan. The
/// scaling scenario's control group.
#[derive(Debug, Default, Clone)]
struct SkewedCounterApp {
    inner: CounterApp,
}

impl smartchain_smr::app::Application for SkewedCounterApp {
    fn execute(&mut self, request: &Request) -> Vec<u8> {
        self.inner.execute(request)
    }
    fn take_snapshot(&self) -> Vec<u8> {
        self.inner.take_snapshot()
    }
    fn install_snapshot(&mut self, snapshot: &[u8]) {
        self.inner.install_snapshot(snapshot)
    }
    fn reset(&mut self) {
        self.inner.reset()
    }
    fn lane_hint(&self, _request: &Request, _lanes: usize) -> smartchain_smr::exec::LaneHint {
        smartchain_smr::exec::LaneHint::Single(0)
    }
}

/// Runs the execution-lane scaling scenario gated in `bench_check`: 4
/// replicas under the GroupCommit rung with a deliberately execution-bound
/// stage (3 ms/tx — a contract-VM-grade EXECUTE, dwarfing the ~1 ms batch
/// fsync), closed-loop clients, fixed seed. `skewed` swaps in lane hints
/// that put every account on one lane: same transactions, no parallelism —
/// the planner's critical path degenerates to the serial sum and the
/// speedup must vanish. Content (chains, state) is lane-invariant; only
/// virtual time moves.
pub fn exec_lane_throughput(lanes: usize, skewed: bool, virtual_secs: u64) -> ExecLaneThroughput {
    let config = NodeConfig {
        variant: Variant::Weak,
        persistence: Persistence::Sync,
        ordering: OrderingConfig {
            max_batch: 16,
            ..OrderingConfig::default()
        },
        execute_ns: 3_000_000, // 3 ms/tx: EXECUTE dominates the pipeline
        execute_lanes: lanes,
        progress_timeout: 800 * MILLI,
        ..NodeConfig::default()
    };
    // Metro-area links: with LAN latency the leader proposes the instant one
    // request lands, degenerating to 1-tx blocks nothing can parallelize.
    // 2.5 ms of propagation lets arrivals coalesce into full batches.
    let mut hw = HwSpec::paper_testbed();
    hw.nic.propagation_ns = 2_500_000;
    let build = move |make: fn(&[u8]) -> BenchLaneApp| {
        ChainClusterBuilder::new(4, make)
            .node_config(config)
            .hw(hw)
            .seed(20_260_807)
            // Enough closed-loop clients to keep full 16-tx batches queued:
            // the stage, not client round-trips, must be the bottleneck.
            .clients(4, 64, None)
            .build()
    };
    let mut cluster = if skewed {
        build(|_| BenchLaneApp::Skewed(SkewedCounterApp::default()))
    } else {
        build(|_| BenchLaneApp::Uniform(CounterApp::new()))
    };
    cluster.run_until(virtual_secs * SECOND);
    let blocks = (0..4)
        .map(|r| cluster.node::<BenchLaneApp>(r).height().unwrap_or(0))
        .min()
        .unwrap_or(0);
    let stats = cluster.node::<BenchLaneApp>(0).exec_stats();
    ExecLaneThroughput {
        lanes,
        blocks,
        batches_per_vsec: blocks as f64 / virtual_secs as f64,
        stats,
    }
}

/// Either lane-hint flavor behind one concrete node type (the harness is
/// monomorphic per cluster).
#[derive(Debug, Clone)]
enum BenchLaneApp {
    Uniform(CounterApp),
    Skewed(SkewedCounterApp),
}

impl smartchain_smr::app::Application for BenchLaneApp {
    fn execute(&mut self, request: &Request) -> Vec<u8> {
        match self {
            BenchLaneApp::Uniform(a) => a.execute(request),
            BenchLaneApp::Skewed(a) => a.execute(request),
        }
    }
    fn take_snapshot(&self) -> Vec<u8> {
        match self {
            BenchLaneApp::Uniform(a) => a.take_snapshot(),
            BenchLaneApp::Skewed(a) => a.take_snapshot(),
        }
    }
    fn install_snapshot(&mut self, snapshot: &[u8]) {
        match self {
            BenchLaneApp::Uniform(a) => a.install_snapshot(snapshot),
            BenchLaneApp::Skewed(a) => a.install_snapshot(snapshot),
        }
    }
    fn reset(&mut self) {
        match self {
            BenchLaneApp::Uniform(a) => a.reset(),
            BenchLaneApp::Skewed(a) => a.reset(),
        }
    }
    fn lane_hint(&self, request: &Request, lanes: usize) -> smartchain_smr::exec::LaneHint {
        match self {
            BenchLaneApp::Uniform(a) => a.lane_hint(request, lanes),
            BenchLaneApp::Skewed(a) => a.lane_hint(request, lanes),
        }
    }
}

/// Outcome of the metal exec-pool smoke: the laned [`DurableApp`] applies
/// the same coin batches as a serial twin, on real worker threads.
#[derive(Clone, Copy, Debug)]
pub struct ExecPoolSmoke {
    /// Coin transactions applied (per twin).
    pub txs: u64,
    /// Laned wall-clock transactions per second (informational).
    pub txs_per_sec: f64,
    /// `true` iff the laned twin's final snapshot is byte-identical to the
    /// serial twin's — the gate.
    pub state_matches: bool,
    /// The laned twin's planner accounting.
    pub stats: smartchain_smr::exec::ConflictStats,
}

/// Wall-clock smoke of the metal laned EXECUTE path: two
/// `DurableApp<SmartCoinApp>` twins — one serial, one at `lanes` lanes with
/// a real [`smartchain_smr::exec::ExecPool`] — apply identical
/// MINT-then-SPEND batches; their final snapshots must be byte-identical.
pub fn exec_pool_smoke(lanes: usize, batches: u64) -> ExecPoolSmoke {
    use smartchain_coin::workload::{authorized_minters, CoinFactory};
    use smartchain_coin::SmartCoinApp;
    use smartchain_smr::client::RequestFactory;

    let clients: Vec<u64> = (0..8u64).collect();
    let minters = authorized_minters(clients.iter().copied());
    let per_batch = clients.len() as u64;
    let mut factory = CoinFactory::new(batches.div_ceil(2));
    let all_batches: Vec<Vec<Request>> = (0..batches)
        .map(|round| clients.iter().map(|&c| factory.make(c, round)).collect())
        .collect();

    let mut serial = DurableApp::open(
        SmartCoinApp::from_genesis_data(&minters),
        smoke_dir("exec-serial"),
        1_000,
    )
    .expect("open serial twin");
    for batch in &all_batches {
        serial.apply_requests(batch).expect("serial apply");
    }

    let mut laned = DurableApp::open(
        SmartCoinApp::from_genesis_data(&minters),
        smoke_dir("exec-laned"),
        1_000,
    )
    .expect("open laned twin");
    laned.set_execute_lanes(lanes);
    let start = Instant::now();
    for batch in &all_batches {
        laned.apply_requests(batch).expect("laned apply");
    }
    let secs = start.elapsed().as_secs_f64();
    let txs = batches * per_batch;
    ExecPoolSmoke {
        txs,
        txs_per_sec: txs as f64 / secs.max(1e-9),
        state_matches: laned.app().take_snapshot() == serial.app().take_snapshot(),
        stats: laned.exec_stats(),
    }
}

/// Outcome of a verify-cap scenario run (virtual time, deterministic).
#[derive(Clone, Copy, Debug)]
pub struct VerifyCapThroughput {
    /// The round cap used (0 = unbounded, the default behavior).
    pub max_batch: usize,
    /// Client requests completed cluster-wide.
    pub completed: u64,
    /// Mean request latency (virtual seconds) across the client fleet —
    /// where the round cap's effect shows up in a closed-loop workload.
    pub mean_latency_secs: f64,
    /// Virtual seconds simulated.
    pub virtual_secs: u64,
}

/// Runs the verify-stage sizing scenario: 4 replicas with parallel signature
/// verification (`SigMode::Parallel`), a signed closed-loop client fleet,
/// fixed seed — with the verify round capped at `max_batch` requests
/// (`0` = everything queued). Makes the §IV-B-style latency/throughput
/// trade-off of [`VerifyConfig::max_batch`] measurable: tiny caps pay the
/// pool hand-off per few requests, huge caps delay early arrivals behind
/// the whole queue.
pub fn verify_cap_throughput(max_batch: usize, virtual_secs: u64) -> VerifyCapThroughput {
    verify_throughput(
        VerifyConfig {
            max_batch,
            ..VerifyConfig::default()
        },
        virtual_secs,
    )
}

/// The same scenario with *adaptive* round sizing: the cap starts at
/// `min_batch`, doubles under sustained queue depth and shrinks when idle —
/// the group-commit-style middle ground between a tiny fixed cap (hand-off
/// per few requests) and an unbounded round (early arrivals wait for the
/// whole queue).
pub fn verify_adaptive_throughput(virtual_secs: u64) -> VerifyCapThroughput {
    verify_throughput(
        VerifyConfig {
            max_batch: 0,
            adaptive: true,
            min_batch: 4,
        },
        virtual_secs,
    )
}

fn verify_throughput(verify: VerifyConfig, virtual_secs: u64) -> VerifyCapThroughput {
    let config = NodeConfig {
        sig_mode: SigMode::Parallel,
        verify,
        ordering: OrderingConfig {
            max_batch: 16,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .hw(HwSpec::paper_testbed())
        .seed(20_260_731)
        .clients(2, 48, None)
        .client_factory(|| Box::new(CounterFactory::new(true)))
        .build();
    cluster.run_until(virtual_secs * SECOND);
    let client_nodes: Vec<_> = cluster.client_nodes().to_vec();
    let (mut sum, mut count) = (0.0, 0u64);
    for node in client_nodes {
        let meter = cluster.client(node).latency();
        sum += meter.mean_seconds() * meter.len() as f64;
        count += meter.len() as u64;
    }
    VerifyCapThroughput {
        max_batch: verify.max_batch,
        completed: cluster.total_completed(),
        mean_latency_secs: if count > 0 { sum / count as f64 } else { 0.0 },
        virtual_secs,
    }
}

/// Outcome of the deterministic segmented-engine recovery scenario.
#[derive(Clone, Copy, Debug)]
pub struct SegmentedRecovery {
    /// Batches applied before the simulated restart.
    pub applied: u64,
    /// Records the reopened `DurableApp` replayed into the application —
    /// must equal `applied mod checkpoint_period`, not `applied`.
    pub replayed: u64,
    /// Segment files the reopened engine scanned (1 = the active segment).
    pub segments_scanned: u64,
    /// Record frames read during that scan.
    pub records_scanned: u64,
    /// Wall-clock batches/sec of the apply loop (informational).
    pub batches_per_sec: f64,
}

/// The segmented-engine throughput + recovery-replay scenario gated in
/// `bench_check`: a [`DurableApp`] on the group-commit segmented engine
/// applies `applied` single-request batches (checkpoint period
/// `checkpoint_period`, `records_per_segment` records per segment), is
/// dropped (the SIGKILL stand-in: nothing is flushed beyond what group
/// commit already made durable), and reopened. The recovery counters are
/// deterministic — checkpoints truncate the covered prefix, so the reopen
/// must replay only `applied mod checkpoint_period` records and scan only
/// the active segment.
pub fn segmented_recovery_scenario(
    applied: u64,
    checkpoint_period: u64,
    records_per_segment: u64,
) -> SegmentedRecovery {
    let dir = smoke_dir("segmented");
    let segments = SegmentConfig {
        records_per_segment,
    };
    let start = Instant::now();
    {
        let mut durable = DurableApp::open_segmented(
            CounterApp::new(),
            &dir,
            checkpoint_period,
            SyncPolicy::Sync,
            segments,
        )
        .expect("open segmented durable app");
        for i in 0..applied {
            durable
                .apply_requests(&[Request {
                    client: 7,
                    seq: i + 1,
                    payload: vec![1],
                    signature: None,
                }])
                .expect("apply batch");
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let durable = DurableApp::open_segmented(
        CounterApp::new(),
        &dir,
        checkpoint_period,
        SyncPolicy::Sync,
        segments,
    )
    .expect("reopen segmented durable app");
    assert_eq!(durable.batches_applied(), applied, "recovery lost batches");
    let stats = durable
        .segment_recovery_stats()
        .expect("segmented engine reports recovery stats");
    SegmentedRecovery {
        applied,
        replayed: durable.replayed_on_recovery(),
        segments_scanned: stats.segments_scanned,
        records_scanned: stats.records_scanned,
        batches_per_sec: applied as f64 / secs.max(1e-9),
    }
}

/// Outcome of the deterministic certified chunked-install scenario.
#[derive(Clone, Copy, Debug)]
pub struct ChunkedInstall {
    /// State chunks the installer hashed and checked against the
    /// quorum-certified root before adopting the snapshot.
    pub chunks_verified: u64,
    /// Size of the installed snapshot state, in bytes.
    pub state_bytes: u64,
}

/// The certified snapshot-install scenario gated in `bench_check`: a source
/// [`DurableApp`] cuts a checkpoint over `clients` counter records, a
/// 3-of-4 quorum signs its state root (what the runtime's share gossip
/// assembles), and a fresh replica installs the shipped snapshot —
/// verifying it chunk-by-chunk against the certified root before adopting
/// anything. The verified-chunk count is a pure function of the state
/// size, so the pin holds with a band of 0: it moves only if the chunking
/// geometry or the install path's verification coverage changes.
pub fn chunked_install_scenario(clients: u64) -> ChunkedInstall {
    let mut src =
        DurableApp::open(CounterApp::new(), smoke_dir("install-src"), 1).expect("open source app");
    let batch: Vec<Request> = (0..clients)
        .map(|c| Request {
            client: 1_000 + c,
            seq: 1,
            payload: vec![1],
            signature: None,
        })
        .collect();
    src.apply_requests(&batch).expect("apply batch");

    let secrets: Vec<SecretKey> = (0..4)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 90; 32]))
        .collect();
    let view = View {
        id: 0,
        members: secrets.iter().map(|s| s.public_key()).collect(),
    };
    let (covered, state_root, tip) = src.latest_checkpoint_basis().expect("checkpoint cut");
    let payload = ckpt_sign_payload(covered, &state_root, &tip);
    let cert = CheckpointCert {
        covered,
        state_root,
        tip,
        signatures: (0..view.quorum())
            .map(|r| (r, secrets[r].sign(&payload)))
            .collect(),
    };
    src.store_checkpoint_cert(cert).expect("store certificate");

    let reply = src.state_reply(1).expect("state reply");
    let mut dst =
        DurableApp::open(CounterApp::new(), smoke_dir("install-dst"), 100).expect("open target");
    dst.install_remote(
        &view,
        reply.covered,
        reply.snapshot,
        reply.cert.as_ref(),
        reply.first_batch,
        &reply.batches,
    )
    .expect("certified install");
    assert_eq!(dst.batches_applied(), src.batches_applied());
    ChunkedInstall {
        chunks_verified: dst.chunks_verified(),
        state_bytes: clients * 16,
    }
}

/// Outcome of a runtime (wall-clock) smoke run.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeSmoke {
    /// Operations completed (each is one ordered batch here).
    pub ops: u64,
    /// Wall-clock seconds the run took.
    pub secs: f64,
    /// Committed batches per second.
    pub batches_per_sec: f64,
    /// Replica 0's transport counters (TCP runs only).
    pub transport: Option<TransportStats>,
}

/// Closed-loop smoke over the in-process channel transport: `ops`
/// sequential operations against a live 4-replica [`LocalCluster`],
/// measured wall-clock. The baseline the TCP number is read against.
pub fn channel_smoke(ops: u64) -> RuntimeSmoke {
    let config = RuntimeConfig {
        storage_dir: Some(smoke_dir("channel")),
        ..RuntimeConfig::default()
    };
    let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot local cluster");
    let start = Instant::now();
    for _ in 0..ops {
        cluster
            .execute(vec![1], Duration::from_secs(30))
            .expect("smoke op");
    }
    let secs = start.elapsed().as_secs_f64();
    cluster.shutdown();
    RuntimeSmoke {
        ops,
        secs,
        batches_per_sec: ops as f64 / secs.max(1e-9),
        transport: None,
    }
}

/// The same closed loop over real loopback TCP sockets: a 4-replica
/// [`TcpCluster`] (length-framed, HMAC-authenticated links, one poll-based
/// reactor per replica embedded in its loop thread) serving `ops`
/// operations end-to-end. The spread between this and [`channel_smoke`] is
/// the cost of the real socket path.
pub fn tcp_smoke(ops: u64) -> RuntimeSmoke {
    let config = RuntimeConfig {
        storage_dir: Some(smoke_dir("tcp")),
        ..RuntimeConfig::default()
    };
    let mut cluster =
        TcpCluster::start(config, Backend::Sim, CounterApp::new).expect("boot tcp cluster");
    let start = Instant::now();
    for _ in 0..ops {
        cluster
            .execute(vec![1], Duration::from_secs(30))
            .expect("smoke op");
    }
    let secs = start.elapsed().as_secs_f64();
    let transport = cluster.transport_stats(0);
    cluster.shutdown();
    RuntimeSmoke {
        ops,
        secs,
        batches_per_sec: ops as f64 / secs.max(1e-9),
        transport,
    }
}

/// Outcome of the many-client loopback soak.
#[derive(Clone, Copy, Debug)]
pub struct ClientSoak {
    /// Logical clients driven concurrently.
    pub clients: usize,
    /// Operations the fleet was asked to complete (`clients × ops each`).
    pub target_ops: u64,
    /// Operations that reached a reply quorum before the deadline.
    pub completed: u64,
    /// Live client sockets after the connect storm (≤ `clients × replicas`).
    pub connections: usize,
    /// Process thread count before any client existed…
    pub threads_before_clients: u64,
    /// …and with the whole fleet connected. Equal by design: the pool and
    /// the replica reactors multiplex every socket over `poll(2)`, so
    /// client scale adds zero threads.
    pub threads_with_clients: u64,
    /// Wall-clock seconds the closed loop ran.
    pub secs: f64,
    /// Completed operations per second.
    pub ops_per_sec: f64,
}

/// The 1k-client scale test: `clients` logical clients, each connected to
/// all four replicas of a live [`TcpCluster`], run a closed loop of
/// `ops_per_client` operations from a single caller thread. Fixed request
/// volume, so the completion count is deterministic; the thread counts
/// prove the replica side scales O(replicas), not O(clients).
pub fn tcp_client_soak(clients: usize, ops_per_client: u64) -> ClientSoak {
    let config = RuntimeConfig {
        storage_dir: Some(smoke_dir("soak")),
        ..RuntimeConfig::default()
    };
    let mut cluster =
        TcpCluster::start(config, Backend::Sim, CounterApp::new).expect("boot tcp cluster");
    // Warm the ordering pipeline up before the connect storm.
    cluster
        .execute(vec![1], Duration::from_secs(30))
        .expect("soak warm-up");
    let threads_before_clients = process_threads();
    let addrs = cluster.cluster_config().replicas.clone();
    let quorum = cluster.cluster_config().f() + 1;
    let mut pool = TcpClientPool::connect(addrs, 1_000_000, clients);
    let connections = pool.connections();
    let threads_with_clients = process_threads();
    let target_ops = clients as u64 * ops_per_client;
    let start = Instant::now();
    let completed = pool.run_closed_loop(ops_per_client, quorum, &[1], Duration::from_secs(120));
    let secs = start.elapsed().as_secs_f64();
    cluster.shutdown();
    ClientSoak {
        clients,
        target_ops,
        completed,
        connections,
        threads_before_clients,
        threads_with_clients,
        secs,
        ops_per_sec: completed as f64 / secs.max(1e-9),
    }
}

/// The process's live thread count (`/proc/self/status`); 0 where `/proc`
/// is unavailable, which disarms the thread-growth gate rather than
/// failing it.
fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))?
                .split_whitespace()
                .nth(1)?
                .parse()
                .ok()
        })
        .unwrap_or(0)
}

fn smoke_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("smartchain-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `f` repeatedly and returns `(median, min, max, iters_per_sample)`
/// per-iteration nanoseconds — calibrated to ~50ms per sample, 7 samples.
pub fn measure(mut f: impl FnMut()) -> (u64, u64, u64, u64) {
    // Warm up + calibrate.
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_millis() < 20 {
        f();
        calib_iters += 1;
    }
    let per_iter = (start.elapsed().as_nanos() as u64 / calib_iters.max(1)).max(1);
    let iters = (50_000_000 / per_iter).clamp(1, 1_000_000);
    let samples = 7usize;
    let mut times: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        times.push(t.elapsed().as_nanos() as u64 / iters);
    }
    times.sort_unstable();
    (times[samples / 2], times[0], times[samples - 1], iters)
}

/// Runs `f` repeatedly and reports the median per-iteration time.
///
/// Calibrates an iteration count targeting ~50ms per sample, takes 7
/// samples, prints `name: <median> ns/iter (min .. max)`.
pub fn bench(name: &str, f: impl FnMut()) {
    let (median, min, max, iters) = measure(f);
    println!("{name}: {median} ns/iter (min {min} .. max {max}, {iters} iters/sample)");
}

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
