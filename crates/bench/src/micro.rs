//! Minimal micro-benchmark harness (the workspace builds without external
//! crates, so criterion is out). Wall-clock timing with a measured-iteration
//! loop and median-of-samples reporting; good enough to spot order-of-magnitude
//! regressions in the hot paths the `benches/` targets cover.

use std::time::Instant;

/// Runs `f` repeatedly and reports the median per-iteration time.
///
/// Calibrates an iteration count targeting ~50ms per sample, takes `samples`
/// samples, prints `name: <median> ns/iter (min .. max)`.
pub fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up + calibrate.
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_millis() < 20 {
        f();
        calib_iters += 1;
    }
    let per_iter = (start.elapsed().as_nanos() as u64 / calib_iters.max(1)).max(1);
    let iters = (50_000_000 / per_iter).clamp(1, 1_000_000);
    let samples = 7usize;
    let mut times: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        times.push(t.elapsed().as_nanos() as u64 / iters);
    }
    times.sort_unstable();
    println!(
        "{name}: {} ns/iter (min {} .. max {}, {iters} iters/sample)",
        times[samples / 2],
        times[0],
        times[samples - 1]
    );
}

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
