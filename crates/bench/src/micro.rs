//! Minimal micro-benchmark harness (the workspace builds without external
//! crates, so criterion is out). Wall-clock timing with a measured-iteration
//! loop and median-of-samples reporting; good enough to spot order-of-magnitude
//! regressions in the hot paths the `benches/` targets cover.
//!
//! Also hosts the deterministic (virtual-time) α-pipeline scenario used by
//! the `bench_check` CI gate: delivered-batches/virtual-second at α = 1 vs
//! α = 4 under the GroupCommit rung, where overlapping ORDER of instance
//! `i+1` with PERSIST of instance `i` is the whole win.

use smartchain_core::harness::ChainClusterBuilder;
use smartchain_core::node::{NodeConfig, Persistence, Variant};
use smartchain_sim::hw::HwSpec;
use smartchain_sim::{MILLI, SECOND};
use smartchain_smr::app::CounterApp;
use smartchain_smr::ordering::OrderingConfig;
use std::time::Instant;

/// Outcome of one α-pipeline scenario run. Virtual-time measurement: the
/// numbers are bit-for-bit reproducible across machines.
#[derive(Clone, Copy, Debug)]
pub struct AlphaThroughput {
    /// Pipeline width the run used.
    pub alpha: u64,
    /// Blocks delivered by every replica (minimum across the cluster).
    pub blocks: u64,
    /// Virtual seconds simulated.
    pub virtual_secs: u64,
    /// Delivered batches per virtual second.
    pub batches_per_vsec: f64,
}

/// Runs the α-pipeline scenario: 4 replicas under the GroupCommit rung
/// (`Persistence::Sync`), a closed-loop client fleet, fixed seed, on a
/// latency-dominated network (paper-testbed disk and CPU, 2.5 ms one-way
/// propagation — a metro/WAN deployment of the same machines).
///
/// The regime matters: on the 120 µs LAN the pipeline is fsync-bound even
/// at α = 1, because ORDER already overlaps PERSIST through the delivery
/// queue. What α = 1 *cannot* hide is the consensus round latency itself —
/// instance `i+1` is only proposed after `i` decides, so block rate is
/// capped at 1/round. With propagation ≫ fsync that cap binds, and α > 1
/// lifts it by keeping α instances in flight (HotStuff-style chaining).
pub fn alpha_pipeline_throughput(alpha: u64, virtual_secs: u64) -> AlphaThroughput {
    let mut hw = HwSpec::paper_testbed();
    hw.nic.propagation_ns = 2_500_000; // 2.5 ms one-way
    let config = NodeConfig {
        variant: Variant::Weak,
        persistence: Persistence::Sync,
        ordering: OrderingConfig {
            max_batch: 16,
            alpha,
        },
        progress_timeout: 800 * MILLI,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .hw(hw)
        .seed(20_260_730)
        .clients(4, 32, None)
        .build();
    cluster.run_until(virtual_secs * SECOND);
    let blocks = (0..4)
        .map(|r| cluster.node::<CounterApp>(r).height().unwrap_or(0))
        .min()
        .unwrap_or(0);
    AlphaThroughput {
        alpha,
        blocks,
        virtual_secs,
        batches_per_vsec: blocks as f64 / virtual_secs as f64,
    }
}

/// Runs `f` repeatedly and returns `(median, min, max, iters_per_sample)`
/// per-iteration nanoseconds — calibrated to ~50ms per sample, 7 samples.
pub fn measure(mut f: impl FnMut()) -> (u64, u64, u64, u64) {
    // Warm up + calibrate.
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_millis() < 20 {
        f();
        calib_iters += 1;
    }
    let per_iter = (start.elapsed().as_nanos() as u64 / calib_iters.max(1)).max(1);
    let iters = (50_000_000 / per_iter).clamp(1, 1_000_000);
    let samples = 7usize;
    let mut times: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        times.push(t.elapsed().as_nanos() as u64 / iters);
    }
    times.sort_unstable();
    (times[samples / 2], times[0], times[samples - 1], iters)
}

/// Runs `f` repeatedly and reports the median per-iteration time.
///
/// Calibrates an iteration count targeting ~50ms per sample, takes 7
/// samples, prints `name: <median> ns/iter (min .. max)`.
pub fn bench(name: &str, f: impl FnMut()) {
    let (median, min, max, iters) = measure(f);
    println!("{name}: {median} ns/iter (min {min} .. max {max}, {iters} iters/sample)");
}

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
