//! CI bench gate: runs the micro-bench medians and the deterministic
//! α-pipeline scenario, compares them against the pinned baselines in
//! `BENCH_BASELINE.json` (repo root), and fails on gross hot-path
//! regressions.
//!
//! Two kinds of checks with very different tolerances:
//!
//! * **virtual-time** (the α scenario) — bit-for-bit deterministic, so the
//!   band is tight-ish (±25%: intended scheduling changes legitimately move
//!   the numbers; re-pin when they do) and α = 4 must *strictly* beat α = 1;
//! * **wall-clock** (hash/codec medians) — CI machines vary wildly, so only
//!   an 8× blow-up fails the gate.
//!
//! Re-pin by running `cargo run --release -p smartchain-bench --bin
//! bench_check -- --print-baseline` and pasting the output.

use smartchain_bench::micro::{
    alpha_pipeline_throughput, black_box, channel_smoke, chunked_install_scenario,
    exec_lane_throughput, exec_pool_smoke, hash_once_scenario, loss_grid_cell, measure,
    segmented_recovery_scenario, tcp_client_soak, tcp_smoke, verify_adaptive_throughput,
    verify_cap_throughput, AlphaMode, LossProfile,
};
use smartchain_crypto::sha256;
use smartchain_merkle as merkle;
use smartchain_smr::types::{decode_batch, encode_batch, Request};
use std::collections::BTreeMap;

/// Minimal parser for the flat `{"key": number}` baseline file — the
/// workspace carries no JSON dependency, and the gate needs nothing more.
fn parse_baseline(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for part in text.split(',') {
        let Some((key_part, value_part)) = part.split_once(':') else {
            continue;
        };
        let key: String = key_part
            .chars()
            .filter(|c| !"\"{}\n\r\t ".contains(*c))
            .collect();
        let value: String = value_part
            .chars()
            .filter(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let (false, Ok(v)) = (key.is_empty(), value.parse::<f64>()) {
            out.insert(key, v);
        }
    }
    out
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_BASELINE.json")
}

struct Gate {
    baseline: BTreeMap<String, f64>,
    measured: BTreeMap<String, f64>,
    failures: Vec<String>,
}

impl Gate {
    /// Deterministic metric: must sit within ±`band` of the pin.
    fn band(&mut self, key: &str, value: f64, band: f64) {
        self.measured.insert(key.to_string(), value);
        let Some(&pin) = self.baseline.get(key) else {
            self.failures.push(format!("{key}: no baseline pinned"));
            return;
        };
        let (lo, hi) = (pin * (1.0 - band), pin * (1.0 + band));
        let ok = value >= lo && value <= hi;
        println!(
            "{key}: {value} (pin {pin}, band ±{:.0}%) {}",
            band * 100.0,
            verdict(ok)
        );
        if !ok {
            self.failures
                .push(format!("{key}: {value} outside [{lo:.1}, {hi:.1}]"));
        }
    }

    /// Wall-clock throughput metric: only fails when it collapses below
    /// `pin / factor` (machines vary; a real regression halves it).
    fn floor(&mut self, key: &str, value: f64, factor: f64) {
        self.measured.insert(key.to_string(), value);
        let Some(&pin) = self.baseline.get(key) else {
            self.failures.push(format!("{key}: no baseline pinned"));
            return;
        };
        let ok = value >= pin / factor;
        println!(
            "{key}: {value:.1} (pin {pin}, floor pin/{factor}) {}",
            verdict(ok)
        );
        if !ok {
            self.failures
                .push(format!("{key}: {value:.1} < pin {pin} / {factor}"));
        }
    }

    /// Wall-clock metric: only fails when `factor`× slower than the pin.
    fn ceiling(&mut self, key: &str, value: f64, factor: f64) {
        self.measured.insert(key.to_string(), value);
        let Some(&pin) = self.baseline.get(key) else {
            self.failures.push(format!("{key}: no baseline pinned"));
            return;
        };
        let ok = value <= pin * factor;
        println!(
            "{key}: {value} ns (pin {pin} ns, ceiling {factor}x) {}",
            verdict(ok)
        );
        if !ok {
            self.failures
                .push(format!("{key}: {value} ns > {factor}x pin of {pin} ns"));
        }
    }
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "FAIL"
    }
}

fn main() {
    let print_baseline = std::env::args().any(|a| a == "--print-baseline");
    let baseline = if print_baseline {
        BTreeMap::new()
    } else {
        let path = baseline_path();
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        parse_baseline(&text)
    };
    let mut gate = Gate {
        baseline,
        measured: BTreeMap::new(),
        failures: Vec::new(),
    };

    // Deterministic virtual-time scenario: pipelined consensus.
    let a1 = alpha_pipeline_throughput(1, 10);
    let a4 = alpha_pipeline_throughput(4, 10);
    println!(
        "alpha scenario: alpha=1 {:.1} batches/vsec, alpha=4 {:.1} batches/vsec",
        a1.batches_per_vsec, a4.batches_per_vsec
    );
    if !print_baseline && a4.blocks <= a1.blocks {
        gate.failures.push(format!(
            "alpha=4 must strictly out-deliver alpha=1 (got {} vs {})",
            a4.blocks, a1.blocks
        ));
    }
    gate.measured
        .insert("alpha1_blocks_10s".into(), a1.blocks as f64);
    gate.measured
        .insert("alpha4_blocks_10s".into(), a4.blocks as f64);
    if !print_baseline {
        gate.band("alpha1_blocks_10s", a1.blocks as f64, 0.25);
        gate.band("alpha4_blocks_10s", a4.blocks as f64, 0.25);
    }

    // Loss grid (deterministic): the pinned seed-regression scenario under
    // clean / 5%-drop / bursty loss, each at fixed α = 1, fixed α = 4, and
    // the AIMD window with per-instance repair. Adaptive must complete at
    // least as much as every fixed window on every profile; on the pinned
    // 5%-drop cells it must beat α = 1 by ≥ 1.5×, match-or-beat α = 4, and
    // install strictly fewer regencies than either — repair rounds, not
    // view changes, do the healing.
    for profile in [LossProfile::Clean, LossProfile::Drop5, LossProfile::Bursty] {
        let cells: Vec<_> = [AlphaMode::Fixed1, AlphaMode::Fixed4, AlphaMode::Adaptive]
            .into_iter()
            .map(|mode| loss_grid_cell(profile, mode))
            .collect();
        for cell in &cells {
            println!(
                "loss grid {:>6} x {:>8}: {} completed, {} regency changes, {} fetches sent",
                profile.key(),
                cell.mode.key(),
                cell.completed,
                cell.regency_changes(),
                cell.fetches_sent(),
            );
            if cell.mode == AlphaMode::Adaptive {
                for (r, s) in cell.stats.iter().enumerate() {
                    println!(
                        "  node {r}: alpha {} (min {} / max {}), {} fetches sent / {} answered, {} repaired, {} regency changes",
                        s.alpha_current,
                        s.alpha_min_seen,
                        s.alpha_max_seen,
                        s.fetches_sent,
                        s.fetches_answered,
                        s.repaired_instances,
                        s.regency_changes,
                    );
                }
            }
            let key = format!("grid_{}_{}_completed", profile.key(), cell.mode.key());
            gate.measured.insert(key.clone(), cell.completed as f64);
            if !print_baseline {
                gate.band(&key, cell.completed as f64, 0.25);
            }
        }
        let (a1, a4, ad) = (&cells[0], &cells[1], &cells[2]);
        if !print_baseline {
            if ad.completed < a1.completed || ad.completed < a4.completed {
                gate.failures.push(format!(
                    "loss grid {}: adaptive must complete >= every fixed window (got {} vs alpha1 {} / alpha4 {})",
                    profile.key(),
                    ad.completed,
                    a1.completed,
                    a4.completed
                ));
            }
            if profile == LossProfile::Drop5 {
                let threshold = (3 * a1.completed).div_ceil(2);
                if ad.completed < threshold {
                    gate.failures.push(format!(
                        "loss grid drop5: adaptive must complete >= 1.5x alpha1 (got {} vs threshold {threshold})",
                        ad.completed
                    ));
                }
                if ad.regency_changes() >= a1.regency_changes()
                    || ad.regency_changes() >= a4.regency_changes()
                {
                    gate.failures.push(format!(
                        "loss grid drop5: adaptive must install strictly fewer regencies (got {} vs alpha1 {} / alpha4 {})",
                        ad.regency_changes(),
                        a1.regency_changes(),
                        a4.regency_changes()
                    ));
                }
            }
        }
    }

    // Execution-lane scaling (deterministic): an execution-bound pipeline
    // (3 ms/tx) at 1 vs 4 lanes over uniformly sharded accounts, plus a
    // fully skewed control (every account on one lane). Uniform 4-lane must
    // deliver at least 2x the serial blocks; the skewed run must not — the
    // speedup comes from the plan, not from dropped work. The conflict
    // stats printed are the per-batch observability counters (satellite:
    // single-lane vs barrier classification and critical-path cost).
    let l1 = exec_lane_throughput(1, false, 10);
    let l4 = exec_lane_throughput(4, false, 10);
    let s4 = exec_lane_throughput(4, true, 10);
    println!(
        "exec lanes: lanes=1 {:.1} blocks/vsec, lanes=4 {:.1} blocks/vsec, lanes=4(skew) {:.1} blocks/vsec",
        l1.batches_per_vsec, l4.batches_per_vsec, s4.batches_per_vsec
    );
    println!(
        "exec lanes=4 conflict stats: {} batches, {} single-lane tx, {} cross-lane tx, {} parallel groups, critical path {} tx (of {} planned)",
        l4.stats.batches,
        l4.stats.single_lane_txs,
        l4.stats.cross_lane_txs,
        l4.stats.parallel_groups,
        l4.stats.critical_path_txs,
        l4.stats.planned_txs(),
    );
    if !print_baseline {
        if l4.blocks < 2 * l1.blocks {
            gate.failures.push(format!(
                "4 execution lanes must deliver >= 2x the serial blocks on the uniform workload (got {} vs {})",
                l4.blocks, l1.blocks
            ));
        }
        if s4.blocks >= 2 * l1.blocks {
            gate.failures.push(format!(
                "the skewed control must not scale (got {} vs serial {})",
                s4.blocks, l1.blocks
            ));
        }
        if l4.stats.critical_path_txs >= l4.stats.planned_txs() {
            gate.failures.push(format!(
                "uniform 4-lane critical path must beat the serial sum (got {} of {})",
                l4.stats.critical_path_txs,
                l4.stats.planned_txs()
            ));
        }
    }
    gate.measured
        .insert("exec_lanes1_blocks_10s".into(), l1.blocks as f64);
    gate.measured
        .insert("exec_lanes4_blocks_10s".into(), l4.blocks as f64);
    gate.measured
        .insert("exec_skew4_blocks_10s".into(), s4.blocks as f64);
    if !print_baseline {
        gate.band("exec_lanes1_blocks_10s", l1.blocks as f64, 0.25);
        gate.band("exec_lanes4_blocks_10s", l4.blocks as f64, 0.25);
        gate.band("exec_skew4_blocks_10s", s4.blocks as f64, 0.25);
    }

    // Verify-stage sizing (deterministic, informational): the round cap's
    // latency/throughput trade-off. Over-small rounds pay the pool
    // hand-off per few requests; a generous cap is indistinguishable from
    // unbounded at this load. The adaptive row starts at the small cap and
    // grows under depth — the trade-off without picking a number.
    for cap in [0usize, 4, 64] {
        let v = verify_cap_throughput(cap, 1);
        println!(
            "verify cap {:>9}: {} completed, mean latency {:.1} ms (1 vsec, signed)",
            if cap == 0 {
                "unbounded".to_string()
            } else {
                format!("{cap}")
            },
            v.completed,
            v.mean_latency_secs * 1e3,
        );
    }
    let va = verify_adaptive_throughput(1);
    println!(
        "verify cap  adaptive: {} completed, mean latency {:.1} ms (1 vsec, signed)",
        va.completed,
        va.mean_latency_secs * 1e3,
    );

    // Segmented-engine recovery replay (deterministic): 50 batches at
    // checkpoint period 20 and 8-record segments → checkpoints truncate the
    // covered prefix, so the reopen replays exactly 10 records and scans
    // only the active segment. Restart cost bounded by the checkpoint
    // interval is the whole point of the segmented engine — these pins gate
    // it.
    let seg = segmented_recovery_scenario(50, 20, 8);
    println!(
        "segmented recovery: {} applied, {} replayed, {} segment(s)/{} record(s) scanned, {:.0} batches/sec apply",
        seg.applied, seg.replayed, seg.segments_scanned, seg.records_scanned, seg.batches_per_sec
    );
    gate.measured
        .insert("segmented_replayed_records".into(), seg.replayed as f64);
    gate.measured.insert(
        "segmented_scanned_records".into(),
        seg.records_scanned as f64,
    );
    if !print_baseline {
        gate.band("segmented_replayed_records", seg.replayed as f64, 0.0);
        gate.band("segmented_scanned_records", seg.records_scanned as f64, 0.0);
        if seg.segments_scanned != 1 {
            gate.failures.push(format!(
                "segmented recovery must scan exactly the active segment (scanned {})",
                seg.segments_scanned
            ));
        }
        if seg.batches_per_sec <= 0.0 {
            gate.failures
                .push("segmented apply loop reported zero throughput".to_string());
        }
    }

    // Certified chunked install (deterministic): a quorum-certified
    // snapshot of 24 counter records (384 bytes, two 256-byte chunks)
    // installed on a fresh replica. The verified-chunk count is a pure
    // function of the state size — band 0: it moves only if the chunk
    // geometry or the install path's verification coverage changes.
    let install = chunked_install_scenario(24);
    println!(
        "chunked install: {} chunk(s) verified over {} state bytes",
        install.chunks_verified, install.state_bytes
    );
    gate.measured.insert(
        "chunked_install_chunks".into(),
        install.chunks_verified as f64,
    );
    if !print_baseline {
        gate.band(
            "chunked_install_chunks",
            install.chunks_verified as f64,
            0.0,
        );
    }

    // Metal exec-pool smoke (wall-clock): identical coin batches through a
    // serial and a 4-lane DurableApp twin — real worker threads, byte-equal
    // final snapshots gate (that's the determinism claim on real metal).
    let pool = exec_pool_smoke(4, 40);
    println!(
        "exec pool smoke: {} txs, {:.0} txs/sec laned, state match {} ({} single-lane, {} cross-lane, critical path {})",
        pool.txs,
        pool.txs_per_sec,
        pool.state_matches,
        pool.stats.single_lane_txs,
        pool.stats.cross_lane_txs,
        pool.stats.critical_path_txs,
    );
    if !print_baseline {
        if !pool.state_matches {
            gate.failures
                .push("exec pool smoke: laned state diverged from serial".to_string());
        }
        if pool.txs_per_sec <= 0.0 {
            gate.failures
                .push("exec pool smoke reported zero throughput".to_string());
        }
        if pool.stats.planned_txs() == 0 {
            gate.failures
                .push("exec pool smoke: the lane planner never engaged".to_string());
        }
    }

    // Zero-copy hot path (deterministic): digest work per decided value on
    // a 4-replica α = 4 core pump. Decided values travel as shared,
    // hash-memoized handles, so the whole cluster computes exactly one
    // SHA-256 per decision — band 0: any second hash on the ordering path
    // moves this row.
    let hash_once = hash_once_scenario();
    println!(
        "hash-once: {} decisions, {} digests ({:.2} hashes/decision cluster-wide)",
        hash_once.decisions,
        hash_once.digests,
        hash_once.hashes_per_decision(),
    );
    gate.measured.insert(
        "hashes_per_decision".into(),
        hash_once.hashes_per_decision(),
    );
    if !print_baseline {
        gate.band("hashes_per_decision", hash_once.hashes_per_decision(), 0.0);
    }

    // Runtime smoke (wall-clock): the same closed loop over channel and
    // real loopback-TCP transports. The channel number stays informational
    // (liveness only); the TCP number is floor-gated — the reactor rework
    // roughly doubled it, and a collapse back means the event loop
    // regressed.
    let ch = channel_smoke(1000);
    let tcp = tcp_smoke(1000);
    println!(
        "runtime smoke: channel {:.1} batches/sec, tcp {:.1} batches/sec ({} ops each)",
        ch.batches_per_sec, tcp.batches_per_sec, ch.ops
    );
    if let Some(stats) = &tcp.transport {
        println!(
            "tcp replica-0 transport: {} frames in / {} out, {} KiB in / {} KiB out, {} writev calls ({:.2} frames/call), {} drops, {} rejects, {} broadcasts / {} payload encodes ({:.2} encodes/broadcast)",
            stats.frames_in,
            stats.frames_out,
            stats.bytes_in / 1024,
            stats.bytes_out / 1024,
            stats.writev_calls,
            stats.avg_coalesce(),
            stats.queue_full_drops,
            stats.accept_rejections,
            stats.broadcast_msgs,
            stats.broadcast_payload_encodes,
            stats.encodes_per_broadcast(),
        );
        // Encode-once fan-out (deterministic ratio): one payload
        // serialization per broadcast, shared across all three peer queues
        // — band 0: a per-peer re-encode (or re-copy) moves this to ~3.
        gate.measured.insert(
            "broadcast_encodes_per_msg".into(),
            stats.encodes_per_broadcast(),
        );
        if !print_baseline {
            gate.band(
                "broadcast_encodes_per_msg",
                stats.encodes_per_broadcast(),
                0.0,
            );
        }
    }
    if !print_baseline {
        if ch.batches_per_sec <= 0.0 {
            gate.failures
                .push("channel smoke must report nonzero throughput".to_string());
        }
        // pin/2 (was pin/3): the encode-once broadcast path shed the
        // per-peer payload copies, so the measured number sits comfortably
        // above the pin's half even on noisy CI machines.
        gate.floor("tcp_smoke_bps", tcp.batches_per_sec, 2.0);
        match &tcp.transport {
            Some(stats) if stats.frames_in > 0 && stats.writev_calls > 0 => {}
            other => gate.failures.push(format!(
                "tcp smoke transport counters missing or idle: {other:?}"
            )),
        }
    } else {
        gate.measured
            .insert("tcp_smoke_bps".into(), tcp.batches_per_sec);
    }

    // 1k-client soak (wall-clock, fixed volume): 1000 logical clients over
    // 4000 sockets run 2 ops each from one caller thread. The completion
    // count is deterministic — band 0 — and connecting the whole fleet
    // must add zero threads to the process (the O(replicas) claim).
    let soak = tcp_client_soak(1000, 2);
    println!(
        "tcp client soak: {} clients / {} conns, {}/{} ops in {:.1}s ({:.0} ops/sec), threads {} -> {}",
        soak.clients,
        soak.connections,
        soak.completed,
        soak.target_ops,
        soak.secs,
        soak.ops_per_sec,
        soak.threads_before_clients,
        soak.threads_with_clients,
    );
    gate.measured
        .insert("soak_completed_ops".into(), soak.completed as f64);
    if !print_baseline {
        gate.band("soak_completed_ops", soak.completed as f64, 0.0);
        if soak.threads_with_clients > soak.threads_before_clients {
            gate.failures.push(format!(
                "client fleet must not add threads (went {} -> {})",
                soak.threads_before_clients, soak.threads_with_clients
            ));
        }
    }

    // Wall-clock hot paths (gross-regression tripwires only).
    let data = vec![7u8; 4096];
    let (sha_ns, ..) = measure(|| {
        black_box(sha256::digest(black_box(&data)));
    });
    let batch: Vec<Request> = (0..16)
        .map(|i| Request {
            client: i,
            seq: 1,
            payload: vec![i as u8; 64],
            signature: None,
        })
        .collect();
    let (codec_ns, ..) = measure(|| {
        let bytes = encode_batch(black_box(&batch));
        black_box(decode_batch(&bytes).unwrap());
    });
    // Merkle membership verification — the light-client hot path: one
    // chunk proof checked against a certified root over a 64 KiB state
    // (256 chunks, 8-deep path).
    let state = vec![0xA5u8; 64 * 1024];
    let root = merkle::chunked_root(&state, merkle::STATE_CHUNK);
    let proof = merkle::prove_chunk(&state, merkle::STATE_CHUNK, 37);
    let chunk = &state[37 * merkle::STATE_CHUNK..38 * merkle::STATE_CHUNK];
    let (merkle_ns, ..) = measure(|| {
        assert!(merkle::verify(
            black_box(&root),
            black_box(chunk),
            black_box(&proof)
        ));
    });
    gate.measured.insert("sha256_4k_ns".into(), sha_ns as f64);
    gate.measured
        .insert("batch_roundtrip_ns".into(), codec_ns as f64);
    gate.measured
        .insert("merkle_proof_verify_ns".into(), merkle_ns as f64);
    if !print_baseline {
        gate.ceiling("sha256_4k_ns", sha_ns as f64, 8.0);
        gate.ceiling("batch_roundtrip_ns", codec_ns as f64, 8.0);
        gate.ceiling("merkle_proof_verify_ns", merkle_ns as f64, 8.0);
    }

    if print_baseline {
        println!("{{");
        let entries: Vec<String> = gate
            .measured
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v}"))
            .collect();
        println!("{}", entries.join(",\n"));
        println!("}}");
        return;
    }
    if gate.failures.is_empty() {
        println!("bench_check: all gates passed");
    } else {
        eprintln!("bench_check: {} gate(s) failed:", gate.failures.len());
        for f in &gate.failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
