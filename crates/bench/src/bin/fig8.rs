//! Regenerates **Figure 8**: time for a (re)joining replica to update, as a
//! function of chain length, for checkpoint periods {none, 500, 1000, 2000}.
//!
//! A joining replica receives the latest snapshot (covering every block up
//! to the last checkpoint) plus the block suffix after it, then installs the
//! snapshot and replays the suffix. Without checkpoints it must replay the
//! whole chain. The timing uses the same hardware model as the cluster
//! simulations: snapshot transfer at NIC bandwidth, installation per byte,
//! block replay per transaction.
//!
//! ```text
//! cargo run --release -p smartchain-bench --bin fig8
//! ```

use smartchain_sim::hw::HwSpec;
use smartchain_sim::{Time, SECOND};

/// Blocks are full batches (512 txs of ~440 wire bytes, as in Fig. 6 runs).
const TXS_PER_BLOCK: u64 = 512;
const BLOCK_BYTES: u64 = 512 * 440 + 200;
/// Application state for this experiment (modest, so block replay dominates
/// as in the paper's figure — its checkpointed curves stay below ~10 s).
const STATE_BYTES: u64 = 100_000_000;
/// Snapshot install cost per byte (deserialize + rebuild the UTXO table).
const INSTALL_NS_PER_BYTE: u64 = 10;
/// Per-transaction replay cost (NodeConfig::execute_ns).
const REPLAY_NS_PER_TX: u64 = 6_000;

/// Update time for a chain of `blocks` with checkpoint period `z`
/// (`z == 0` means checkpoints disabled).
fn update_time(hw: &HwSpec, blocks: u64, z: u64) -> Time {
    let last_checkpoint = blocks.checked_div(z).map_or(0, |q| q * z);
    let suffix_blocks = blocks - last_checkpoint;
    let mut t: Time = 0;
    if last_checkpoint > 0 {
        // Snapshot travels over the network and is installed.
        t += hw.nic.transmit_time(STATE_BYTES as usize);
        t += hw.disk.read_time(STATE_BYTES as usize); // provider reads it
        t += INSTALL_NS_PER_BYTE * STATE_BYTES; // install cost
    }
    // Suffix blocks: transfer + replay.
    let suffix_bytes = suffix_blocks * BLOCK_BYTES;
    t += hw.nic.transmit_time(suffix_bytes as usize);
    t += REPLAY_NS_PER_TX * suffix_blocks * TXS_PER_BLOCK;
    t
}

fn main() {
    let hw = HwSpec::paper_testbed();
    println!("Figure 8 — replica update time (seconds) vs chain length");
    println!("paper reference: no-ckpt grows linearly to ~45s at 10k blocks; checkpointed configs stay low (sawtooth)");
    println!();
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10}",
        "#blocks", "no-ckpt", "z=500", "z=1000", "z=2000"
    );
    for blocks in (0..=10_000u64).step_by(500) {
        let row: Vec<f64> = [0u64, 500, 1000, 2000]
            .iter()
            .map(|&z| update_time(&hw, blocks, z) as f64 / SECOND as f64)
            .collect();
        println!(
            "{:>9} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            blocks, row[0], row[1], row[2], row[3]
        );
    }
    println!();
    println!(
        "(state: 100MB snapshot; blocks of {TXS_PER_BLOCK} txs; replay {}us/tx)",
        REPLAY_NS_PER_TX / 1000
    );
}
