//! Regenerates **Figure 6**: SMARTCHAIN throughput for consortium sizes
//! n ∈ {4, 7, 10} under all persistence configurations — Si+Sy (signatures +
//! synchronous writes), Si (signatures only), Sy (sync writes only), N
//! (neither) — for the strong and weak variants, plus the Durable-SMaRt
//! baseline (no blockchain layer).
//!
//! ```text
//! cargo run --release -p smartchain-bench --bin fig6
//! ```

use smartchain_bench::{run_smartchain, run_smr_coin, RunResult, Scale};
use smartchain_core::node::{Persistence, Variant};
use smartchain_smr::actor::{AppLedger, DurabilityMode, SigMode};

fn cell(r: &RunResult) -> String {
    format!("{:>6.1}k", r.throughput / 1000.0)
}

fn main() {
    // Half the Table I workload per cell: the sweep spans 36 cluster runs.
    let scale = Scale {
        requests_per_client: 30,
        ..Scale::default()
    };
    println!(
        "Figure 6 — SMARTCHAIN throughput (ktxs/sec), {} clients",
        scale.clients()
    );
    println!("paper reference n=4: strong Si+Sy ~12k, weak Si+Sy ~14k, strong Sy ~18k, weak Sy ~26k, Durable-SMaRt N ~33k");
    println!();
    let configs = [
        ("Si+Sy", true, Persistence::Sync),
        ("Si   ", true, Persistence::Async),
        ("Sy   ", false, Persistence::Sync),
        ("N    ", false, Persistence::Memory),
    ];
    for n in [4usize, 7, 10] {
        println!("== n = {n} ==");
        for variant in [Variant::Strong, Variant::Weak] {
            let name = match variant {
                Variant::Strong => "strong blockchain",
                Variant::Weak => "weak blockchain  ",
            };
            let mut row = format!("{name} :");
            for (label, sigs, persistence) in configs {
                let r = run_smartchain(n, variant, persistence, sigs, scale, 2);
                row.push_str(&format!("  {label}={}", cell(&r)));
            }
            println!("{row}");
        }
        // Durable-SMaRt baseline rows (no blockchain layer).
        let mut row = String::from("Durable-SMaRt    :");
        for (label, sig_mode, ledger) in [
            ("Si+Sy", SigMode::Parallel, AppLedger::None),
            ("Si   ", SigMode::Parallel, AppLedger::None),
            ("Sy   ", SigMode::None, AppLedger::None),
            ("N    ", SigMode::None, AppLedger::None),
        ] {
            // Si+Sy / Sy use the durable layer (sync); Si / N run in memory.
            let durability = if label.trim().ends_with("Sy") || label == "Sy   " {
                DurabilityMode::DuraSmart
            } else {
                DurabilityMode::None
            };
            let r = run_smr_coin(n, sig_mode, ledger, durability, scale, 2);
            row.push_str(&format!("  {label}={}", cell(&r)));
        }
        println!("{row}");
        println!();
    }
}
