//! Regenerates **Figure 7**: SMARTCHAIN (strong, signatures + synchronous
//! writes) throughput over time with membership events. The paper runs 600
//! wall-clock seconds with events at 120/240/360/480 s; this binary replays
//! the same sequence on a 4×-compressed timeline (join 30 s, crash 60 s,
//! recover 90 s, leave 120 s over 150 s) so the figure regenerates in
//! minutes — the *events and their effects* are identical, only the quiet
//! stretches between them are shortened. 600 clients; the application state
//! is modeled at 100 MB (the paper uses 1 GB/8M UTXOs; scaled with the
//! timeline so state transfers occupy the same *fraction* of the run — a
//! full-size transfer monopolizes the 1 Gbps NIC for ~8 s, which on the
//! compressed timeline would smear across every event window).
//!
//! ```text
//! cargo run --release -p smartchain-bench --bin fig7
//! ```

use smartchain_coin::workload::{authorized_minters, CoinFactory};
use smartchain_coin::SmartCoinApp;
use smartchain_core::harness::{ChainClusterBuilder, NodeSchedule};
use smartchain_core::node::{NodeConfig, Persistence, SigMode, Variant};
use smartchain_sim::hw::HwSpec;
use smartchain_sim::SECOND;
use smartchain_smr::ordering::OrderingConfig;

fn main() {
    let replicas = 4usize;
    let client_actors = 4usize;
    let logical_per_actor = 150u32; // 600 clients (as in the paper)
                                    // Clients issue effectively unbounded traffic for the 600s window.
    let clients: Vec<u64> = (0..client_actors)
        .flat_map(|a| {
            (0..logical_per_actor)
                .map(move |s| smartchain_core::node::client_id(replicas + 1 + a, s))
        })
        .collect();
    let minters = authorized_minters(clients);
    let config = NodeConfig {
        variant: Variant::Strong,
        persistence: Persistence::Sync,
        sig_mode: SigMode::Parallel,
        ordering: OrderingConfig {
            max_batch: 512,
            ..OrderingConfig::default()
        },
        execute_ns: 8_000,
        reply_size: 380,
        state_size: 100_000_000, // see module docs: scaled with the timeline
        install_ns_per_byte: 20,
        snapshot_ns_per_byte: 20,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(replicas, SmartCoinApp::from_genesis_data)
        .node_config(config)
        .hw(HwSpec::paper_testbed())
        .seed(7)
        .app_data(minters)
        // Checkpoint every z blocks; calibrated so one lands mid-run.
        .checkpoint_period(1800)
        .extra_node(NodeSchedule {
            join_at: Some(30 * SECOND),
            leave_at: Some(120 * SECOND),
        })
        .clients(client_actors, logical_per_actor, None)
        .client_factory(|| Box::new(CoinFactory::new(100)))
        .build();
    // Replica 3 crashes at 240s and recovers at 360s.
    cluster.sim().crash(3, 60 * SECOND);
    cluster.sim().recover(3, 90 * SECOND);
    println!("Figure 7 — throughput timeline (strong variant, Si+Sy, 600 clients, 100MB state)");
    println!(
        "events (4x-compressed timeline): join@30s crash@60s recover@90s ckpt@~105s leave@120s"
    );
    println!();
    println!("{:>6} {:>10}  bar", "t(s)", "ktxs/s");
    let mut printed = 0u64;
    for window_end in 1..=30u64 {
        let deadline = window_end * 5 * SECOND;
        cluster.run_until(deadline);
        let node = cluster.node::<SmartCoinApp>(0);
        // Committed txs in this 10s window.
        let committed: u64 = node
            .commit_log()
            .iter()
            .filter(|(t, _)| *t >= (window_end - 1) * 5 * SECOND && *t < deadline)
            .map(|(_, c)| *c)
            .sum();
        let ktps = committed as f64 / 5.0 / 1000.0;
        let bar = "#".repeat((ktps * 6.0).round().max(0.0) as usize);
        println!("{:>6} {:>10.2}  {bar}", window_end * 5, ktps);
        printed += committed;
    }
    println!();
    let node0 = cluster.node::<SmartCoinApp>(0);
    println!(
        "total committed: {printed} txs; final height: {:?}",
        node0.height()
    );
    println!(
        "final view: {:?} (id, members)",
        node0.view().map(|v| (v.id, v.n()))
    );
    let joiner = cluster.node::<SmartCoinApp>(4);
    println!(
        "replica 4 active at end: {} (joined @30s, left @120s)",
        joiner.is_active()
    );
}
