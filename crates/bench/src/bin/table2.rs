//! Regenerates **Table II**: throughput and latency of SMARTCHAIN
//! (strong/weak, signatures + synchronous writes) versus the Tendermint and
//! Hyperledger-Fabric models, all at maximum durability with n = 4.
//!
//! ```text
//! cargo run --release -p smartchain-bench --bin table2
//! ```

use smartchain_bench::{fmt_latency, fmt_tput, run_fabric, run_smartchain, run_tendermint, Scale};
use smartchain_core::node::{Persistence, Variant};

fn main() {
    let scale = Scale::default();
    println!(
        "Table II — throughput (txs/sec) and latency (sec), n=4, {} clients",
        scale.clients()
    );
    println!("paper reference: SC-strong 12560/0.210, SC-weak 14547/0.200, Tendermint 1602/1.378, Fabric 381/1.602");
    println!();
    let strong = run_smartchain(4, Variant::Strong, Persistence::Sync, true, scale, 3);
    println!(
        "SMARTCHAIN Strong  : {}   latency {}",
        fmt_tput(&strong),
        fmt_latency(&strong)
    );
    let weak = run_smartchain(4, Variant::Weak, Persistence::Sync, true, scale, 3);
    println!(
        "SMARTCHAIN Weak    : {}   latency {}",
        fmt_tput(&weak),
        fmt_latency(&weak)
    );
    let tm = run_tendermint(4, scale, 3);
    println!(
        "Tendermint (model) : {}   latency {}",
        fmt_tput(&tm),
        fmt_latency(&tm)
    );
    let fab = run_fabric(4, scale, 3);
    println!(
        "Fabric (model)     : {}   latency {}",
        fmt_tput(&fab),
        fmt_latency(&fab)
    );
    println!();
    println!(
        "shape check: SC-strong/Tendermint = {:.1}x (paper ~7.8x), SC-strong/Fabric = {:.1}x (paper ~33x)",
        strong.throughput / tm.throughput,
        strong.throughput / fab.throughput
    );
}
