//! Regenerates **Table I**: SMaRtCoin average throughput on plain BFT-SMaRt
//! with different signature-verification and storage strategies (n = 4).
//!
//! ```text
//! cargo run --release -p smartchain-bench --bin table1
//! ```

use smartchain_bench::{fmt_tput, run_smr_coin, Scale};
use smartchain_smr::actor::{AppLedger, DurabilityMode, SigMode};

fn main() {
    let scale = Scale::default();
    println!(
        "Table I — SMaRtCoin throughput (txs/sec), n=4, {} clients",
        scale.clients()
    );
    println!("paper reference (SPEND): seq+sync 1729, seq+async 1760, par+sync 3881, par+async 4027, Dura-SMaRt 14829");
    println!();
    let configs: [(&str, SigMode, AppLedger, DurabilityMode); 5] = [
        (
            "Seq. verification, sync writes ",
            SigMode::Sequential,
            AppLedger::Sync,
            DurabilityMode::None,
        ),
        (
            "Seq. verification, async writes",
            SigMode::Sequential,
            AppLedger::Async,
            DurabilityMode::None,
        ),
        (
            "Par. verification, sync writes ",
            SigMode::Parallel,
            AppLedger::Sync,
            DurabilityMode::None,
        ),
        (
            "Par. verification, async writes",
            SigMode::Parallel,
            AppLedger::Async,
            DurabilityMode::None,
        ),
        (
            "Dura-SMaRt durability layer    ",
            SigMode::Parallel,
            AppLedger::None,
            DurabilityMode::DuraSmart,
        ),
    ];
    let mut results = Vec::new();
    for (label, sig, ledger, durability) in configs {
        let r = run_smr_coin(4, sig, ledger, durability, scale, 1);
        println!("{label} : {}   (total {} txs)", fmt_tput(&r), r.total);
        results.push((label, r));
    }
    println!();
    let seq = results[0].1.throughput;
    let par = results[2].1.throughput;
    let dura = results[4].1.throughput;
    println!(
        "shape check: parallel/sequential = {:.2}x (paper ~2.2x)",
        par / seq
    );
    println!(
        "shape check: dura-smart/parallel-sync = {:.2}x (paper ~3.8x)",
        dura / par
    );
}
