//! A Tendermint-style replica model.
//!
//! Captures the structural cost sources the paper attributes to Tendermint
//! (§VII-a):
//!
//! * clients talk to one node; transactions propagate by **gossip** (each
//!   node forwards new transactions to every peer — per-transaction network
//!   cost instead of SmartChain's batched PROPOSE);
//! * a rotating proposer assembles a block each *height* and runs
//!   prevote/precommit rounds (n² small messages, like PBFT);
//! * each replica writes the block **twice** — once when it commits (before
//!   execution) and once after execution with the results;
//! * a `timeout_commit` pause between heights (Tendermint's default 1 s),
//!   which dominates client latency.

use smartchain_sim::metrics::ThroughputMeter;
#[cfg(test)]
use smartchain_sim::MILLI;
use smartchain_sim::{Actor, Ctx, Event, NodeId, Time, SECOND};
use smartchain_smr::app::Application;
use smartchain_smr::ordering::SmrEnvelope;
use smartchain_smr::types::{Reply, Request};
use std::collections::{HashMap, HashSet, VecDeque};

/// Wire messages of the Tendermint model.
#[derive(Clone, Debug)]
pub enum TmMsg {
    /// A transaction from a client (or a peer's gossip).
    Tx(Request),
    /// Gossip relay of a transaction.
    Gossip(Request),
    /// Proposer's block for a height.
    Proposal {
        /// Block height.
        height: u64,
        /// The proposed transactions.
        txs: Vec<Request>,
    },
    /// Prevote (phase 0) / precommit (phase 1) for a height.
    Vote {
        /// Block height.
        height: u64,
        /// 0 = prevote, 1 = precommit.
        phase: u8,
    },
    /// Reply to a client.
    Reply(Reply),
}

impl SmrEnvelope for TmMsg {
    fn from_smr(msg: smartchain_smr::ordering::SmrMsg) -> Self {
        match msg {
            smartchain_smr::ordering::SmrMsg::Request(r) => TmMsg::Tx(r),
            smartchain_smr::ordering::SmrMsg::Reply(r) => TmMsg::Reply(r),
            _ => unreachable!("clients only produce requests"),
        }
    }
    fn as_reply(&self) -> Option<&Reply> {
        match self {
            TmMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
    fn envelope_size(&self) -> usize {
        self.wire_size()
    }
}

impl TmMsg {
    /// Estimated wire size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            TmMsg::Tx(r) | TmMsg::Gossip(r) => 8 + r.wire_size(),
            TmMsg::Proposal { txs, .. } => 64 + txs.iter().map(Request::wire_size).sum::<usize>(),
            TmMsg::Vote { .. } => 120, // height + round + block id + signature
            TmMsg::Reply(r) => 8 + r.wire_size(),
        }
    }
}

/// Model parameters.
#[derive(Clone, Copy, Debug)]
pub struct TmConfig {
    /// Maximum transactions per block.
    pub max_block: usize,
    /// Pause between committed heights (Tendermint `timeout_commit`).
    pub commit_interval: Time,
    /// Per-height protocol overhead beyond message transfer: proposer/vote
    /// timeouts and gossip batching waits (Tendermint's consensus timeouts).
    pub round_overhead: Time,
    /// Whether client signatures are verified on arrival.
    pub verify_signatures: bool,
}

impl Default for TmConfig {
    fn default() -> Self {
        TmConfig {
            max_block: 512,
            commit_interval: SECOND,
            round_overhead: 300 * 1_000_000, // 300 ms
            verify_signatures: true,
        }
    }
}

const TOKEN_NEXT_HEIGHT: u64 = 1;

/// One Tendermint-model replica.
pub struct TendermintNode<A: Application> {
    me: usize,
    peers: Vec<NodeId>,
    f: usize,
    config: TmConfig,
    app: A,
    mempool: VecDeque<Request>,
    seen: HashSet<(u64, u64)>,
    /// Which node first received each tx (it owes the client the reply).
    origin: HashMap<(u64, u64), bool>,
    height: u64,
    prevotes: HashMap<u64, HashSet<usize>>,
    precommits: HashMap<u64, HashSet<usize>>,
    proposal: HashMap<u64, Vec<Request>>,
    sent_prevote: HashSet<u64>,
    sent_precommit: HashSet<u64>,
    committed: HashSet<u64>,
    /// Set when this node is waiting out `timeout_commit`.
    pausing: bool,
    meter: ThroughputMeter,
}

impl<A: Application> TendermintNode<A> {
    /// Creates replica `me` of `peers.len()` nodes.
    pub fn new(me: usize, peers: Vec<NodeId>, app: A, config: TmConfig) -> TendermintNode<A> {
        let n = peers.len();
        TendermintNode {
            me,
            peers,
            f: (n - 1) / 3,
            config,
            app,
            mempool: VecDeque::new(),
            seen: HashSet::new(),
            origin: HashMap::new(),
            height: 1,
            prevotes: HashMap::new(),
            precommits: HashMap::new(),
            proposal: HashMap::new(),
            sent_prevote: HashSet::new(),
            sent_precommit: HashSet::new(),
            committed: HashSet::new(),
            pausing: false,
            meter: ThroughputMeter::new(1_000),
        }
    }

    /// Throughput meter.
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// Current block height.
    pub fn height(&self) -> u64 {
        self.height
    }

    fn n(&self) -> usize {
        self.peers.len()
    }

    fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    fn proposer(&self, height: u64) -> usize {
        (height as usize) % self.n()
    }

    fn broadcast(&self, msg: &TmMsg, ctx: &mut Ctx<'_, TmMsg>) {
        for (r, &node) in self.peers.iter().enumerate() {
            if r != self.me {
                ctx.send(node, msg.clone(), msg.wire_size());
            }
        }
    }

    fn admit_tx(&mut self, tx: Request, gossip: bool, ctx: &mut Ctx<'_, TmMsg>) {
        if !self.seen.insert(tx.id()) {
            return;
        }
        if self.config.verify_signatures {
            // Mempool CheckTx runs on the (modeled) pool.
            let _ = ctx.pool_charge(ctx.hw().cpu.verify_ns, 1);
            if !tx.verify_signature() {
                return;
            }
        }
        if !gossip {
            self.origin.insert(tx.id(), true);
        }
        // Gossip the transaction to all peers (per-tx network cost).
        let relay = TmMsg::Gossip(tx.clone());
        self.broadcast(&relay, ctx);
        self.mempool.push_back(tx);
        self.maybe_propose(ctx);
    }

    fn maybe_propose(&mut self, ctx: &mut Ctx<'_, TmMsg>) {
        if self.proposer(self.height) != self.me
            || self.pausing
            || self.mempool.is_empty()
            || self.proposal.contains_key(&self.height)
        {
            return;
        }
        let take = self.mempool.len().min(self.config.max_block);
        let txs: Vec<Request> = self.mempool.iter().take(take).cloned().collect();
        self.proposal.insert(self.height, txs.clone());
        let msg = TmMsg::Proposal {
            height: self.height,
            txs,
        };
        ctx.charge(ctx.hw().cpu.sign_ns);
        self.broadcast(&msg, ctx);
        self.on_proposal_ready(self.height, ctx);
    }

    fn on_proposal_ready(&mut self, height: u64, ctx: &mut Ctx<'_, TmMsg>) {
        if height != self.height || !self.sent_prevote.insert(height) {
            return;
        }
        ctx.charge(ctx.hw().cpu.sign_ns);
        let msg = TmMsg::Vote { height, phase: 0 };
        self.broadcast(&msg, ctx);
        self.record_vote(self.me, height, 0, ctx);
    }

    fn record_vote(&mut self, from: usize, height: u64, phase: u8, ctx: &mut Ctx<'_, TmMsg>) {
        ctx.charge(ctx.hw().cpu.verify_ns / 4);
        let quorum = self.quorum();
        let set = if phase == 0 {
            self.prevotes.entry(height).or_default()
        } else {
            self.precommits.entry(height).or_default()
        };
        set.insert(from);
        let count = set.len();
        if phase == 0 && count >= quorum && !self.sent_precommit.contains(&height) {
            self.sent_precommit.insert(height);
            ctx.charge(ctx.hw().cpu.sign_ns);
            let msg = TmMsg::Vote { height, phase: 1 };
            self.broadcast(&msg, ctx);
            self.record_vote(self.me, height, 1, ctx);
        } else if phase == 1 && count >= quorum {
            self.try_commit(height, ctx);
        }
    }

    fn try_commit(&mut self, height: u64, ctx: &mut Ctx<'_, TmMsg>) {
        if height != self.height || self.committed.contains(&height) {
            return;
        }
        let Some(txs) = self.proposal.get(&height).cloned() else {
            return; // block not yet received
        };
        self.committed.insert(height);
        // Consensus-timeout overhead of the round (charged once per height).
        ctx.charge(self.config.round_overhead);
        let block_bytes: usize = 64 + txs.iter().map(Request::wire_size).sum::<usize>();
        // First write: the committed block, synchronously (WAL + block).
        ctx.disk_write(block_bytes, true, 0);
        ctx.charge(ctx.hw().cpu.disk_stall_placeholder());
        // Execute.
        ctx.charge(ctx.hw().cpu.execute_tx_ns * txs.len() as Time);
        let mut replies = Vec::new();
        for tx in &txs {
            let result = self.app.execute(tx);
            self.mempool.retain(|p| p.id() != tx.id());
            if self.origin.remove(&tx.id()).is_some() {
                replies.push(Reply {
                    client: tx.client,
                    seq: tx.seq,
                    result,
                    replica: self.me,
                });
            }
        }
        self.meter.record(ctx.now(), txs.len() as u64);
        // Second write: results/state, synchronously again.
        ctx.disk_write(block_bytes / 2 + 64, true, 0);
        for reply in replies {
            let node = smartchain_smr::actor::client_node(reply.client);
            let msg = TmMsg::Reply(reply);
            let size = msg.wire_size();
            ctx.send(node, msg, size);
        }
        // Advance after timeout_commit.
        self.pausing = true;
        ctx.set_timer(self.config.commit_interval, TOKEN_NEXT_HEIGHT);
    }
}

/// Cost-model helper: Tendermint models do not stall the CPU on disk — the
/// disk model already charges the device; this hook exists so the call site
/// reads naturally and future calibration can add CPU overhead.
trait DiskStall {
    fn disk_stall_placeholder(&self) -> Time;
}

impl DiskStall for smartchain_sim::hw::CpuModel {
    fn disk_stall_placeholder(&self) -> Time {
        0
    }
}

impl<A: Application> Actor<TmMsg> for TendermintNode<A> {
    fn on_event(&mut self, event: Event<TmMsg>, ctx: &mut Ctx<'_, TmMsg>) {
        match event {
            Event::Start => {}
            Event::Timer {
                token: TOKEN_NEXT_HEIGHT,
            } => {
                self.pausing = false;
                self.height += 1;
                // Old-height bookkeeping can be dropped.
                let h = self.height;
                self.prevotes.retain(|&k, _| k >= h);
                self.precommits.retain(|&k, _| k >= h);
                self.proposal.retain(|&k, _| k >= h);
                self.maybe_propose(ctx);
                // A proposal for this height may already be buffered.
                self.on_proposal_ready(self.height, ctx);
                let precommitted = self
                    .precommits
                    .get(&self.height)
                    .is_some_and(|s| s.len() >= self.quorum());
                if precommitted {
                    self.try_commit(self.height, ctx);
                }
            }
            Event::Timer { .. } => {}
            Event::Message { from, msg } => {
                ctx.charge(ctx.hw().cpu.message_overhead_ns);
                let from_replica = self.peers.iter().position(|&p| p == from);
                match msg {
                    TmMsg::Tx(tx) => self.admit_tx(tx, false, ctx),
                    TmMsg::Gossip(tx) => {
                        // Don't re-gossip what a peer sent us (they already
                        // flooded it); just pool it.
                        if self.seen.insert(tx.id()) {
                            if self.config.verify_signatures {
                                let _ = ctx.pool_charge(ctx.hw().cpu.verify_ns, 1);
                                if !tx.verify_signature() {
                                    return;
                                }
                            }
                            self.mempool.push_back(tx);
                            self.maybe_propose(ctx);
                        }
                    }
                    TmMsg::Proposal { height, txs } => {
                        if from_replica == Some(self.proposer(height)) {
                            ctx.charge(
                                ctx.hw()
                                    .cpu
                                    .hash_time(txs.iter().map(Request::wire_size).sum::<usize>()),
                            );
                            self.proposal.entry(height).or_insert(txs);
                            self.on_proposal_ready(height, ctx);
                        }
                    }
                    TmMsg::Vote { height, phase } => {
                        if let Some(r) = from_replica {
                            self.record_vote(r, height, phase, ctx);
                        }
                    }
                    TmMsg::Reply(_) => {}
                }
            }
            Event::OpDone { .. } | Event::Crash | Event::Recover => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_sim::hw::HwSpec;
    use smartchain_sim::Cluster;
    use smartchain_smr::app::CounterApp;
    use smartchain_smr::client::{ClientActor, ClientConfig, CounterFactory};

    fn build(n: usize, clients: u32, per_client: u64, config: TmConfig) -> Cluster<TmMsg> {
        let peers: Vec<NodeId> = (0..n).collect();
        let mut actors: Vec<Box<dyn Actor<TmMsg>>> = Vec::new();
        for i in 0..n {
            actors.push(Box::new(TendermintNode::new(
                i,
                peers.clone(),
                CounterApp::new(),
                config,
            )));
        }
        // Tendermint clients talk to ONE node and need a single reply.
        actors.push(Box::new(ClientActor::<TmMsg>::new(
            n,
            vec![0],
            0, // f = 0 -> one matching reply suffices
            ClientConfig {
                logical_clients: clients,
                requests_per_client: Some(per_client),
                ..ClientConfig::default()
            },
            Box::new(CounterFactory::new(true)),
        )));
        Cluster::new(actors, HwSpec::test_fast(), 11)
    }

    #[test]
    fn commits_transactions_across_heights() {
        let config = TmConfig {
            commit_interval: 10 * MILLI,
            round_overhead: 0,
            ..TmConfig::default()
        };
        let mut cluster = build(4, 3, 5, config);
        cluster.run_until(10 * SECOND);
        let node0 = cluster
            .actor(0)
            .as_any()
            .downcast_ref::<TendermintNode<CounterApp>>()
            .unwrap();
        assert_eq!(node0.meter().total(), 15, "all txs committed");
        assert!(node0.height() > 1, "heights advanced");
        // All replicas committed the same count.
        for i in 1..4 {
            let node = cluster
                .actor(i)
                .as_any()
                .downcast_ref::<TendermintNode<CounterApp>>()
                .unwrap();
            assert_eq!(node.meter().total(), 15, "replica {i}");
        }
    }

    #[test]
    fn commit_interval_caps_throughput() {
        // With a 100ms interval + 100ms round overhead and 1 client
        // (1 outstanding tx), roughly 2s / 0.2s = ~10 txs complete.
        let config = TmConfig {
            commit_interval: 100 * MILLI,
            round_overhead: 100 * MILLI,
            ..TmConfig::default()
        };
        let mut cluster = build(4, 1, 1000, config);
        cluster.run_until(2 * SECOND);
        let node0 = cluster
            .actor(0)
            .as_any()
            .downcast_ref::<TendermintNode<CounterApp>>()
            .unwrap();
        let total = node0.meter().total();
        assert!(
            (5..=20).contains(&total),
            "expected ~10 txs in 2s, got {total}"
        );
    }

    #[test]
    fn double_write_visible_in_disk_stats() {
        let config = TmConfig {
            commit_interval: 10 * MILLI,
            round_overhead: 0,
            ..TmConfig::default()
        };
        let mut cluster = build(4, 1, 5, config);
        cluster.run_until(5 * SECOND);
        // Two synchronous writes per committed block on every replica.
        for i in 0..4 {
            let syncs = cluster.sim_ref().disk_syncs(i);
            assert!(syncs >= 10, "replica {i}: {syncs} syncs for 5 blocks");
        }
    }
}
