//! Comparator systems for the paper's evaluation:
//!
//! * [`tendermint`] — a Tendermint-style replica model: rotating proposer,
//!   PBFT-like prevote/precommit rounds, per-transaction gossip, a commit
//!   interval (`timeout_commit`), and the double block write (before *and*
//!   after execution) the paper calls out in §VII as the reason Tendermint
//!   trails SMARTCHAIN.
//! * [`fabric`] — a Hyperledger-Fabric-style execute-order-validate
//!   pipeline model: endorsement (execute + sign at peers), BFT ordering,
//!   then a validation phase that re-verifies every transaction's
//!   endorsements before the ledger write.
//!
//! Both run on the same simulated hardware as SmartChain, so the measured
//! gaps come from their *structures* (extra phases, per-transaction crypto
//! multiplicity, write patterns), exactly the factors the paper identifies.
//! They are simulation models of the comparators, not reimplementations —
//! see DESIGN.md's substitution table.
//!
//! The third baseline the paper measures — SMaRtCoin naively hosted on
//! BFT-SMaRt (Table I) — needs no code here: it is the
//! `smartchain_smr::actor::ReplicaActor` with the `AppLedger`/`SigMode`/
//! `DurabilityMode` policy knobs.

pub mod fabric;
pub mod tendermint;
