//! A Hyperledger-Fabric-style execute-order-validate pipeline model.
//!
//! Fabric's transaction flow (§VII-a / the Fabric paper):
//!
//! 1. the client sends the transaction to **endorsing peers**, which
//!    *execute* it speculatively and return a signed endorsement;
//! 2. the client assembles the endorsements and submits the enveloped
//!    transaction to the **ordering service**, which batches transactions
//!    into blocks (here: a BFT ordering round among orderers);
//! 3. every peer then runs the **validation phase**: verify the client
//!    signature and each endorsement signature, run the MVCC read-set check,
//!    and finally append the block to the ledger (synchronous write).
//!
//! The per-transaction cost is therefore several signature operations and an
//! extra round trip *before* ordering even starts — the structural reason the
//! paper measures Fabric at ~33× below SMARTCHAIN under maximum durability.
//!
//! The model folds the client-side endorsement assembly into the peer actors
//! (the simulated client sends its transaction once; peer 0 acts as the
//! submitting gateway) so the standard closed-loop client actor drives it.

use smartchain_sim::metrics::ThroughputMeter;
use smartchain_sim::{Actor, Ctx, Event, NodeId, Time, MILLI};
use smartchain_smr::app::Application;
use smartchain_smr::ordering::SmrEnvelope;
use smartchain_smr::types::{Reply, Request};
use std::collections::{HashMap, HashSet, VecDeque};

/// Wire messages of the Fabric model.
#[derive(Clone, Debug)]
pub enum FabMsg {
    /// Client transaction arriving at the gateway peer.
    Submit(Request),
    /// Gateway -> endorser: please endorse.
    EndorseReq(Request),
    /// Endorser -> gateway: signed endorsement.
    EndorseRep {
        /// The endorsed transaction id.
        tx: (u64, u64),
        /// Which endorser signed.
        endorser: usize,
    },
    /// Gateway -> orderers: enveloped transaction with endorsements.
    Envelope(Request),
    /// Ordering round among orderers (model: single round of echoes).
    OrderEcho {
        /// Block sequence number.
        block: u64,
    },
    /// Orderer -> peers: the ordered block.
    Block {
        /// Block sequence number.
        block: u64,
        /// Ordered transactions.
        txs: Vec<Request>,
    },
    /// Reply to a client.
    Reply(Reply),
}

impl SmrEnvelope for FabMsg {
    fn from_smr(msg: smartchain_smr::ordering::SmrMsg) -> Self {
        match msg {
            smartchain_smr::ordering::SmrMsg::Request(r) => FabMsg::Submit(r),
            smartchain_smr::ordering::SmrMsg::Reply(r) => FabMsg::Reply(r),
            _ => unreachable!("clients only produce requests"),
        }
    }
    fn as_reply(&self) -> Option<&Reply> {
        match self {
            FabMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
    fn envelope_size(&self) -> usize {
        self.wire_size()
    }
}

impl FabMsg {
    /// Estimated wire size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            FabMsg::Submit(r) | FabMsg::EndorseReq(r) => 8 + r.wire_size(),
            FabMsg::EndorseRep { .. } => 8 + 16 + 65,
            // Envelopes carry the tx plus `endorsements` signatures.
            FabMsg::Envelope(r) => 8 + r.wire_size() + 2 * 73,
            FabMsg::OrderEcho { .. } => 48,
            FabMsg::Block { txs, .. } => {
                64 + txs.iter().map(|t| t.wire_size() + 2 * 73).sum::<usize>()
            }
            FabMsg::Reply(r) => 8 + r.wire_size(),
        }
    }
}

/// Model parameters.
#[derive(Clone, Copy, Debug)]
pub struct FabConfig {
    /// Endorsements required per transaction (a typical policy: 2).
    pub endorsements: usize,
    /// Maximum transactions per ordered block.
    pub max_block: usize,
    /// Block cut timeout (Fabric's `BatchTimeout`, default 2s; deployments
    /// tune it down — we default to 500ms as in the BFT-orderer paper).
    pub batch_timeout: Time,
    /// Extra per-transaction validation cost (VSCC policy evaluation &
    /// MVCC bookkeeping beyond raw signature verification).
    pub vscc_overhead_ns: Time,
}

impl Default for FabConfig {
    fn default() -> Self {
        FabConfig {
            endorsements: 2,
            max_block: 512,
            batch_timeout: 500 * MILLI,
            // VSCC policy evaluation + MVCC + state-DB writes per tx: the
            // dominant Fabric commit-path cost on the paper's testbed.
            vscc_overhead_ns: 2_400_000,
        }
    }
}

const TOKEN_BATCH: u64 = 1;

/// One Fabric-model node (acts as peer + endorser; node 0 also as gateway
/// and lead orderer).
pub struct FabricNode<A: Application> {
    me: usize,
    peers: Vec<NodeId>,
    config: FabConfig,
    app: A,
    /// Gateway state: endorsement tallies per in-flight transaction.
    endorsing: HashMap<(u64, u64), (Request, HashSet<usize>)>,
    /// Orderer state (node 0): queued envelopes and block sequence.
    order_queue: VecDeque<Request>,
    next_block: u64,
    batch_timer_armed: bool,
    /// Peer state: validated ledger height and origin tracking.
    origins: HashSet<(u64, u64)>,
    meter: ThroughputMeter,
    committed_blocks: u64,
}

impl<A: Application> FabricNode<A> {
    /// Creates node `me` of the `peers` organization.
    pub fn new(me: usize, peers: Vec<NodeId>, app: A, config: FabConfig) -> FabricNode<A> {
        FabricNode {
            me,
            peers,
            config,
            app,
            endorsing: HashMap::new(),
            order_queue: VecDeque::new(),
            next_block: 1,
            batch_timer_armed: false,
            origins: HashSet::new(),
            meter: ThroughputMeter::new(1_000),
            committed_blocks: 0,
        }
    }

    /// Throughput meter.
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// Blocks committed by this peer.
    pub fn committed_blocks(&self) -> u64 {
        self.committed_blocks
    }

    fn is_gateway(&self) -> bool {
        self.me == 0
    }

    fn cut_block(&mut self, ctx: &mut Ctx<'_, FabMsg>) {
        if self.order_queue.is_empty() {
            return;
        }
        let take = self.order_queue.len().min(self.config.max_block);
        let txs: Vec<Request> = self.order_queue.drain(..take).collect();
        let block = self.next_block;
        self.next_block += 1;
        // Model the BFT ordering round among orderers: an all-to-all echo of
        // the block hash (charged as messages to every peer) plus signing.
        ctx.charge(ctx.hw().cpu.sign_ns);
        let echo = FabMsg::OrderEcho { block };
        for (r, &node) in self.peers.iter().enumerate() {
            if r != self.me {
                ctx.send(node, echo.clone(), echo.wire_size());
            }
        }
        // Deliver the block to all peers (including ourselves, locally).
        let msg = FabMsg::Block {
            block,
            txs: txs.clone(),
        };
        for (r, &node) in self.peers.iter().enumerate() {
            if r != self.me {
                ctx.send(node, msg.clone(), msg.wire_size());
            }
        }
        self.validate_and_commit(block, txs, ctx);
    }

    /// The validation phase + ledger write (every peer).
    fn validate_and_commit(&mut self, _block: u64, txs: Vec<Request>, ctx: &mut Ctx<'_, FabMsg>) {
        let count = txs.len();
        // Per transaction: verify the client signature and each endorsement
        // signature (pool), then VSCC/MVCC on the committer thread.
        let verifies = count * (1 + self.config.endorsements);
        let _pool = ctx.pool_charge(ctx.hw().cpu.verify_ns, verifies);
        ctx.charge(self.config.vscc_overhead_ns * count as Time);
        ctx.charge(ctx.hw().cpu.execute_tx_ns * count as Time);
        let block_bytes = 64 + txs.iter().map(|t| t.wire_size() + 2 * 73).sum::<usize>();
        // Ledger append: synchronous (maximum durability configuration).
        ctx.disk_write(block_bytes, true, 0);
        self.meter.record(ctx.now(), count as u64);
        self.committed_blocks += 1;
        for tx in txs {
            let result = self.app.execute(&tx);
            if self.origins.remove(&tx.id()) {
                let reply = Reply {
                    client: tx.client,
                    seq: tx.seq,
                    result,
                    replica: self.me,
                };
                let node = smartchain_smr::actor::client_node(reply.client);
                let msg = FabMsg::Reply(reply);
                let size = msg.wire_size();
                ctx.send(node, msg, size);
            }
        }
    }
}

impl<A: Application> Actor<FabMsg> for FabricNode<A> {
    fn on_event(&mut self, event: Event<FabMsg>, ctx: &mut Ctx<'_, FabMsg>) {
        match event {
            Event::Start => {}
            Event::Timer { token: TOKEN_BATCH } => {
                self.batch_timer_armed = false;
                self.cut_block(ctx);
            }
            Event::Timer { .. } => {}
            Event::Message { from, msg } => {
                ctx.charge(ctx.hw().cpu.message_overhead_ns);
                match msg {
                    FabMsg::Submit(tx) => {
                        // Gateway: fan out endorsement requests.
                        if !self.is_gateway() {
                            return;
                        }
                        if self.endorsing.contains_key(&tx.id()) {
                            return;
                        }
                        self.origins.insert(tx.id());
                        let req = FabMsg::EndorseReq(tx.clone());
                        for (r, &node) in self.peers.iter().enumerate() {
                            if r != self.me && r <= self.config.endorsements {
                                ctx.send(node, req.clone(), req.wire_size());
                            }
                        }
                        // Gateway endorses locally too.
                        let _ = ctx.pool_charge(ctx.hw().cpu.verify_ns + ctx.hw().cpu.sign_ns, 1);
                        ctx.charge(ctx.hw().cpu.execute_tx_ns);
                        let mut set = HashSet::new();
                        set.insert(self.me);
                        self.endorsing.insert(tx.id(), (tx, set));
                    }
                    FabMsg::EndorseReq(tx) => {
                        // Endorser: verify, execute speculatively, sign.
                        let _ = ctx.pool_charge(ctx.hw().cpu.verify_ns + ctx.hw().cpu.sign_ns, 1);
                        ctx.charge(ctx.hw().cpu.execute_tx_ns);
                        let rep = FabMsg::EndorseRep {
                            tx: tx.id(),
                            endorser: self.me,
                        };
                        ctx.send(from, rep.clone(), rep.wire_size());
                    }
                    FabMsg::EndorseRep { tx, endorser } => {
                        let needed = self.config.endorsements;
                        let ready = {
                            let Some((_, set)) = self.endorsing.get_mut(&tx) else {
                                return;
                            };
                            set.insert(endorser);
                            set.len() > needed // self + `endorsements` peers
                        };
                        if ready {
                            if let Some((tx, _)) = self.endorsing.remove(&tx) {
                                // Enqueue for ordering (we are the orderer).
                                self.order_queue.push_back(tx);
                                if self.order_queue.len() >= self.config.max_block {
                                    self.cut_block(ctx);
                                } else if !self.batch_timer_armed {
                                    self.batch_timer_armed = true;
                                    ctx.set_timer(self.config.batch_timeout, TOKEN_BATCH);
                                }
                            }
                        }
                    }
                    FabMsg::Envelope(tx) => {
                        self.order_queue.push_back(tx);
                    }
                    FabMsg::OrderEcho { .. } => {
                        ctx.charge(ctx.hw().cpu.verify_ns / 4);
                    }
                    FabMsg::Block { block, txs } => {
                        self.validate_and_commit(block, txs, ctx);
                    }
                    FabMsg::Reply(_) => {}
                }
            }
            Event::OpDone { .. } | Event::Crash | Event::Recover => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_sim::hw::HwSpec;
    use smartchain_sim::{Cluster, SECOND};
    use smartchain_smr::app::CounterApp;
    use smartchain_smr::client::{ClientActor, ClientConfig, CounterFactory};

    fn build(n: usize, clients: u32, per_client: u64, config: FabConfig) -> Cluster<FabMsg> {
        let peers: Vec<NodeId> = (0..n).collect();
        let mut actors: Vec<Box<dyn Actor<FabMsg>>> = Vec::new();
        for i in 0..n {
            actors.push(Box::new(FabricNode::new(
                i,
                peers.clone(),
                CounterApp::new(),
                config,
            )));
        }
        actors.push(Box::new(ClientActor::<FabMsg>::new(
            n,
            vec![0], // clients talk to the gateway
            0,
            ClientConfig {
                logical_clients: clients,
                requests_per_client: Some(per_client),
                ..ClientConfig::default()
            },
            Box::new(CounterFactory::new(true)),
        )));
        Cluster::new(actors, HwSpec::test_fast(), 13)
    }

    #[test]
    fn pipeline_commits_all_transactions() {
        let config = FabConfig {
            batch_timeout: 5 * MILLI,
            ..FabConfig::default()
        };
        let mut cluster = build(4, 3, 5, config);
        cluster.run_until(10 * SECOND);
        for i in 0..4 {
            let node = cluster
                .actor(i)
                .as_any()
                .downcast_ref::<FabricNode<CounterApp>>()
                .unwrap();
            assert_eq!(node.meter().total(), 15, "peer {i} committed all txs");
            assert!(node.committed_blocks() >= 1);
        }
    }

    #[test]
    fn every_peer_writes_the_ledger() {
        let config = FabConfig {
            batch_timeout: 5 * MILLI,
            ..FabConfig::default()
        };
        let mut cluster = build(4, 2, 5, config);
        cluster.run_until(10 * SECOND);
        for i in 0..4 {
            assert!(cluster.sim_ref().disk_syncs(i) >= 1, "peer {i} never wrote");
        }
    }
}
