//! A crash-safe framed append-only log backed by a real file.
//!
//! Record framing: `[len: u32 LE][crc32(payload): u32 LE][payload]`. On open,
//! the file is scanned and truncated to the longest prefix of valid records —
//! a torn tail write (crash mid-append) is discarded, matching the recovery
//! behaviour SMR durability layers rely on.

use crate::{crc32, RecordLog, SyncPolicy};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// An append-only log stored in a single file.
#[derive(Debug)]
pub struct FileLog {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    /// Byte offset of each record's frame start (for random reads).
    offsets: Vec<u64>,
    /// Records logically removed from the front (kept on disk until rewrite).
    prefix_dropped: u64,
    tail: u64,
}

impl FileLog {
    /// Opens (or creates) the log at `path`, recovering the valid prefix.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors opening or scanning the file.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> io::Result<FileLog> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let mut offsets = Vec::new();
        let mut pos = 0usize;
        let mut prefix_dropped = 0u64;
        // Optional header written by truncate_prefix rewrites.
        if data.len() >= 12 && &data[..4] == b"SCLG" {
            let mut dropped = [0u8; 8];
            dropped.copy_from_slice(&data[4..12]);
            prefix_dropped = u64::from_le_bytes(dropped);
            pos = 12;
        }
        loop {
            if pos + 8 > data.len() {
                break;
            }
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if pos + 8 + len > data.len() {
                break; // torn tail
            }
            let payload = &data[pos + 8..pos + 8 + len];
            if crc32::checksum(payload) != crc {
                break; // corrupt tail
            }
            offsets.push(pos as u64);
            pos += 8 + len;
        }
        // Truncate any torn tail so future appends start clean.
        file.set_len(pos as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok(FileLog {
            file,
            path,
            policy,
            offsets,
            prefix_dropped,
            tail: pos as u64,
        })
    }

    /// The file this log lives in.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total bytes on disk (useful for storage-cost accounting).
    pub fn byte_len(&self) -> u64 {
        self.tail
    }

    fn rewrite(&mut self, records: Vec<Vec<u8>>, new_prefix_dropped: u64) -> io::Result<()> {
        // Rewrite into a temp file and atomically swap, so a crash during
        // truncation never loses the suffix.
        let tmp_path = self.path.with_extension("rewrite");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(b"SCLG")?;
            tmp.write_all(&new_prefix_dropped.to_le_bytes())?;
            for rec in &records {
                let len = (rec.len() as u32).to_le_bytes();
                let crc = crc32::checksum(rec).to_le_bytes();
                tmp.write_all(&len)?;
                tmp.write_all(&crc)?;
                tmp.write_all(rec)?;
            }
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        *self = FileLog::open(&self.path, self.policy)?;
        Ok(())
    }
}

impl RecordLog for FileLog {
    fn append(&mut self, record: &[u8]) -> io::Result<u64> {
        let len = (record.len() as u32).to_le_bytes();
        let crc = crc32::checksum(record).to_le_bytes();
        self.file.write_all(&len)?;
        self.file.write_all(&crc)?;
        self.file.write_all(record)?;
        self.offsets.push(self.tail);
        self.tail += 8 + record.len() as u64;
        if self.policy == SyncPolicy::Sync {
            self.file.sync_data()?;
        }
        Ok(self.prefix_dropped + self.offsets.len() as u64 - 1)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.policy != SyncPolicy::None {
            self.file.sync_data()?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.prefix_dropped + self.offsets.len() as u64
    }

    fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>> {
        if index < self.prefix_dropped {
            return Ok(None);
        }
        let local = (index - self.prefix_dropped) as usize;
        let Some(&offset) = self.offsets.get(local) else {
            return Ok(None);
        };
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut header = [0u8; 8];
        file.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        let mut payload = vec![0u8; len];
        file.read_exact(&mut payload)?;
        if crc32::checksum(&payload) != crc {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "crc mismatch"));
        }
        Ok(Some(payload))
    }

    fn first_index(&self) -> u64 {
        self.prefix_dropped
    }

    fn truncate_prefix(&mut self, upto: u64) -> io::Result<()> {
        if upto <= self.prefix_dropped {
            return Ok(());
        }
        let keep_from = (upto - self.prefix_dropped).min(self.offsets.len() as u64) as usize;
        let mut kept = Vec::with_capacity(self.offsets.len() - keep_from);
        for i in keep_from..self.offsets.len() {
            let idx = self.prefix_dropped + i as u64;
            if let Some(rec) = self.read(idx)? {
                kept.push(rec);
            }
        }
        let new_dropped = self.prefix_dropped + keep_from as u64;
        self.rewrite(kept, new_dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smartchain-log-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_read_roundtrip() {
        let path = tmpdir().join("a.log");
        let _ = std::fs::remove_file(&path);
        let mut log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.append(b"one").unwrap(), 0);
        assert_eq!(log.append(b"two").unwrap(), 1);
        assert_eq!(log.read(0).unwrap().unwrap(), b"one");
        assert_eq!(log.read(1).unwrap().unwrap(), b"two");
        assert_eq!(log.read(2).unwrap(), None);
    }

    #[test]
    fn survives_reopen() {
        let path = tmpdir().join("b.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
            log.append(b"persisted").unwrap();
        }
        let log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.read(0).unwrap().unwrap(), b"persisted");
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmpdir().join("c.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
            log.append(b"good").unwrap();
        }
        // Simulate a crash mid-append: write a frame header with no payload.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(b"shor").unwrap();
        }
        let log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.read(0).unwrap().unwrap(), b"good");
    }

    #[test]
    fn corrupt_record_stops_recovery() {
        let path = tmpdir().join("d.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
            log.append(b"first").unwrap();
            log.append(b"second").unwrap();
        }
        // Flip a payload byte of the second record.
        {
            let mut data = std::fs::read(&path).unwrap();
            let last = data.len() - 1;
            data[last] ^= 0xff;
            std::fs::write(&path, data).unwrap();
        }
        let log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn truncate_prefix_preserves_indices() {
        let path = tmpdir().join("e.log");
        let _ = std::fs::remove_file(&path);
        let mut log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
        for i in 0..10u32 {
            log.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        log.truncate_prefix(6).unwrap();
        assert_eq!(log.len(), 10);
        assert_eq!(log.read(5).unwrap(), None);
        assert_eq!(log.read(6).unwrap().unwrap(), b"rec-6");
        assert_eq!(log.append(b"rec-10").unwrap(), 10);
        // Truncation persists across reopen.
        drop(log);
        let log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
        assert_eq!(log.read(3).unwrap(), None);
        assert_eq!(log.read(9).unwrap().unwrap(), b"rec-9");
        assert_eq!(log.read(10).unwrap().unwrap(), b"rec-10");
    }

    #[test]
    fn empty_records_are_valid() {
        let path = tmpdir().join("f.log");
        let _ = std::fs::remove_file(&path);
        let mut log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
        log.append(b"").unwrap();
        drop(log);
        let log = FileLog::open(&path, SyncPolicy::Sync).unwrap();
        assert_eq!(log.read(0).unwrap().unwrap(), Vec::<u8>::new());
    }
}
