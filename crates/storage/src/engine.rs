//! The `DurabilityEngine`: one interface over the paper's persistence ladder
//! (§V-C), consumed by both the simulated `ChainNode` and the real-disk
//! `smr::durability::DurableApp`.
//!
//! The paper's observation is that *where* a commit becomes durable — never
//! (∞-Persistence), eventually (λ-Persistence), or before the reply
//! (0/1-Persistence) — is a pluggable policy, orthogonal to consensus. This
//! module makes the policy a value:
//!
//! | backend | ladder rung | append | flush |
//! |---|---|---|---|
//! | [`MemoryEngine`] | ∞-Persistence | heap only | no-op |
//! | [`AsyncEngine`] | λ-Persistence | buffered write | no-op (OS flushes eventually) |
//! | [`GroupCommitEngine`] | 0/1-Persistence | queued in a [`BatchingWriter`] | one fsync for everything queued |
//!
//! Every engine is also a [`RecordLog`], so a `Ledger` (or any other
//! log-structured consumer) can sit directly on top of one and inherit its
//! durability level. [`RecordLog::sync`] always means "really force it" —
//! that is what recovery code calls — while [`DurabilityEngine::flush`] is
//! the *policy* commit point the pipeline's persist stage drives.

use crate::wal::{BatchingWriter, FlushStats};
use crate::{RecordLog, SyncPolicy};
use std::io;

/// How a single append should be accounted by a caller that models device
/// time itself (the simulator): how many bytes move, and whether the policy
/// demands a synchronous flush before acknowledging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WritePlan {
    /// Payload bytes the device will absorb.
    pub bytes: usize,
    /// True when the policy requires an fsync before the ack.
    pub sync: bool,
}

/// A persistence policy over an append-only record log.
///
/// Object-safe: the pipeline holds `Box<dyn DurabilityEngine>` and swaps
/// backends per configuration (the Persistence × Variant matrix).
pub trait DurabilityEngine: RecordLog {
    /// The ladder rung this engine implements.
    fn policy(&self) -> SyncPolicy;

    /// Cost plan for appending `bytes` bytes under this policy (what a
    /// virtual-time disk should charge).
    fn plan(&self, bytes: usize) -> WritePlan {
        WritePlan {
            bytes,
            sync: self.policy() == SyncPolicy::Sync,
        }
    }

    /// Drives the policy's commit point: a group-commit engine coalesces
    /// everything queued into one device sync; the other rungs do nothing.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    fn flush(&mut self) -> io::Result<()>;

    /// Drives the commit point for the log prefix up to `records` (an
    /// absolute record count): a group-commit engine writes and syncs only
    /// the records that were already queued when the corresponding device
    /// sync was *issued* — records appended while that sync was in flight
    /// wait for their own flush. The other rungs behave like
    /// [`DurabilityEngine::flush`]. Used by pipelined callers whose sync
    /// completions arrive while later records are already queued.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    fn flush_upto(&mut self, records: u64) -> io::Result<()> {
        let _ = records;
        self.flush()
    }

    /// Records that reached stable storage (survive a crash).
    fn durable_len(&self) -> u64;

    /// Append/sync accounting (the group-commit coalescing proof lives in
    /// `records` vs `syncs`).
    fn stats(&self) -> FlushStats;

    /// What the engine's last open had to scan, for backends whose recovery
    /// cost is observable ([`SegmentedEngine`]); `None` for heap-backed
    /// engines with no recovery phase.
    fn recovery_stats(&self) -> Option<crate::segmented::RecoveryStats> {
        None
    }
}

/// Builds the engine for a [`SyncPolicy`] over heap-backed storage (the
/// simulator's stand-in for a disk).
pub fn engine_for(policy: SyncPolicy) -> Box<dyn DurabilityEngine> {
    match policy {
        SyncPolicy::None => Box::new(MemoryEngine::new(crate::mem::MemLog::new())),
        SyncPolicy::Async => Box::new(AsyncEngine::new(crate::mem::MemLog::new())),
        SyncPolicy::Sync => Box::new(GroupCommitEngine::new(crate::mem::MemLog::new())),
    }
}

impl RecordLog for Box<dyn DurabilityEngine> {
    fn append(&mut self, record: &[u8]) -> io::Result<u64> {
        (**self).append(record)
    }
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>> {
        (**self).read(index)
    }
    fn truncate_prefix(&mut self, upto: u64) -> io::Result<()> {
        (**self).truncate_prefix(upto)
    }
    fn first_index(&self) -> u64 {
        (**self).first_index()
    }
    fn fast_forward(&mut self, index: u64) -> io::Result<()> {
        (**self).fast_forward(index)
    }
    fn simulate_crash(&mut self) {
        (**self).simulate_crash()
    }
}

// ---------------------------------------------------------------------------
// ∞-Persistence
// ---------------------------------------------------------------------------

/// Heap-only persistence: appends are cheap and nothing survives a crash.
#[derive(Debug)]
pub struct MemoryEngine<L: RecordLog> {
    log: L,
    stats: FlushStats,
}

impl<L: RecordLog> MemoryEngine<L> {
    /// Wraps `log`; it is treated as volatile regardless of its real medium.
    pub fn new(log: L) -> MemoryEngine<L> {
        MemoryEngine {
            log,
            stats: FlushStats::default(),
        }
    }

    /// The wrapped log.
    pub fn inner(&self) -> &L {
        &self.log
    }

    /// Consumes the engine, returning the wrapped log.
    pub fn into_inner(self) -> L {
        self.log
    }
}

impl<L: RecordLog> RecordLog for MemoryEngine<L> {
    fn append(&mut self, record: &[u8]) -> io::Result<u64> {
        self.stats.records += 1;
        self.log.append(record)
    }
    fn sync(&mut self) -> io::Result<()> {
        // ∞-Persistence: there is no stable storage to force anything onto.
        Ok(())
    }
    fn len(&self) -> u64 {
        self.log.len()
    }
    fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>> {
        self.log.read(index)
    }
    fn truncate_prefix(&mut self, upto: u64) -> io::Result<()> {
        self.log.truncate_prefix(upto)
    }
    fn first_index(&self) -> u64 {
        self.log.first_index()
    }
    fn fast_forward(&mut self, index: u64) -> io::Result<()> {
        self.log.fast_forward(index)
    }
    fn simulate_crash(&mut self) {
        // The engine never syncs the device, so a crash takes everything.
        self.log.simulate_crash();
    }
}

impl<L: RecordLog> DurabilityEngine for MemoryEngine<L> {
    fn policy(&self) -> SyncPolicy {
        SyncPolicy::None
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn durable_len(&self) -> u64 {
        0
    }
    fn stats(&self) -> FlushStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// λ-Persistence
// ---------------------------------------------------------------------------

/// Asynchronous writes: appends reach the log (page cache) immediately but
/// are only forced to stable storage when someone explicitly calls
/// [`RecordLog::sync`] — the policy itself never does. A crash loses the
/// unsynced suffix, exactly the paper's external-durability anomaly.
#[derive(Debug)]
pub struct AsyncEngine<L: RecordLog> {
    log: L,
    stats: FlushStats,
    synced_upto: u64,
}

impl<L: RecordLog> AsyncEngine<L> {
    /// Wraps `log` (opened async; this layer never syncs on its own).
    pub fn new(log: L) -> AsyncEngine<L> {
        let synced_upto = log.len();
        AsyncEngine {
            log,
            stats: FlushStats::default(),
            synced_upto,
        }
    }

    /// The wrapped log.
    pub fn inner(&self) -> &L {
        &self.log
    }

    /// Consumes the engine, returning the wrapped log.
    pub fn into_inner(self) -> L {
        self.log
    }
}

impl<L: RecordLog> RecordLog for AsyncEngine<L> {
    fn append(&mut self, record: &[u8]) -> io::Result<u64> {
        self.stats.records += 1;
        self.log.append(record)
    }
    fn sync(&mut self) -> io::Result<()> {
        // An *explicit* force (recovery preparation, shutdown). The policy
        // itself never calls this.
        self.log.sync()?;
        self.stats.syncs += 1;
        self.synced_upto = self.log.len();
        Ok(())
    }
    fn len(&self) -> u64 {
        self.log.len()
    }
    fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>> {
        self.log.read(index)
    }
    fn truncate_prefix(&mut self, upto: u64) -> io::Result<()> {
        self.log.truncate_prefix(upto)
    }
    fn first_index(&self) -> u64 {
        self.log.first_index()
    }
    fn fast_forward(&mut self, index: u64) -> io::Result<()> {
        self.log.fast_forward(index)?;
        self.synced_upto = self.synced_upto.max(self.log.len().min(index));
        Ok(())
    }
    fn simulate_crash(&mut self) {
        self.log.simulate_crash();
    }
}

impl<L: RecordLog> DurabilityEngine for AsyncEngine<L> {
    fn policy(&self) -> SyncPolicy {
        SyncPolicy::Async
    }
    fn flush(&mut self) -> io::Result<()> {
        // λ-Persistence: the OS flushes "within λ"; the ack never waits.
        Ok(())
    }
    fn durable_len(&self) -> u64 {
        self.synced_upto
    }
    fn stats(&self) -> FlushStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// 0/1-Persistence
// ---------------------------------------------------------------------------

/// Group-commit WAL: appends queue in a [`BatchingWriter`]; [`flush`]
/// (the commit point the persist stage drives) writes everything queued and
/// issues exactly one device sync — N appends between flushes cost one fsync,
/// the Dura-SMaRt coalescing that buys the paper its 3.6×.
///
/// [`flush`]: DurabilityEngine::flush
#[derive(Debug)]
pub struct GroupCommitEngine<L: RecordLog> {
    writer: BatchingWriter<L>,
}

impl<L: RecordLog> GroupCommitEngine<L> {
    /// Wraps a log opened with [`SyncPolicy::Async`] — this layer issues
    /// the syncs itself, one per flush.
    pub fn new(log: L) -> GroupCommitEngine<L> {
        GroupCommitEngine {
            writer: BatchingWriter::new(log),
        }
    }

    /// The wrapped log.
    pub fn inner(&self) -> &L {
        self.writer.inner()
    }

    /// Consumes the engine, returning the wrapped log. Queued records that
    /// were never flushed are dropped — exactly what a crash would do.
    pub fn into_inner(self) -> L {
        self.writer.into_inner()
    }
}

impl<L: RecordLog> RecordLog for GroupCommitEngine<L> {
    fn append(&mut self, record: &[u8]) -> io::Result<u64> {
        let index = self.writer.inner().len() + self.writer.pending().len() as u64;
        self.writer.submit(record.to_vec());
        Ok(index)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.flush()
    }
    fn len(&self) -> u64 {
        self.writer.inner().len() + self.writer.pending().len() as u64
    }
    fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>> {
        let inner_len = self.writer.inner().len();
        if index < inner_len {
            return self.writer.inner().read(index);
        }
        Ok(self
            .writer
            .pending()
            .get((index - inner_len) as usize)
            .cloned())
    }
    fn truncate_prefix(&mut self, upto: u64) -> io::Result<()> {
        self.writer.inner_mut().truncate_prefix(upto)
    }
    fn first_index(&self) -> u64 {
        self.writer.inner().first_index()
    }
    fn fast_forward(&mut self, index: u64) -> io::Result<()> {
        // Skipped records are summarized elsewhere (a checkpoint); queued
        // submissions below the target would land at wrong indices.
        self.writer.discard_pending();
        self.writer.inner_mut().fast_forward(index)
    }
    fn simulate_crash(&mut self) {
        // Queued records were never written; the device keeps its synced
        // prefix only.
        self.writer.discard_pending();
        self.writer.inner_mut().simulate_crash();
    }
}

impl<L: RecordLog> DurabilityEngine for GroupCommitEngine<L> {
    fn policy(&self) -> SyncPolicy {
        SyncPolicy::Sync
    }
    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
    fn flush_upto(&mut self, records: u64) -> io::Result<()> {
        let inner_len = self.writer.inner().len();
        let count = records.saturating_sub(inner_len) as usize;
        self.writer.flush_first(count)
    }
    fn durable_len(&self) -> u64 {
        self.writer.inner().len()
    }
    fn stats(&self) -> FlushStats {
        self.writer.stats()
    }
}

// ---------------------------------------------------------------------------
// The segmented real-disk engine (all three rungs)
// ---------------------------------------------------------------------------

/// The persistence ladder over a [`SegmentedLog`](crate::segmented::SegmentedLog):
/// one real-disk engine type that implements every rung, so callers select
/// the policy at open time and keep a concrete handle with segment-level
/// diagnostics ([`SegmentedEngine::recovery_stats`], segment counts).
///
/// Internally each rung reuses the corresponding generic wrapper — the rung
/// semantics are defined exactly once in this module.
#[derive(Debug)]
pub struct SegmentedEngine {
    inner: SegmentedInner,
}

#[derive(Debug)]
enum SegmentedInner {
    Memory(MemoryEngine<crate::segmented::SegmentedLog>),
    Async(AsyncEngine<crate::segmented::SegmentedLog>),
    Group(GroupCommitEngine<crate::segmented::SegmentedLog>),
}

impl SegmentedEngine {
    /// Opens (or recovers) a segmented log under `dir` and wraps it in the
    /// rung `policy` selects. The log file itself is opened async — the
    /// engine layer owns all sync decisions.
    ///
    /// # Errors
    ///
    /// Propagates storage failures from the segment scan.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
        policy: SyncPolicy,
        config: crate::segmented::SegmentConfig,
    ) -> io::Result<SegmentedEngine> {
        let log = crate::segmented::SegmentedLog::open(dir, SyncPolicy::Async, config)?;
        let inner = match policy {
            SyncPolicy::None => SegmentedInner::Memory(MemoryEngine::new(log)),
            SyncPolicy::Async => SegmentedInner::Async(AsyncEngine::new(log)),
            SyncPolicy::Sync => SegmentedInner::Group(GroupCommitEngine::new(log)),
        };
        Ok(SegmentedEngine { inner })
    }

    /// The wrapped segmented log (diagnostics: segment counts, byte sizes).
    pub fn log(&self) -> &crate::segmented::SegmentedLog {
        match &self.inner {
            SegmentedInner::Memory(e) => e.inner(),
            SegmentedInner::Async(e) => e.inner(),
            SegmentedInner::Group(e) => e.inner(),
        }
    }

    fn as_log(&self) -> &dyn DurabilityEngine {
        match &self.inner {
            SegmentedInner::Memory(e) => e,
            SegmentedInner::Async(e) => e,
            SegmentedInner::Group(e) => e,
        }
    }

    fn as_log_mut(&mut self) -> &mut dyn DurabilityEngine {
        match &mut self.inner {
            SegmentedInner::Memory(e) => e,
            SegmentedInner::Async(e) => e,
            SegmentedInner::Group(e) => e,
        }
    }
}

impl RecordLog for SegmentedEngine {
    fn append(&mut self, record: &[u8]) -> io::Result<u64> {
        self.as_log_mut().append(record)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.as_log_mut().sync()
    }
    fn len(&self) -> u64 {
        self.as_log().len()
    }
    fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>> {
        self.as_log().read(index)
    }
    fn truncate_prefix(&mut self, upto: u64) -> io::Result<()> {
        self.as_log_mut().truncate_prefix(upto)
    }
    fn first_index(&self) -> u64 {
        self.as_log().first_index()
    }
    fn fast_forward(&mut self, index: u64) -> io::Result<()> {
        self.as_log_mut().fast_forward(index)
    }
    fn simulate_crash(&mut self) {
        self.as_log_mut().simulate_crash()
    }
}

impl DurabilityEngine for SegmentedEngine {
    fn policy(&self) -> SyncPolicy {
        self.as_log().policy()
    }
    fn flush(&mut self) -> io::Result<()> {
        self.as_log_mut().flush()
    }
    fn flush_upto(&mut self, records: u64) -> io::Result<()> {
        self.as_log_mut().flush_upto(records)
    }
    fn durable_len(&self) -> u64 {
        self.as_log().durable_len()
    }
    fn stats(&self) -> FlushStats {
        self.as_log().stats()
    }
    fn recovery_stats(&self) -> Option<crate::segmented::RecoveryStats> {
        Some(self.log().recovery_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemLog;

    #[test]
    fn memory_engine_reports_nothing_durable() {
        let mut e = MemoryEngine::new(MemLog::new());
        e.append(b"a").unwrap();
        e.sync().unwrap();
        assert_eq!(e.durable_len(), 0);
        assert_eq!(e.stats().syncs, 0);
        assert_eq!(e.policy(), SyncPolicy::None);
    }

    #[test]
    fn async_engine_acks_before_durability() {
        let mut e = AsyncEngine::new(MemLog::new());
        e.append(b"a").unwrap();
        e.flush().unwrap(); // the policy commit point does NOT sync
        assert_eq!(e.len(), 1);
        assert_eq!(
            e.durable_len(),
            0,
            "ack precedes durability in λ-persistence"
        );
        e.sync().unwrap(); // explicit force
        assert_eq!(e.durable_len(), 1);
    }

    #[test]
    fn group_commit_coalesces_to_one_sync() {
        let mut e = GroupCommitEngine::new(MemLog::new());
        for i in 0..10u8 {
            e.append(&[i]).unwrap();
        }
        assert_eq!(e.durable_len(), 0);
        e.flush().unwrap();
        assert_eq!(e.durable_len(), 10);
        assert_eq!(
            e.stats(),
            FlushStats {
                records: 10,
                syncs: 1
            }
        );
    }

    #[test]
    fn group_commit_reads_queued_records() {
        let mut e = GroupCommitEngine::new(MemLog::new());
        e.append(b"flushed").unwrap();
        e.flush().unwrap();
        e.append(b"queued").unwrap();
        assert_eq!(e.read(0).unwrap().unwrap(), b"flushed");
        assert_eq!(
            e.read(1).unwrap().unwrap(),
            b"queued",
            "pending records stay readable"
        );
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn plans_follow_policy() {
        assert!(engine_for(SyncPolicy::Sync).plan(100).sync);
        assert!(!engine_for(SyncPolicy::Async).plan(100).sync);
        assert!(!engine_for(SyncPolicy::None).plan(100).sync);
    }

    /// Pipelined commit points: a sync issued before a record was queued
    /// cannot make that record durable — `flush_upto` commits exactly the
    /// prefix present at issue time, later records wait for their own sync.
    #[test]
    fn group_commit_flush_upto_leaves_later_records_queued() {
        let mut e = GroupCommitEngine::new(MemLog::new());
        e.append(b"a").unwrap();
        let boundary = e.len(); // the sync for "a" is issued here
        e.append(b"b").unwrap(); // queued while that sync is in flight
        e.flush_upto(boundary).unwrap();
        assert_eq!(e.durable_len(), 1, "\"b\" must still be volatile");
        assert_eq!(e.read(1).unwrap().unwrap(), b"b", "but still readable");
        e.flush_upto(2).unwrap();
        assert_eq!(e.durable_len(), 2);
        assert_eq!(
            e.stats(),
            FlushStats {
                records: 2,
                syncs: 2
            }
        );
        // The non-sync rungs treat it as their (no-op) flush.
        let mut a = AsyncEngine::new(MemLog::new());
        a.append(b"x").unwrap();
        a.flush_upto(1).unwrap();
        assert_eq!(a.durable_len(), 0);
    }
}
