//! Group-commit write-ahead logging (the Dura-SMaRt "parallel logging" idea).
//!
//! The latency of one synchronous disk write is roughly independent of how
//! many record batches it carries, so a durability layer that coalesces all
//! batches that arrived since the previous flush pays one fsync for many
//! batches. The paper credits this design with a >3.6× throughput gain over
//! naive per-batch synchronous writes (§IV-B, Observation 1).
//!
//! [`GroupCommitLog`] exposes synchronous semantics (`append_durable` returns
//! once the record is on stable storage) while internally batching with
//! whatever else is in flight.

use crate::{RecordLog, SyncPolicy};
use parking_lot::{Condvar, Mutex};
use std::io;
use std::sync::Arc;

struct Shared {
    state: Mutex<State>,
    flushed: Condvar,
}

struct State {
    /// Records accepted but not yet flushed.
    pending: Vec<Vec<u8>>,
    /// Index that the next appended record will get.
    next_index: u64,
    /// All records with index < this are durable.
    durable_upto: u64,
    /// Set when a flusher is currently writing.
    flush_in_progress: bool,
    /// Terminal error, if the device failed.
    failed: Option<String>,
}

/// A group-commit front-end over any [`RecordLog`].
///
/// Multiple threads call [`GroupCommitLog::append_durable`]; one of them
/// becomes the flusher for everything pending, the rest wait on the condvar.
/// This is the classic group-commit protocol from database engines.
pub struct GroupCommitLog<L: RecordLog> {
    inner: Arc<Mutex<L>>,
    shared: Arc<Shared>,
}

impl<L: RecordLog> std::fmt::Debug for GroupCommitLog<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitLog").finish_non_exhaustive()
    }
}

impl<L: RecordLog> Clone for GroupCommitLog<L> {
    fn clone(&self) -> Self {
        GroupCommitLog { inner: Arc::clone(&self.inner), shared: Arc::clone(&self.shared) }
    }
}

impl<L: RecordLog> GroupCommitLog<L> {
    /// Wraps `log`. The wrapped log should be opened with
    /// [`SyncPolicy::Async`] — this layer issues the syncs itself.
    pub fn new(log: L) -> GroupCommitLog<L> {
        let next_index = log.len();
        GroupCommitLog {
            inner: Arc::new(Mutex::new(log)),
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    pending: Vec::new(),
                    next_index,
                    durable_upto: next_index,
                    flush_in_progress: false,
                    failed: None,
                }),
                flushed: Condvar::new(),
            }),
        }
    }

    /// Appends `record` and blocks until it (and everything batched with it)
    /// is durable. Returns the record's index.
    ///
    /// # Errors
    ///
    /// Returns the device error if any flush failed.
    pub fn append_durable(&self, record: &[u8]) -> io::Result<u64> {
        let my_index;
        {
            let mut st = self.shared.state.lock();
            if let Some(err) = &st.failed {
                return Err(io::Error::other(err.clone()));
            }
            my_index = st.next_index;
            st.next_index += 1;
            st.pending.push(record.to_vec());
        }
        loop {
            // Try to become the flusher.
            let to_flush: Vec<Vec<u8>>;
            {
                let mut st = self.shared.state.lock();
                if let Some(err) = &st.failed {
                    return Err(io::Error::other(err.clone()));
                }
                if st.durable_upto > my_index {
                    return Ok(my_index);
                }
                if st.flush_in_progress {
                    self.shared.flushed.wait(&mut st);
                    continue;
                }
                st.flush_in_progress = true;
                to_flush = std::mem::take(&mut st.pending);
            }
            // Perform the coalesced write outside the state lock.
            let result = (|| -> io::Result<()> {
                let mut log = self.inner.lock();
                for rec in &to_flush {
                    log.append(rec)?;
                }
                log.sync()
            })();
            let mut st = self.shared.state.lock();
            st.flush_in_progress = false;
            match result {
                Ok(()) => {
                    st.durable_upto += to_flush.len() as u64;
                }
                Err(e) => {
                    st.failed = Some(e.to_string());
                    self.shared.flushed.notify_all();
                    return Err(e);
                }
            }
            let done = st.durable_upto > my_index;
            self.shared.flushed.notify_all();
            if done {
                return Ok(my_index);
            }
        }
    }

    /// Number of durable records.
    pub fn durable_len(&self) -> u64 {
        self.shared.state.lock().durable_upto
    }

    /// Reads a durable record.
    ///
    /// # Errors
    ///
    /// Propagates device read errors.
    pub fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>> {
        self.inner.lock().read(index)
    }

    /// Access the wrapped log (e.g. for truncation after checkpoints).
    pub fn with_inner<R>(&self, f: impl FnOnce(&mut L) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

/// Statistics from a straightforward single-threaded batching writer, used by
/// the simulator's disk model and by benchmarks to count fsyncs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Records appended.
    pub records: u64,
    /// fsync operations issued.
    pub syncs: u64,
}

/// A deterministic (single-threaded) coalescing writer: call
/// [`BatchingWriter::submit`] any number of times, then [`BatchingWriter::flush`];
/// the per-flush fsync count is 1 regardless of the number of submissions —
/// exactly the cost model the paper's durability layer exploits.
#[derive(Debug)]
pub struct BatchingWriter<L: RecordLog> {
    log: L,
    pending: Vec<Vec<u8>>,
    stats: FlushStats,
}

impl<L: RecordLog> BatchingWriter<L> {
    /// Wraps a log (opened with [`SyncPolicy::Async`] or equivalent).
    pub fn new(log: L) -> BatchingWriter<L> {
        BatchingWriter { log, pending: Vec::new(), stats: FlushStats::default() }
    }

    /// Queues a record for the next flush.
    pub fn submit(&mut self, record: Vec<u8>) {
        self.pending.push(record);
    }

    /// Writes all queued records with a single sync.
    ///
    /// # Errors
    ///
    /// Propagates device errors; queued records stay queued on failure.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        for rec in &self.pending {
            self.log.append(rec)?;
        }
        self.log.sync()?;
        self.stats.records += self.pending.len() as u64;
        self.stats.syncs += 1;
        self.pending.clear();
        Ok(())
    }

    /// Cumulative write statistics.
    pub fn stats(&self) -> FlushStats {
        self.stats
    }

    /// Consumes the writer, returning the wrapped log.
    pub fn into_inner(self) -> L {
        self.log
    }

    /// Borrows the wrapped log.
    pub fn inner(&self) -> &L {
        &self.log
    }

    /// Mutably borrows the wrapped log (e.g. for prefix truncation after a
    /// checkpoint). Pending (unflushed) records are unaffected.
    pub fn inner_mut(&mut self) -> &mut L {
        &mut self.log
    }
}

/// Mentioned for documentation completeness: the policy that pairs with this
/// module is [`SyncPolicy::Async`] on the wrapped log.
pub const RECOMMENDED_INNER_POLICY: SyncPolicy = SyncPolicy::Async;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemLog;

    #[test]
    fn batching_writer_one_sync_per_flush() {
        let mut w = BatchingWriter::new(MemLog::new());
        for i in 0..10u8 {
            w.submit(vec![i]);
        }
        w.flush().unwrap();
        assert_eq!(w.stats(), FlushStats { records: 10, syncs: 1 });
        for i in 10..20u8 {
            w.submit(vec![i]);
        }
        w.flush().unwrap();
        assert_eq!(w.stats(), FlushStats { records: 20, syncs: 2 });
        assert_eq!(w.inner().len(), 20);
    }

    #[test]
    fn flush_empty_is_free() {
        let mut w = BatchingWriter::new(MemLog::new());
        w.flush().unwrap();
        assert_eq!(w.stats(), FlushStats::default());
    }

    #[test]
    fn group_commit_single_thread() {
        let gc = GroupCommitLog::new(MemLog::new());
        assert_eq!(gc.append_durable(b"a").unwrap(), 0);
        assert_eq!(gc.append_durable(b"b").unwrap(), 1);
        assert_eq!(gc.durable_len(), 2);
        assert_eq!(gc.read(0).unwrap().unwrap(), b"a");
    }

    #[test]
    fn group_commit_many_threads_coalesce() {
        let gc = GroupCommitLog::new(MemLog::new());
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let gc = gc.clone();
            handles.push(std::thread::spawn(move || {
                let mut indices = Vec::new();
                for i in 0..50u8 {
                    indices.push(gc.append_durable(&[t, i]).unwrap());
                }
                indices
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..400).collect();
        assert_eq!(all, expect, "each record got a unique durable index");
        assert_eq!(gc.durable_len(), 400);
    }
}
