//! Group-commit write-ahead logging (the Dura-SMaRt "parallel logging" idea).
//!
//! The latency of one synchronous disk write is roughly independent of how
//! many record batches it carries, so a durability layer that coalesces all
//! batches that arrived since the previous flush pays one fsync for many
//! batches. The paper credits this design with a >3.6× throughput gain over
//! naive per-batch synchronous writes (§IV-B, Observation 1).
//!
//! [`GroupCommitLog`] exposes synchronous semantics (`append_durable` returns
//! once the record is on stable storage) while internally batching with
//! whatever else is in flight.

use crate::{RecordLog, SyncPolicy};
use std::io;
use std::sync::{Arc, Condvar, Mutex};

struct Shared {
    state: Mutex<State>,
    flushed: Condvar,
}

struct State {
    /// Records accepted but not yet flushed.
    pending: Vec<Vec<u8>>,
    /// Index that the next appended record will get.
    next_index: u64,
    /// All records with index < this are durable.
    durable_upto: u64,
    /// Set when a flusher is currently writing.
    flush_in_progress: bool,
    /// Terminal error, if the device failed.
    failed: Option<String>,
}

/// A group-commit front-end over any [`RecordLog`].
///
/// Multiple threads call [`GroupCommitLog::append_durable`]; one of them
/// becomes the flusher for everything pending, the rest wait on the condvar.
/// This is the classic group-commit protocol from database engines.
pub struct GroupCommitLog<L: RecordLog> {
    inner: Arc<Mutex<L>>,
    shared: Arc<Shared>,
}

impl<L: RecordLog> std::fmt::Debug for GroupCommitLog<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitLog").finish_non_exhaustive()
    }
}

impl<L: RecordLog> Clone for GroupCommitLog<L> {
    fn clone(&self) -> Self {
        GroupCommitLog {
            inner: Arc::clone(&self.inner),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<L: RecordLog> GroupCommitLog<L> {
    /// Wraps `log`. The wrapped log should be opened with
    /// [`SyncPolicy::Async`] — this layer issues the syncs itself.
    pub fn new(log: L) -> GroupCommitLog<L> {
        let next_index = log.len();
        GroupCommitLog {
            inner: Arc::new(Mutex::new(log)),
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    pending: Vec::new(),
                    next_index,
                    durable_upto: next_index,
                    flush_in_progress: false,
                    failed: None,
                }),
                flushed: Condvar::new(),
            }),
        }
    }

    /// Appends `record` and blocks until it (and everything batched with it)
    /// is durable. Returns the record's index.
    ///
    /// # Errors
    ///
    /// Returns the device error if any flush failed.
    pub fn append_durable(&self, record: &[u8]) -> io::Result<u64> {
        let my_index;
        {
            let mut st = self.shared.state.lock().expect("wal state lock");
            if let Some(err) = &st.failed {
                return Err(io::Error::other(err.clone()));
            }
            my_index = st.next_index;
            st.next_index += 1;
            st.pending.push(record.to_vec());
        }
        loop {
            // Try to become the flusher.
            let to_flush: Vec<Vec<u8>>;
            {
                let mut st = self.shared.state.lock().expect("wal state lock");
                if let Some(err) = &st.failed {
                    return Err(io::Error::other(err.clone()));
                }
                if st.durable_upto > my_index {
                    return Ok(my_index);
                }
                if st.flush_in_progress {
                    let _st = self.shared.flushed.wait(st).expect("wal state lock");
                    continue;
                }
                st.flush_in_progress = true;
                to_flush = std::mem::take(&mut st.pending);
            }
            // Perform the coalesced write outside the state lock.
            let result = (|| -> io::Result<()> {
                let mut log = self.inner.lock().expect("wal log lock");
                for rec in &to_flush {
                    log.append(rec)?;
                }
                log.sync()
            })();
            let mut st = self.shared.state.lock().expect("wal state lock");
            st.flush_in_progress = false;
            match result {
                Ok(()) => {
                    st.durable_upto += to_flush.len() as u64;
                }
                Err(e) => {
                    st.failed = Some(e.to_string());
                    self.shared.flushed.notify_all();
                    return Err(e);
                }
            }
            let done = st.durable_upto > my_index;
            self.shared.flushed.notify_all();
            if done {
                return Ok(my_index);
            }
        }
    }

    /// Number of durable records.
    pub fn durable_len(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("wal state lock")
            .durable_upto
    }

    /// Reads a durable record.
    ///
    /// # Errors
    ///
    /// Propagates device read errors.
    pub fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>> {
        self.inner.lock().expect("wal log lock").read(index)
    }

    /// Access the wrapped log (e.g. for truncation after checkpoints).
    pub fn with_inner<R>(&self, f: impl FnOnce(&mut L) -> R) -> R {
        f(&mut self.inner.lock().expect("wal log lock"))
    }
}

/// Statistics from a straightforward single-threaded batching writer, used by
/// the simulator's disk model and by benchmarks to count fsyncs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Records appended.
    pub records: u64,
    /// fsync operations issued.
    pub syncs: u64,
}

/// A deterministic (single-threaded) coalescing writer: call
/// [`BatchingWriter::submit`] any number of times, then [`BatchingWriter::flush`];
/// the per-flush fsync count is 1 regardless of the number of submissions —
/// exactly the cost model the paper's durability layer exploits.
#[derive(Debug)]
pub struct BatchingWriter<L: RecordLog> {
    log: L,
    pending: Vec<Vec<u8>>,
    stats: FlushStats,
    /// Records appended to the log but not yet covered by a sync (a failed
    /// flush leaves them here so a retry syncs without re-appending).
    unsynced: bool,
}

impl<L: RecordLog> BatchingWriter<L> {
    /// Wraps a log (opened with [`SyncPolicy::Async`] or equivalent).
    pub fn new(log: L) -> BatchingWriter<L> {
        BatchingWriter {
            log,
            pending: Vec::new(),
            stats: FlushStats::default(),
            unsynced: false,
        }
    }

    /// Queues a record for the next flush.
    pub fn submit(&mut self, record: Vec<u8>) {
        self.pending.push(record);
    }

    /// Writes all queued records with a single sync.
    ///
    /// # Errors
    ///
    /// Propagates device errors. Records that reached the log before the
    /// failure are *not* re-queued (re-appending them on retry would
    /// duplicate them); the failed record and everything after it stay
    /// queued, and an un-synced append is synced by the next flush.
    pub fn flush(&mut self) -> io::Result<()> {
        self.flush_first(self.pending.len())
    }

    /// Writes the first `count` queued records with a single sync, leaving
    /// later submissions queued — the commit point for one device sync that
    /// was *issued* before those later records arrived (a sync in flight
    /// cannot cover records submitted after it started).
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchingWriter::flush`].
    pub fn flush_first(&mut self, count: usize) -> io::Result<()> {
        let count = count.min(self.pending.len());
        if count == 0 && !self.unsynced {
            return Ok(());
        }
        let mut appended = 0usize;
        let mut append_err = None;
        for rec in self.pending.iter().take(count) {
            match self.log.append(rec) {
                Ok(_) => appended += 1,
                Err(e) => {
                    append_err = Some(e);
                    break;
                }
            }
        }
        self.stats.records += appended as u64;
        self.pending.drain(..appended);
        self.unsynced = self.unsynced || appended > 0;
        if let Some(e) = append_err {
            return Err(e);
        }
        self.log.sync()?;
        self.unsynced = false;
        self.stats.syncs += 1;
        Ok(())
    }

    /// Records queued for the next flush (not yet durable).
    pub fn pending(&self) -> &[Vec<u8>] {
        &self.pending
    }

    /// Drops all queued records without writing them — what a crash before
    /// the flush point does.
    pub fn discard_pending(&mut self) {
        self.pending.clear();
    }

    /// Cumulative write statistics.
    pub fn stats(&self) -> FlushStats {
        self.stats
    }

    /// Consumes the writer, returning the wrapped log.
    pub fn into_inner(self) -> L {
        self.log
    }

    /// Borrows the wrapped log.
    pub fn inner(&self) -> &L {
        &self.log
    }

    /// Mutably borrows the wrapped log (e.g. for prefix truncation after a
    /// checkpoint). Pending (unflushed) records are unaffected.
    pub fn inner_mut(&mut self) -> &mut L {
        &mut self.log
    }
}

/// Mentioned for documentation completeness: the policy that pairs with this
/// module is [`SyncPolicy::Async`] on the wrapped log.
pub const RECOMMENDED_INNER_POLICY: SyncPolicy = SyncPolicy::Async;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemLog;

    #[test]
    fn batching_writer_one_sync_per_flush() {
        let mut w = BatchingWriter::new(MemLog::new());
        for i in 0..10u8 {
            w.submit(vec![i]);
        }
        w.flush().unwrap();
        assert_eq!(
            w.stats(),
            FlushStats {
                records: 10,
                syncs: 1
            }
        );
        for i in 10..20u8 {
            w.submit(vec![i]);
        }
        w.flush().unwrap();
        assert_eq!(
            w.stats(),
            FlushStats {
                records: 20,
                syncs: 2
            }
        );
        assert_eq!(w.inner().len(), 20);
    }

    #[test]
    fn flush_empty_is_free() {
        let mut w = BatchingWriter::new(MemLog::new());
        w.flush().unwrap();
        assert_eq!(w.stats(), FlushStats::default());
    }

    #[test]
    fn flush_first_covers_only_the_prefix() {
        let mut w = BatchingWriter::new(MemLog::new());
        for i in 0..5u8 {
            w.submit(vec![i]);
        }
        w.flush_first(2).unwrap();
        assert_eq!(w.inner().len(), 2);
        assert_eq!(w.pending().len(), 3, "later submissions stay queued");
        assert_eq!(
            w.stats(),
            FlushStats {
                records: 2,
                syncs: 1
            }
        );
        w.flush().unwrap();
        assert_eq!(w.inner().len(), 5);
    }

    /// A device that fails on command, for retry-path tests.
    struct FlakyLog {
        inner: MemLog,
        fail_next_append: bool,
        fail_next_sync: bool,
    }

    impl RecordLog for FlakyLog {
        fn append(&mut self, record: &[u8]) -> std::io::Result<u64> {
            if self.fail_next_append {
                self.fail_next_append = false;
                return Err(std::io::Error::other("append failed"));
            }
            self.inner.append(record)
        }
        fn sync(&mut self) -> std::io::Result<()> {
            if self.fail_next_sync {
                self.fail_next_sync = false;
                return Err(std::io::Error::other("sync failed"));
            }
            self.inner.sync()
        }
        fn len(&self) -> u64 {
            self.inner.len()
        }
        fn read(&self, index: u64) -> std::io::Result<Option<Vec<u8>>> {
            self.inner.read(index)
        }
        fn truncate_prefix(&mut self, upto: u64) -> std::io::Result<()> {
            self.inner.truncate_prefix(upto)
        }
    }

    #[test]
    fn failed_sync_retries_without_duplicating_records() {
        let log = FlakyLog {
            inner: MemLog::new(),
            fail_next_append: false,
            fail_next_sync: true,
        };
        let mut w = BatchingWriter::new(log);
        for i in 0..3u8 {
            w.submit(vec![i]);
        }
        assert!(w.flush().is_err(), "first flush hits the sync failure");
        // The records reached the log; the retry must only sync.
        w.flush().unwrap();
        assert_eq!(w.inner().len(), 3, "no record may be appended twice");
        assert_eq!(
            w.stats(),
            FlushStats {
                records: 3,
                syncs: 1
            }
        );
    }

    #[test]
    fn failed_append_retries_only_the_unwritten_suffix() {
        let log = FlakyLog {
            inner: MemLog::new(),
            fail_next_append: false,
            fail_next_sync: false,
        };
        let mut w = BatchingWriter::new(log);
        w.submit(vec![0]);
        w.flush().unwrap();
        for i in 1..4u8 {
            w.submit(vec![i]);
        }
        w.inner_mut().fail_next_append = true; // record 1's append fails
        assert!(w.flush().is_err());
        w.flush().unwrap();
        assert_eq!(w.inner().len(), 4, "each record lands exactly once");
        for i in 0..4u8 {
            assert_eq!(w.inner().read(i as u64).unwrap().unwrap(), vec![i]);
        }
    }

    #[test]
    fn group_commit_single_thread() {
        let gc = GroupCommitLog::new(MemLog::new());
        assert_eq!(gc.append_durable(b"a").unwrap(), 0);
        assert_eq!(gc.append_durable(b"b").unwrap(), 1);
        assert_eq!(gc.durable_len(), 2);
        assert_eq!(gc.read(0).unwrap().unwrap(), b"a");
    }

    #[test]
    fn group_commit_many_threads_coalesce() {
        let gc = GroupCommitLog::new(MemLog::new());
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let gc = gc.clone();
            handles.push(std::thread::spawn(move || {
                let mut indices = Vec::new();
                for i in 0..50u8 {
                    indices.push(gc.append_durable(&[t, i]).unwrap());
                }
                indices
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..400).collect();
        assert_eq!(all, expect, "each record got a unique durable index");
        assert_eq!(gc.durable_len(), 400);
    }
}
