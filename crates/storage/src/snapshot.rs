//! Durable snapshot (checkpoint) store.
//!
//! SmartChain stores service snapshots *outside* the blockchain, in their own
//! files, with each snapshot referencing the last block whose transactions it
//! covers (paper §V-B3). Installation is atomic (write-to-temp + rename) so a
//! crash mid-checkpoint leaves the previous snapshot intact.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Metadata + payload of one snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Number of the last block covered by this snapshot (inclusive).
    pub covered_block: u64,
    /// Serialized application state.
    pub state: Vec<u8>,
    /// Opaque consumer metadata stored (and CRC-protected) alongside the
    /// state — e.g. the runtime's dedup frontier and batch chain tip at the
    /// covered point. Empty for consumers that need none.
    pub meta: Vec<u8>,
}

/// A directory-backed snapshot store keeping the most recent snapshot.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<SnapshotStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    fn current_path(&self) -> PathBuf {
        self.dir.join("snapshot.current")
    }

    /// Atomically installs `snapshot` as the current one.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on failure the previous snapshot remains.
    pub fn install(&self, snapshot: &Snapshot) -> io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(b"SCS2")?;
            f.write_all(&snapshot.covered_block.to_le_bytes())?;
            f.write_all(&(snapshot.state.len() as u64).to_le_bytes())?;
            f.write_all(&(snapshot.meta.len() as u64).to_le_bytes())?;
            f.write_all(&snapshot.state)?;
            f.write_all(&snapshot.meta)?;
            let mut payload = Vec::with_capacity(snapshot.state.len() + snapshot.meta.len());
            payload.extend_from_slice(&snapshot.state);
            payload.extend_from_slice(&snapshot.meta);
            let crc = crate::crc32::checksum(&payload);
            f.write_all(&crc.to_le_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.current_path())?;
        crate::sync_dir(&self.dir);
        Ok(())
    }

    /// Loads the current snapshot; `None` when none has been installed.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the snapshot file is corrupt.
    pub fn load(&self) -> io::Result<Option<Snapshot>> {
        let path = self.current_path();
        let mut data = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        if data.len() < 32 || &data[..4] != b"SCS2" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad snapshot header",
            ));
        }
        let covered_block = u64::from_le_bytes(data[4..12].try_into().expect("8 bytes"));
        let state_len = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes")) as usize;
        let meta_len = u64::from_le_bytes(data[20..28].try_into().expect("8 bytes")) as usize;
        if data.len() != 28 + state_len + meta_len + 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad snapshot length",
            ));
        }
        let state = data[28..28 + state_len].to_vec();
        let meta = data[28 + state_len..28 + state_len + meta_len].to_vec();
        let crc = u32::from_le_bytes(
            data[28 + state_len + meta_len..]
                .try_into()
                .expect("4 bytes"),
        );
        if crate::crc32::checksum(&data[28..28 + state_len + meta_len]) != crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot crc mismatch",
            ));
        }
        Ok(Some(Snapshot {
            covered_block,
            state,
            meta,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!(
            "smartchain-snap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).unwrap()
    }

    #[test]
    fn empty_store_loads_none() {
        assert_eq!(store().load().unwrap(), None);
    }

    #[test]
    fn install_load_roundtrip() {
        let s = store();
        let snap = Snapshot {
            covered_block: 42,
            state: vec![1, 2, 3, 4],
            meta: vec![9, 9],
        };
        s.install(&snap).unwrap();
        assert_eq!(s.load().unwrap(), Some(snap));
    }

    #[test]
    fn newer_snapshot_replaces_older() {
        let s = store();
        s.install(&Snapshot {
            covered_block: 1,
            state: vec![1],
            meta: Vec::new(),
        })
        .unwrap();
        s.install(&Snapshot {
            covered_block: 2,
            state: vec![2],
            meta: Vec::new(),
        })
        .unwrap();
        assert_eq!(s.load().unwrap().unwrap().covered_block, 2);
    }

    #[test]
    fn corruption_detected() {
        let s = store();
        s.install(&Snapshot {
            covered_block: 7,
            state: vec![9u8; 100],
            meta: Vec::new(),
        })
        .unwrap();
        let path = s.current_path();
        let mut data = fs::read(&path).unwrap();
        data[50] ^= 0x01;
        fs::write(&path, data).unwrap();
        assert!(s.load().is_err());
    }
}
