//! An in-memory [`RecordLog`] — the paper's ∞-Persistence configuration, and
//! the workhorse for unit tests.

use crate::RecordLog;
use std::collections::VecDeque;
use std::io;

/// Heap-backed record log. Nothing survives a process crash, by design.
#[derive(Debug, Default, Clone)]
pub struct MemLog {
    records: VecDeque<Vec<u8>>,
    prefix_dropped: u64,
    synced_upto: u64,
}

impl MemLog {
    /// Creates an empty log.
    pub fn new() -> MemLog {
        MemLog::default()
    }

    /// Number of records covered by a [`RecordLog::sync`] call — lets tests
    /// model "what survives a crash" for async configurations.
    pub fn synced_len(&self) -> u64 {
        self.synced_upto
    }

    /// Drops every record after the last sync, simulating a crash under an
    /// asynchronous write policy.
    pub fn crash_to_last_sync(&mut self) {
        while self.prefix_dropped + self.records.len() as u64 > self.synced_upto {
            self.records.pop_back();
        }
    }
}

impl RecordLog for MemLog {
    fn append(&mut self, record: &[u8]) -> io::Result<u64> {
        self.records.push_back(record.to_vec());
        Ok(self.prefix_dropped + self.records.len() as u64 - 1)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.synced_upto = self.prefix_dropped + self.records.len() as u64;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.prefix_dropped + self.records.len() as u64
    }

    fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>> {
        if index < self.prefix_dropped {
            return Ok(None);
        }
        Ok(self
            .records
            .get((index - self.prefix_dropped) as usize)
            .cloned())
    }

    fn truncate_prefix(&mut self, upto: u64) -> io::Result<()> {
        while self.prefix_dropped < upto && !self.records.is_empty() {
            self.records.pop_front();
            self.prefix_dropped += 1;
        }
        Ok(())
    }

    fn first_index(&self) -> u64 {
        self.prefix_dropped
    }

    fn fast_forward(&mut self, index: u64) -> io::Result<()> {
        if index <= self.len() {
            return self.truncate_prefix(index);
        }
        self.records.clear();
        self.prefix_dropped = index;
        self.synced_upto = self.synced_upto.max(index);
        Ok(())
    }

    fn simulate_crash(&mut self) {
        self.crash_to_last_sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let mut log = MemLog::new();
        assert_eq!(log.append(b"a").unwrap(), 0);
        assert_eq!(log.append(b"b").unwrap(), 1);
        assert_eq!(log.read(1).unwrap().unwrap(), b"b");
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn crash_semantics() {
        let mut log = MemLog::new();
        log.append(b"synced").unwrap();
        log.sync().unwrap();
        log.append(b"lost").unwrap();
        log.crash_to_last_sync();
        assert_eq!(log.len(), 1);
        assert_eq!(log.read(0).unwrap().unwrap(), b"synced");
        assert_eq!(log.read(1).unwrap(), None);
    }

    #[test]
    fn truncate_prefix_keeps_indices_stable() {
        let mut log = MemLog::new();
        for i in 0..5u8 {
            log.append(&[i]).unwrap();
        }
        log.truncate_prefix(3).unwrap();
        assert_eq!(log.read(2).unwrap(), None);
        assert_eq!(log.read(3).unwrap().unwrap(), vec![3]);
        assert_eq!(log.len(), 5);
    }
}
