//! CRC-32 (IEEE 802.3 polynomial) for record framing.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 checksum of `data`.
///
/// # Examples
///
/// ```
/// assert_eq!(smartchain_storage::crc32::checksum(b"123456789"), 0xcbf43926);
/// ```
pub fn checksum(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(checksum(b""), 0);
        assert_eq!(checksum(b"123456789"), 0xcbf43926);
        assert_eq!(
            checksum(b"The quick brown fox jumps over the lazy dog"),
            0x414fa339
        );
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = checksum(b"block-payload");
        let b = checksum(b"block-pbyload");
        assert_ne!(a, b);
    }
}
