//! Stable-storage substrate for SmartChain.
//!
//! The paper's durability analysis (Observation 1 / §II-C2) hinges on three
//! storage behaviours this crate implements:
//!
//! * an **append-only record log** with per-record framing and CRC so a
//!   crashed replica can recover the longest valid prefix ([`log`]);
//! * a **group-commit WAL** that coalesces many record batches into a single
//!   synchronous write, diluting fsync cost across requests — the
//!   Dura-SMaRt "parallel logging" trick that buys the paper its 3.6×
//!   ([`wal`]);
//! * a **snapshot store** with atomic install, used by checkpoints
//!   ([`snapshot`]);
//! * the **[`DurabilityEngine`]** ([`engine`]) — the persistence ladder
//!   (∞/λ/0-1) as a pluggable policy, consumed by both the simulated
//!   `ChainNode` and the real-disk `DurableApp`.
//!
//! Everything works against the [`RecordLog`] trait so the discrete-event
//! simulator can substitute virtual-time disks with identical semantics.

pub mod crc32;
pub mod engine;
pub mod log;
pub mod mem;
pub mod segmented;
pub mod snapshot;
pub mod wal;

pub use engine::{DurabilityEngine, SegmentedEngine, WritePlan};
pub use segmented::{RecoveryStats, SegmentConfig, SegmentedLog};

use std::io;

/// Best-effort fsync of a directory, making a just-renamed file's directory
/// entry durable (rename is atomic but not durable until the directory
/// itself is synced). Errors are ignored: not every platform/filesystem
/// supports opening directories for sync, and the rename already happened.
pub(crate) fn sync_dir(dir: &std::path::Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// How writes reach stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SyncPolicy {
    /// Every append is followed by an fsync before it is acknowledged.
    Sync,
    /// Appends are buffered; the OS (or a timer) flushes eventually.
    Async,
    /// Data is kept in memory only (the paper's ∞-Persistence).
    None,
}

/// An append-only log of opaque records.
///
/// Implementations: [`log::FileLog`] (real files + fsync) and
/// [`mem::MemLog`] (heap only). The simulator provides a virtual-time
/// implementation in `smartchain-sim`.
pub trait RecordLog: Send {
    /// Appends one record; returns its zero-based index.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying device.
    fn append(&mut self, record: &[u8]) -> io::Result<u64>;

    /// Forces all buffered records to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying device.
    fn sync(&mut self) -> io::Result<()>;

    /// Number of records currently readable.
    fn len(&self) -> u64;

    /// True when the log holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads record `index`; `None` when out of range.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying device.
    fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>>;

    /// Removes every record with index < `upto` (log truncation after a
    /// checkpoint). Indices of the remaining records are preserved.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying device.
    fn truncate_prefix(&mut self, upto: u64) -> io::Result<()>;

    /// Lowest readable record index: 0 for a fresh log, the truncation
    /// watermark after [`RecordLog::truncate_prefix`] compacted a prefix
    /// away. Reads below it return `None`.
    fn first_index(&self) -> u64 {
        0
    }

    /// Logically skips the log forward so the next append lands at `index`
    /// with everything below it truncated — what installing a checkpoint
    /// that summarizes records this log never held requires. The default
    /// materializes empty pad records and truncates them away; segmented
    /// backends override it with an O(1) manifest update.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying device.
    fn fast_forward(&mut self, index: u64) -> io::Result<()> {
        while self.len() < index {
            self.append(&[])?;
        }
        self.truncate_prefix(index)
    }

    /// Simulated power loss: drop everything that never reached stable
    /// storage. Heap-backed logs ([`mem::MemLog`]) discard their unsynced
    /// suffix; real files ignore this — the operating system already
    /// provides the semantics, and [`log::FileLog::open`] recovers the
    /// longest valid prefix.
    fn simulate_crash(&mut self) {}
}
