//! A segmented append-only log: fixed-capacity, CRC-framed segment files
//! plus a manifest, so log *compaction* after a checkpoint is an
//! O(segment-delete) operation instead of the full-file rewrite
//! [`crate::log::FileLog`] pays, and recovery scans only the active segment
//! instead of the whole history.
//!
//! Layout under the log directory:
//!
//! ```text
//! manifest            prefix watermark + sealed-segment index + active base
//! seg-<base>.seg      "SCSG" + base, then [len u32][crc u32][payload] frames
//! ```
//!
//! Invariants the crash protocol maintains:
//!
//! * a segment is **sealed** only after its file is fsynced, and only then
//!   referenced by a new manifest — so a sealed segment's `(base, count,
//!   bytes)` triple in the manifest is trusted at recovery without scanning
//!   its records;
//! * the **active** segment is scanned record-by-record at open (CRC), and
//!   a torn tail (crash mid-append) is discarded — the only per-record scan
//!   recovery performs;
//! * **truncation** writes the new manifest (tmp + atomic rename) *before*
//!   deleting dropped segment files; a crash in between leaves orphan files
//!   that the next open removes. A crash before the rename leaves the old
//!   manifest and all files — recovery sees the pre-truncation log, which
//!   is correct (truncation merely re-runs);
//! * a **manifest/segment disagreement** (missing or size-mismatched sealed
//!   file — possible only under external corruption) degrades to the
//!   longest valid prefix: the damaged segment is re-scanned, becomes the
//!   new active tail, and everything after it is dropped.

use crate::{crc32, RecordLog, SyncPolicy};
use std::cell::RefCell;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MANIFEST_MAGIC: &[u8; 4] = b"SCMF";
const SEGMENT_MAGIC: &[u8; 4] = b"SCSG";
const SEGMENT_HEADER_BYTES: u64 = 12; // magic + base
const FRAME_HEADER_BYTES: u64 = 8; // len + crc

/// Sizing of one segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Records per segment before it is sealed and a fresh one opens.
    pub records_per_segment: u64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            records_per_segment: 1024,
        }
    }
}

/// What the last [`SegmentedLog::open`] had to do — the observable proof
/// that recovery cost is bounded by the segment size, not the history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Segment files whose records were scanned (normally 1: the active
    /// segment; more only on manifest loss/disagreement).
    pub segments_scanned: u64,
    /// Record frames read during the scan.
    pub records_scanned: u64,
}

/// A sealed (immutable, fsynced) segment. Its record offsets are rebuilt
/// lazily on first read — recovery never scans it — and its read handle is
/// opened once and reused (positional reads, no per-record open/seek).
#[derive(Debug)]
struct SealedSegment {
    base: u64,
    count: u64,
    bytes: u64,
    path: PathBuf,
    offsets: RefCell<Option<Vec<u64>>>,
    file: RefCell<Option<File>>,
}

#[derive(Debug)]
struct ActiveSegment {
    base: u64,
    path: PathBuf,
    file: File,
    /// Frame start offsets of each record in the file.
    offsets: Vec<u64>,
    /// Byte length of the valid prefix.
    tail: u64,
    /// Records/bytes covered by the last explicit sync (drives
    /// [`RecordLog::simulate_crash`], so the virtual-time simulator can run
    /// this log with faithful crash semantics).
    synced_records: u64,
    synced_tail: u64,
}

/// The segmented log. Record indices are global and stable across rolls and
/// truncation (truncated indices read as `None`).
#[derive(Debug)]
pub struct SegmentedLog {
    dir: PathBuf,
    policy: SyncPolicy,
    config: SegmentConfig,
    /// Records with index < this are logically removed.
    prefix_dropped: u64,
    sealed: Vec<SealedSegment>,
    active: ActiveSegment,
    recovery: RecoveryStats,
}

fn segment_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("seg-{base:020}.seg"))
}

fn parse_segment_base(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

fn create_segment(dir: &Path, base: u64) -> io::Result<ActiveSegment> {
    let path = segment_path(dir, base);
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)?;
    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&base.to_le_bytes())?;
    Ok(ActiveSegment {
        base,
        path,
        file,
        offsets: Vec::new(),
        tail: SEGMENT_HEADER_BYTES,
        synced_records: 0,
        synced_tail: SEGMENT_HEADER_BYTES,
    })
}

/// Scans a segment file: validates the header, collects the frame offsets of
/// the longest valid (CRC-checked) record prefix, and returns the byte
/// length of that prefix.
fn scan_segment(path: &Path, expect_base: u64) -> io::Result<(Vec<u64>, u64, u64)> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    if data.len() < SEGMENT_HEADER_BYTES as usize
        || &data[..4] != SEGMENT_MAGIC
        || u64::from_le_bytes(data[4..12].try_into().expect("8 bytes")) != expect_base
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad segment header",
        ));
    }
    let mut offsets = Vec::new();
    let mut pos = SEGMENT_HEADER_BYTES as usize;
    let mut scanned = 0u64;
    loop {
        if pos + FRAME_HEADER_BYTES as usize > data.len() {
            break;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > data.len() {
            break; // torn tail
        }
        if crc32::checksum(&data[pos + 8..pos + 8 + len]) != crc {
            break; // corrupt tail
        }
        offsets.push(pos as u64);
        scanned += 1;
        pos += 8 + len;
    }
    Ok((offsets, pos as u64, scanned))
}

/// Scans only the frame headers of a sealed segment (offsets for random
/// reads; payload CRCs are checked per read).
fn index_segment(path: &Path, count: u64) -> io::Result<Vec<u64>> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut offsets = Vec::with_capacity(count as usize);
    let mut pos = SEGMENT_HEADER_BYTES as usize;
    for _ in 0..count {
        if pos + FRAME_HEADER_BYTES as usize > data.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sealed segment shorter than its manifest entry",
            ));
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        offsets.push(pos as u64);
        pos += 8 + len;
    }
    Ok(offsets)
}

/// Opens the segment at `base` as the active tail: scans its valid record
/// prefix and truncates any torn tail. Falls back to a fresh empty segment
/// ONLY when the file is missing or shorter than its header (the crash
/// window between a roll's manifest write and the new file's creation) —
/// or, with `degrade_invalid` (the manifest/segment-disagreement path),
/// when the header itself is invalid. Any other failure (I/O errors, a
/// corrupt header on a normally-referenced segment) propagates: silently
/// re-creating an existing segment would destroy fsync-acked records.
fn open_active(
    dir: &Path,
    base: u64,
    degrade_invalid: bool,
    recovery: &mut RecoveryStats,
) -> io::Result<ActiveSegment> {
    let path = segment_path(dir, base);
    match scan_segment(&path, base) {
        Ok((offsets, tail, scanned)) => {
            recovery.segments_scanned += 1;
            recovery.records_scanned += scanned;
            let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
            file.set_len(tail)?;
            file.seek(SeekFrom::End(0))?;
            let records = offsets.len() as u64;
            Ok(ActiveSegment {
                base,
                path,
                file,
                offsets,
                tail,
                synced_records: records,
                synced_tail: tail,
            })
        }
        Err(e) => {
            let recreate = match fs::metadata(&path) {
                Err(me) if me.kind() == io::ErrorKind::NotFound => true,
                Ok(m) => {
                    m.len() < SEGMENT_HEADER_BYTES
                        || (degrade_invalid && e.kind() == io::ErrorKind::InvalidData)
                }
                Err(_) => false,
            };
            if recreate {
                create_segment(dir, base)
            } else {
                Err(e)
            }
        }
    }
}

#[derive(Debug)]
struct Manifest {
    prefix_dropped: u64,
    sealed: Vec<(u64, u64, u64)>, // (base, count, bytes)
    active_base: u64,
}

fn read_manifest(path: &Path) -> io::Result<Option<Manifest>> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    let bad = || io::Error::new(io::ErrorKind::InvalidData, "corrupt manifest");
    if data.len() < 4 + 8 + 4 + 8 + 4 || &data[..4] != MANIFEST_MAGIC {
        return Err(bad());
    }
    let body_len = data.len() - 4;
    let crc = u32::from_le_bytes(data[body_len..].try_into().expect("4 bytes"));
    if crc32::checksum(&data[..body_len]) != crc {
        return Err(bad());
    }
    let mut pos = 4;
    let read_u64 = |pos: &mut usize| -> io::Result<u64> {
        if *pos + 8 > body_len {
            return Err(bad());
        }
        let v = u64::from_le_bytes(data[*pos..*pos + 8].try_into().expect("8 bytes"));
        *pos += 8;
        Ok(v)
    };
    let prefix_dropped = read_u64(&mut pos)?;
    let count = read_u64(&mut pos)?;
    let mut sealed = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let base = read_u64(&mut pos)?;
        let n = read_u64(&mut pos)?;
        let bytes = read_u64(&mut pos)?;
        sealed.push((base, n, bytes));
    }
    let active_base = read_u64(&mut pos)?;
    Ok(Some(Manifest {
        prefix_dropped,
        sealed,
        active_base,
    }))
}

impl SegmentedLog {
    /// Opens (or creates) the segmented log rooted at `dir`, recovering the
    /// longest valid prefix. Only the active segment is scanned; sealed
    /// segments are trusted from the manifest (see [`RecoveryStats`]).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors opening or scanning the directory.
    pub fn open(
        dir: impl AsRef<Path>,
        policy: SyncPolicy,
        config: SegmentConfig,
    ) -> io::Result<SegmentedLog> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let config = SegmentConfig {
            records_per_segment: config.records_per_segment.max(1),
        };
        let manifest = read_manifest(&dir.join("manifest")).unwrap_or(None);
        let mut recovery = RecoveryStats::default();
        let mut log = match manifest {
            Some(m) => Self::open_from_manifest(&dir, policy, config, m, &mut recovery)?,
            None => Self::rebuild_by_scanning(&dir, policy, config, &mut recovery)?,
        };
        log.recovery = recovery;
        log.remove_orphans()?;
        Ok(log)
    }

    fn open_from_manifest(
        dir: &Path,
        policy: SyncPolicy,
        config: SegmentConfig,
        manifest: Manifest,
        recovery: &mut RecoveryStats,
    ) -> io::Result<SegmentedLog> {
        let mut sealed = Vec::with_capacity(manifest.sealed.len());
        let mut expected_base = manifest.sealed.first().map(|&(b, ..)| b);
        let mut damaged: Option<u64> = None;
        for &(base, count, bytes) in &manifest.sealed {
            // Cheap validation only: existence, header-sized, recorded byte
            // length. A disagreement marks the longest-valid-prefix point.
            let path = segment_path(dir, base);
            let ok = expected_base == Some(base)
                && fs::metadata(&path)
                    .map(|m| m.len() == bytes)
                    .unwrap_or(false);
            if !ok {
                damaged = Some(base);
                break;
            }
            expected_base = Some(base + count);
            sealed.push(SealedSegment {
                base,
                count,
                bytes,
                path,
                offsets: RefCell::new(None),
                file: RefCell::new(None),
            });
        }
        if let Some(base) = damaged {
            // Disagreement: fall back to scanning what actually exists up to
            // the damaged point — the damaged segment becomes the active
            // tail (longest valid prefix at segment granularity).
            return Self::recover_damaged(
                dir,
                policy,
                config,
                manifest.prefix_dropped,
                sealed,
                base,
                recovery,
            );
        }
        let active = open_active(dir, manifest.active_base, false, recovery)?;
        Ok(SegmentedLog {
            dir: dir.to_path_buf(),
            policy,
            config,
            prefix_dropped: manifest.prefix_dropped,
            sealed,
            active,
            recovery: RecoveryStats::default(),
        })
    }

    /// A sealed segment disagreed with the manifest: re-scan it for its
    /// valid record prefix and make it the active tail, dropping everything
    /// after it.
    fn recover_damaged(
        dir: &Path,
        policy: SyncPolicy,
        config: SegmentConfig,
        prefix_dropped: u64,
        sealed: Vec<SealedSegment>,
        damaged_base: u64,
        recovery: &mut RecoveryStats,
    ) -> io::Result<SegmentedLog> {
        let active = open_active(dir, damaged_base, true, recovery)?;
        let log = SegmentedLog {
            dir: dir.to_path_buf(),
            policy,
            config,
            prefix_dropped: prefix_dropped.min(damaged_base),
            sealed,
            active,
            recovery: RecoveryStats::default(),
        };
        log.write_manifest()?;
        Ok(log)
    }

    /// No (valid) manifest: rebuild from whatever segment files exist —
    /// every segment is scanned, contiguity decides the longest valid
    /// prefix, and the last contiguous segment becomes active.
    fn rebuild_by_scanning(
        dir: &Path,
        policy: SyncPolicy,
        config: SegmentConfig,
        recovery: &mut RecoveryStats,
    ) -> io::Result<SegmentedLog> {
        let mut bases: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_base(&e.file_name().to_string_lossy()))
            .collect();
        bases.sort_unstable();
        let mut sealed: Vec<SealedSegment> = Vec::new();
        let mut active: Option<ActiveSegment> = None;
        let mut expected = bases.first().copied().unwrap_or(0);
        for (i, &base) in bases.iter().enumerate() {
            if base != expected {
                break; // gap: longest contiguous prefix ends here
            }
            let path = segment_path(dir, base);
            let Ok((offsets, tail, scanned)) = scan_segment(&path, base) else {
                break;
            };
            recovery.segments_scanned += 1;
            recovery.records_scanned += scanned;
            expected = base + offsets.len() as u64;
            if i + 1 == bases.len() {
                let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
                file.set_len(tail)?;
                file.seek(SeekFrom::End(0))?;
                let records = offsets.len() as u64;
                active = Some(ActiveSegment {
                    base,
                    path,
                    file,
                    offsets,
                    tail,
                    synced_records: records,
                    synced_tail: tail,
                });
            } else {
                sealed.push(SealedSegment {
                    base,
                    count: offsets.len() as u64,
                    bytes: tail,
                    path,
                    offsets: RefCell::new(Some(offsets)),
                    file: RefCell::new(None),
                });
            }
        }
        let active = match active {
            Some(a) => a,
            None => {
                let base = sealed.last().map(|s| s.base + s.count).unwrap_or(0);
                create_segment(dir, base)?
            }
        };
        let prefix_dropped = sealed.first().map(|s| s.base).unwrap_or(active.base);
        let log = SegmentedLog {
            dir: dir.to_path_buf(),
            policy,
            config,
            prefix_dropped,
            sealed,
            active,
            recovery: RecoveryStats::default(),
        };
        log.write_manifest()?;
        Ok(log)
    }

    /// Deletes segment files the manifest no longer references (leftovers of
    /// a truncation that crashed between the manifest write and the
    /// deletes).
    fn remove_orphans(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(base) = parse_segment_base(&name) else {
                continue;
            };
            let referenced = base == self.active.base || self.sealed.iter().any(|s| s.base == base);
            if !referenced {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    fn write_manifest(&self) -> io::Result<()> {
        let mut body = Vec::new();
        body.extend_from_slice(MANIFEST_MAGIC);
        body.extend_from_slice(&self.prefix_dropped.to_le_bytes());
        body.extend_from_slice(&(self.sealed.len() as u64).to_le_bytes());
        for s in &self.sealed {
            body.extend_from_slice(&s.base.to_le_bytes());
            body.extend_from_slice(&s.count.to_le_bytes());
            body.extend_from_slice(&s.bytes.to_le_bytes());
        }
        body.extend_from_slice(&self.active.base.to_le_bytes());
        let crc = crc32::checksum(&body).to_le_bytes();
        let tmp = self.dir.join("manifest.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&body)?;
            f.write_all(&crc)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join("manifest"))?;
        crate::sync_dir(&self.dir);
        Ok(())
    }

    /// Seals the active segment (fsync, manifest) and opens a fresh one.
    fn roll(&mut self) -> io::Result<()> {
        // Order matters: data durable first, then the manifest that vouches
        // for it, then the new file. Any crash in between recovers.
        self.active.file.sync_data()?;
        let next_base = self.active.base + self.active.offsets.len() as u64;
        let sealed = SealedSegment {
            base: self.active.base,
            count: self.active.offsets.len() as u64,
            bytes: self.active.tail,
            path: self.active.path.clone(),
            offsets: RefCell::new(Some(std::mem::take(&mut self.active.offsets))),
            file: RefCell::new(None),
        };
        self.sealed.push(sealed);
        let previous_active = self.active.base;
        self.active.base = next_base; // manifest below must name the new base
        self.write_manifest().inspect_err(|_| {
            // Roll back the in-memory seal on failure.
            let s = self.sealed.pop().expect("just pushed");
            self.active.base = previous_active;
            self.active.offsets = s.offsets.into_inner().unwrap_or_default();
        })?;
        self.active = create_segment(&self.dir, next_base)?;
        Ok(())
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the last open had to scan.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Lowest readable record index (records below it were truncated).
    pub fn first_index(&self) -> u64 {
        self.prefix_dropped
    }

    /// Segment files currently on disk (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Bytes currently on disk across all live segments.
    pub fn byte_len(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes).sum::<u64>() + self.active.tail
    }

    fn read_sealed(&self, seg: &SealedSegment, local: u64) -> io::Result<Option<Vec<u8>>> {
        {
            let mut cache = seg.offsets.borrow_mut();
            if cache.is_none() {
                *cache = Some(index_segment(&seg.path, seg.count)?);
            }
        }
        let offsets = seg.offsets.borrow();
        let offsets = offsets.as_ref().expect("just built");
        let Some(&offset) = offsets.get(local as usize) else {
            return Ok(None);
        };
        {
            let mut handle = seg.file.borrow_mut();
            if handle.is_none() {
                *handle = Some(File::open(&seg.path)?);
            }
        }
        let handle = seg.file.borrow();
        read_frame_in(handle.as_ref().expect("just opened"), &seg.path, offset).map(Some)
    }
}

/// Reads one CRC-checked frame at `offset` from an already-open handle —
/// positional reads on Unix (no seek, no cursor disturbance, so the active
/// segment's append cursor is safe); a one-off reopen elsewhere.
fn read_frame_in(file: &File, path: &Path, offset: u64) -> io::Result<Vec<u8>> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        let _ = path;
        let mut header = [0u8; 8];
        file.read_exact_at(&mut header, offset)?;
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        let mut payload = vec![0u8; len];
        file.read_exact_at(&mut payload, offset + 8)?;
        if crc32::checksum(&payload) != crc {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "crc mismatch"));
        }
        Ok(payload)
    }
    #[cfg(not(unix))]
    {
        let _ = file;
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut header = [0u8; 8];
        file.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        let mut payload = vec![0u8; len];
        file.read_exact(&mut payload)?;
        if crc32::checksum(&payload) != crc {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "crc mismatch"));
        }
        Ok(payload)
    }
}

impl RecordLog for SegmentedLog {
    fn append(&mut self, record: &[u8]) -> io::Result<u64> {
        if self.active.offsets.len() as u64 >= self.config.records_per_segment {
            self.roll()?;
        }
        let len = (record.len() as u32).to_le_bytes();
        let crc = crc32::checksum(record).to_le_bytes();
        self.active.file.write_all(&len)?;
        self.active.file.write_all(&crc)?;
        self.active.file.write_all(record)?;
        self.active.offsets.push(self.active.tail);
        self.active.tail += FRAME_HEADER_BYTES + record.len() as u64;
        if self.policy == SyncPolicy::Sync {
            self.sync()?;
        }
        Ok(self.active.base + self.active.offsets.len() as u64 - 1)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.policy != SyncPolicy::None {
            self.active.file.sync_data()?;
        }
        self.active.synced_records = self.active.offsets.len() as u64;
        self.active.synced_tail = self.active.tail;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.active.base + self.active.offsets.len() as u64
    }

    fn read(&self, index: u64) -> io::Result<Option<Vec<u8>>> {
        if index < self.prefix_dropped || index >= self.len() {
            return Ok(None);
        }
        if index >= self.active.base {
            let local = (index - self.active.base) as usize;
            let Some(&offset) = self.active.offsets.get(local) else {
                return Ok(None);
            };
            return read_frame_in(&self.active.file, &self.active.path, offset).map(Some);
        }
        match self
            .sealed
            .binary_search_by(|s| match (s.base <= index, index < s.base + s.count) {
                (true, true) => std::cmp::Ordering::Equal,
                (false, _) => std::cmp::Ordering::Greater,
                (_, false) => std::cmp::Ordering::Less,
            }) {
            Ok(i) => {
                let seg = &self.sealed[i];
                self.read_sealed(seg, index - seg.base)
            }
            Err(_) => Ok(None),
        }
    }

    fn first_index(&self) -> u64 {
        self.prefix_dropped
    }

    fn truncate_prefix(&mut self, upto: u64) -> io::Result<()> {
        let upto = upto.min(self.len());
        if upto <= self.prefix_dropped {
            return Ok(());
        }
        self.prefix_dropped = upto;
        // Drop fully-covered sealed segments: manifest first (atomic), file
        // deletes second — a crash in between leaves orphans, not data loss.
        let mut dropped = Vec::new();
        self.sealed.retain(|s| {
            if s.base + s.count <= upto {
                dropped.push(s.path.clone());
                false
            } else {
                true
            }
        });
        self.write_manifest()?;
        for path in dropped {
            let _ = fs::remove_file(path);
        }
        Ok(())
    }

    fn fast_forward(&mut self, index: u64) -> io::Result<()> {
        if index <= self.len() {
            return self.truncate_prefix(index);
        }
        // Skip to `index` without materializing pad records: every existing
        // segment is dropped and a fresh active segment opens at the target.
        let old_sealed: Vec<PathBuf> = self.sealed.drain(..).map(|s| s.path).collect();
        let old_active = self.active.path.clone();
        self.prefix_dropped = index;
        self.active = create_segment(&self.dir, index)?;
        self.write_manifest()?;
        for path in old_sealed {
            let _ = fs::remove_file(path);
        }
        if old_active != self.active.path {
            let _ = fs::remove_file(old_active);
        }
        Ok(())
    }

    fn simulate_crash(&mut self) {
        // Modeled power loss (the simulator's crash event): the active
        // segment keeps only its synced prefix. Sealed segments were fsynced
        // when sealed, so they survive — exactly the OS contract.
        self.active
            .offsets
            .truncate(self.active.synced_records as usize);
        self.active.tail = self.active.synced_tail;
        let _ = self.active.file.set_len(self.active.synced_tail);
        let _ = self.active.file.seek(SeekFrom::End(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smartchain-segmented-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(n: u64) -> SegmentConfig {
        SegmentConfig {
            records_per_segment: n,
        }
    }

    #[test]
    fn roundtrip_across_rolls_and_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let mut log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(4)).unwrap();
            for i in 0..11u64 {
                assert_eq!(log.append(format!("rec-{i}").as_bytes()).unwrap(), i);
            }
            assert_eq!(log.segment_count(), 3); // [0..4) [4..8) active [8..11)
            assert_eq!(log.read(0).unwrap().unwrap(), b"rec-0");
            assert_eq!(log.read(7).unwrap().unwrap(), b"rec-7");
            assert_eq!(log.read(10).unwrap().unwrap(), b"rec-10");
            assert_eq!(log.read(11).unwrap(), None);
        }
        let log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(4)).unwrap();
        assert_eq!(log.len(), 11);
        for i in 0..11u64 {
            assert_eq!(
                log.read(i).unwrap().unwrap(),
                format!("rec-{i}").into_bytes()
            );
        }
        // Recovery scanned only the active segment (3 records), not the 8
        // sealed ones.
        assert_eq!(
            log.recovery_stats(),
            RecoveryStats {
                segments_scanned: 1,
                records_scanned: 3
            }
        );
    }

    #[test]
    fn truncate_prefix_deletes_whole_segments() {
        let dir = tmpdir("truncate");
        let mut log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(4)).unwrap();
        for i in 0..14u64 {
            log.append(&[i as u8]).unwrap();
        }
        assert_eq!(log.segment_count(), 4);
        log.truncate_prefix(9).unwrap();
        // Segments [0..4) and [4..8) are gone; [8..12) keeps record 8 on
        // disk but hides it behind the watermark.
        assert_eq!(log.segment_count(), 2);
        assert_eq!(log.read(7).unwrap(), None);
        assert_eq!(log.read(8).unwrap(), None);
        assert_eq!(log.read(9).unwrap().unwrap(), vec![9]);
        assert_eq!(log.len(), 14);
        assert_eq!(log.append(&[14]).unwrap(), 14);
        drop(log);
        let log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(4)).unwrap();
        assert_eq!(log.read(5).unwrap(), None);
        assert_eq!(log.read(9).unwrap().unwrap(), vec![9]);
        assert_eq!(log.read(14).unwrap().unwrap(), vec![14]);
    }

    #[test]
    fn torn_active_tail_is_discarded() {
        let dir = tmpdir("torn");
        {
            let mut log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(8)).unwrap();
            for i in 0..3u64 {
                log.append(&[i as u8; 16]).unwrap();
            }
        }
        // Crash mid-append: half a frame at the active tail.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(segment_path(&dir, 0))
                .unwrap();
            f.write_all(&[0xFF; 5]).unwrap();
        }
        let log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(8)).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log.read(2).unwrap().unwrap(), vec![2u8; 16]);
    }

    #[test]
    fn crash_between_manifest_and_deletes_leaves_recoverable_orphans() {
        let dir = tmpdir("orphan");
        let mut log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(2)).unwrap();
        for i in 0..6u64 {
            log.append(&[i as u8]).unwrap();
        }
        drop(log);
        // Simulate the crash window: re-create a dropped segment file as it
        // was before a truncation wrote the manifest... i.e. write a
        // manifest that no longer references segment 0 while its file stays.
        {
            let mut log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(2)).unwrap();
            // Truncation deletes files after the manifest; emulate the crash
            // by re-creating the dropped file afterwards.
            log.truncate_prefix(4).unwrap();
        }
        let orphan = segment_path(&dir, 0);
        {
            let mut f = File::create(&orphan).unwrap();
            f.write_all(SEGMENT_MAGIC).unwrap();
            f.write_all(&0u64.to_le_bytes()).unwrap();
        }
        let log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(2)).unwrap();
        assert!(!orphan.exists(), "orphan segment removed at open");
        assert_eq!(log.read(3).unwrap(), None);
        assert_eq!(log.read(4).unwrap().unwrap(), vec![4]);
        assert_eq!(log.len(), 6);
    }

    #[test]
    fn manifest_segment_disagreement_degrades_to_valid_prefix() {
        let dir = tmpdir("disagree");
        {
            let mut log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(3)).unwrap();
            for i in 0..9u64 {
                log.append(&[i as u8; 8]).unwrap();
            }
        }
        // Corrupt sealed segment [3..6): chop its file short.
        let victim = segment_path(&dir, 3);
        let len = fs::metadata(&victim).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&victim)
            .unwrap()
            .set_len(len - 4)
            .unwrap();
        let log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(3)).unwrap();
        // Records 0..3 intact; segment 3 re-scanned to its valid prefix
        // (records 3, 4 — record 5's frame was chopped); everything after is
        // dropped.
        assert_eq!(log.len(), 5);
        assert_eq!(log.read(2).unwrap().unwrap(), vec![2u8; 8]);
        assert_eq!(log.read(4).unwrap().unwrap(), vec![4u8; 8]);
        assert_eq!(log.read(6).unwrap(), None);
        // And the log still appends from there.
        let mut log = log;
        assert_eq!(log.append(&[55]).unwrap(), 5);
    }

    #[test]
    fn missing_manifest_rebuilds_by_scanning() {
        let dir = tmpdir("rebuild");
        {
            let mut log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(3)).unwrap();
            for i in 0..7u64 {
                log.append(&[i as u8]).unwrap();
            }
        }
        fs::remove_file(dir.join("manifest")).unwrap();
        let log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(3)).unwrap();
        assert_eq!(log.len(), 7);
        assert_eq!(log.read(6).unwrap().unwrap(), vec![6]);
        assert_eq!(log.recovery_stats().segments_scanned, 3);
    }

    #[test]
    fn simulate_crash_drops_unsynced_active_suffix() {
        let dir = tmpdir("crash");
        let mut log = SegmentedLog::open(&dir, SyncPolicy::Async, cfg(8)).unwrap();
        log.append(b"keep").unwrap();
        log.sync().unwrap();
        log.append(b"lose").unwrap();
        log.simulate_crash();
        assert_eq!(log.len(), 1);
        assert_eq!(log.read(0).unwrap().unwrap(), b"keep");
        assert_eq!(log.read(1).unwrap(), None);
        // Sealed segments survive a crash (fsynced when sealed); the
        // unsynced suffix of the new active segment does not.
        let mut log = log;
        for i in 0..9u64 {
            log.append(&[i as u8]).unwrap();
        }
        assert_eq!(log.len(), 10); // 1 survivor + 9 new; roll sealed [0..8)
        log.simulate_crash();
        assert_eq!(log.len(), 8, "sealed records survive, active suffix lost");
        assert_eq!(log.read(7).unwrap().unwrap(), vec![6]);
    }

    #[test]
    fn fast_forward_skips_without_padding() {
        let dir = tmpdir("ff");
        let mut log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(4)).unwrap();
        log.append(b"a").unwrap();
        log.fast_forward(1_000_000).unwrap();
        assert_eq!(log.len(), 1_000_000);
        assert_eq!(log.segment_count(), 1);
        assert_eq!(log.read(0).unwrap(), None);
        assert_eq!(log.append(b"b").unwrap(), 1_000_000);
        drop(log);
        let log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg(4)).unwrap();
        assert_eq!(log.read(1_000_000).unwrap().unwrap(), b"b");
    }
}
