//! Deterministic binary encoding for SmartChain.
//!
//! Blocks are hashed, signed, and persisted; all three require a *canonical*
//! byte representation — two replicas encoding the same logical value must
//! produce identical bytes. This module provides a small, explicit codec:
//! fixed-width little-endian integers, `u32`-length-prefixed byte strings and
//! sequences, and manual [`Encode`]/[`Decode`] implementations for every wire
//! type (no derive magic, no implicit versioning).
//!
//! # Examples
//!
//! ```
//! use smartchain_codec::{Decode, Encode};
//!
//! let value = (42u64, String::from("genesis"), vec![1u8, 2, 3]);
//! let bytes = smartchain_codec::to_bytes(&value);
//! let back: (u64, String, Vec<u8>) = smartchain_codec::from_bytes(&bytes)?;
//! assert_eq!(value, back);
//! # Ok::<(), smartchain_codec::DecodeError>(())
//! ```

use bytes::{Buf, BufMut};

/// Error returned when decoding malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input (or a sanity limit).
    BadLength(u64),
    /// An enum discriminant was not recognized.
    BadDiscriminant(u32),
    /// Bytes were not valid UTF-8 where a string was expected.
    BadUtf8,
    /// Input had trailing garbage after a complete value.
    TrailingBytes(usize),
    /// A domain-specific invariant failed during decoding.
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::BadLength(n) => write!(f, "length prefix {n} exceeds remaining input"),
            DecodeError::BadDiscriminant(d) => write!(f, "unknown discriminant {d}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A value with a canonical binary encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// A value that can be decoded from its canonical encoding.
pub trait Decode: Sized {
    /// Reads a value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError>;
}

/// Encodes any [`Encode`] value into a fresh buffer.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    value.to_vec()
}

/// Decodes a value and requires the input to be fully consumed.
///
/// # Errors
///
/// Returns [`DecodeError::TrailingBytes`] when the input is longer than one
/// encoded value, plus any error from the value's own decoder.
pub fn from_bytes<T: Decode>(mut input: &[u8]) -> Result<T, DecodeError> {
    let value = T::decode(&mut input)?;
    if !input.is_empty() {
        return Err(DecodeError::TrailingBytes(input.len()));
    }
    Ok(value)
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if input.len() < n {
        return Err(DecodeError::UnexpectedEnd);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.put_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $ty {
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let bytes = take(input, std::mem::size_of::<$ty>())?;
                let mut buf = bytes;
                Ok(<$ty>::from_le_bytes(
                    buf.copy_to_bytes(std::mem::size_of::<$ty>()).as_ref().try_into()
                        .expect("sized read"),
                ))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64);

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::BadDiscriminant(other as u32)),
        }
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl Decode for usize {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = u64::decode(input)?;
        usize::try_from(v).map_err(|_| DecodeError::BadLength(v))
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = take(input, N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }
}

fn decode_len(input: &mut &[u8]) -> Result<usize, DecodeError> {
    let len = u32::decode(input)? as usize;
    if len > input.len() {
        return Err(DecodeError::BadLength(len as u64));
    }
    Ok(len)
}

impl Encode for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.put_slice(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = decode_len(input)?;
        Ok(take(input, len)?.to_vec())
    }
}

impl Encode for [u8] {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.put_slice(self);
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_bytes().encode(out);
    }
}

impl Decode for String {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = Vec::<u8>::decode(input)?;
        String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)
    }
}

/// Sequences of encodable values (length-prefixed).
///
/// Note the deliberate absence of a blanket `Vec<u8>` conflict: byte vectors
/// use the compact raw encoding above, while `Vec<T>` for structured `T`
/// encodes each element in turn.
macro_rules! impl_vec_like {
    ($($ty:ty),*) => {$(
        impl Encode for Vec<$ty> {
            fn encode(&self, out: &mut Vec<u8>) {
                (self.len() as u32).encode(out);
                for item in self {
                    item.encode(out);
                }
            }
        }
        impl Decode for Vec<$ty> {
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let len = u32::decode(input)? as usize;
                // Each element takes at least one byte; bound allocation.
                if len > input.len() {
                    return Err(DecodeError::BadLength(len as u64));
                }
                let mut out = Vec::with_capacity(len);
                for _ in 0..len {
                    out.push(<$ty>::decode(input)?);
                }
                Ok(out)
            }
        }
    )*};
}

impl_vec_like!(u16, u32, u64, String);

/// Generic helpers for encoding sequences of structured values, avoiding
/// coherence clashes with the specialized `Vec<u8>` impl.
pub fn encode_seq<T: Encode>(items: &[T], out: &mut Vec<u8>) {
    (items.len() as u32).encode(out);
    for item in items {
        item.encode(out);
    }
}

/// Decodes a sequence written by [`encode_seq`].
///
/// # Errors
///
/// Propagates element decode errors and rejects length prefixes larger than
/// the remaining input.
pub fn decode_seq<T: Decode>(input: &mut &[u8]) -> Result<Vec<T>, DecodeError> {
    let len = u32::decode(input)? as usize;
    if len > input.len() {
        return Err(DecodeError::BadLength(len as u64));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(T::decode(input)?);
    }
    Ok(out)
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            other => Err(DecodeError::BadDiscriminant(other as u32)),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.encode(out);)+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                Ok(($($name::decode(input)?,)+))
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ints_roundtrip() {
        let bytes = to_bytes(&(1u8, 2u16, 3u32, 4u64, -5i64));
        let back: (u8, u16, u32, u64, i64) = from_bytes(&bytes).unwrap();
        assert_eq!(back, (1, 2, 3, 4, -5));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0xff);
        assert_eq!(
            from_bytes::<u32>(&bytes),
            Err(DecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&0xdead_beefu64);
        assert_eq!(
            from_bytes::<u64>(&bytes[..5]),
            Err(DecodeError::UnexpectedEnd)
        );
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = Vec::new();
        (1_000_000u32).encode(&mut bytes); // claims 1MB follows
        bytes.push(0);
        assert!(matches!(
            from_bytes::<Vec<u8>>(&bytes),
            Err(DecodeError::BadLength(_))
        ));
    }

    #[test]
    fn bool_rejects_junk() {
        assert!(matches!(
            from_bytes::<bool>(&[2]),
            Err(DecodeError::BadDiscriminant(2))
        ));
    }

    #[test]
    fn option_roundtrip() {
        let v: Option<u64> = Some(9);
        assert_eq!(from_bytes::<Option<u64>>(&to_bytes(&v)).unwrap(), v);
        let n: Option<u64> = None;
        assert_eq!(from_bytes::<Option<u64>>(&to_bytes(&n)).unwrap(), n);
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = (vec![3u64, 1, 2], String::from("x"));
        assert_eq!(to_bytes(&v), to_bytes(&v.clone()));
    }

    #[test]
    fn seq_helpers_roundtrip() {
        let items = vec![(1u64, vec![1u8, 2]), (2u64, vec![])];
        let mut out = Vec::new();
        encode_seq(&items, &mut out);
        let mut input = out.as_slice();
        let back: Vec<(u64, Vec<u8>)> = decode_seq(&mut input).unwrap();
        assert_eq!(back, items);
        assert!(input.is_empty());
    }

    proptest! {
        #[test]
        fn prop_bytes_roundtrip(data: Vec<u8>) {
            let bytes = to_bytes(&data);
            prop_assert_eq!(from_bytes::<Vec<u8>>(&bytes).unwrap(), data);
        }

        #[test]
        fn prop_strings_roundtrip(s: String) {
            let bytes = to_bytes(&s);
            prop_assert_eq!(from_bytes::<String>(&bytes).unwrap(), s);
        }

        #[test]
        fn prop_tuples_roundtrip(a: u64, b: Vec<u8>, c: Option<u32>) {
            let v = (a, b, c);
            let bytes = to_bytes(&v);
            prop_assert_eq!(from_bytes::<(u64, Vec<u8>, Option<u32>)>(&bytes).unwrap(), v);
        }

        #[test]
        fn prop_u64_vecs_roundtrip(v: Vec<u64>) {
            let bytes = to_bytes(&v);
            prop_assert_eq!(from_bytes::<Vec<u64>>(&bytes).unwrap(), v);
        }

        #[test]
        fn prop_decode_never_panics(data: Vec<u8>) {
            // Decoding arbitrary junk must return an error, never panic.
            let _ = from_bytes::<(u64, Vec<u8>, String)>(&data);
            let _ = from_bytes::<Vec<u64>>(&data);
            let _ = from_bytes::<Option<Vec<u8>>>(&data);
        }
    }
}
