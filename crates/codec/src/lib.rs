//! Deterministic binary encoding for SmartChain.
//!
//! Blocks are hashed, signed, and persisted; all three require a *canonical*
//! byte representation — two replicas encoding the same logical value must
//! produce identical bytes. This module provides a small, explicit codec:
//! fixed-width little-endian integers, `u32`-length-prefixed byte strings and
//! sequences, and manual [`Encode`]/[`Decode`] implementations for every wire
//! type (no derive magic, no implicit versioning).
//!
//! # Examples
//!
//! ```
//! use smartchain_codec::{Decode, Encode};
//!
//! let value = (42u64, String::from("genesis"), vec![1u8, 2, 3]);
//! let bytes = smartchain_codec::to_bytes(&value);
//! let back: (u64, String, Vec<u8>) = smartchain_codec::from_bytes(&bytes)?;
//! assert_eq!(value, back);
//! # Ok::<(), smartchain_codec::DecodeError>(())
//! ```

/// Error returned when decoding malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input (or a sanity limit).
    BadLength(u64),
    /// An enum discriminant was not recognized.
    BadDiscriminant(u32),
    /// Bytes were not valid UTF-8 where a string was expected.
    BadUtf8,
    /// Input had trailing garbage after a complete value.
    TrailingBytes(usize),
    /// A domain-specific invariant failed during decoding.
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::BadLength(n) => write!(f, "length prefix {n} exceeds remaining input"),
            DecodeError::BadDiscriminant(d) => write!(f, "unknown discriminant {d}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A value with a canonical binary encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Exact length of the canonical encoding in bytes.
    ///
    /// This is the single source of truth for wire sizes: simulator NIC
    /// models derive message sizes from it instead of keeping hand-rolled
    /// per-variant estimates in sync with the encoders. The default
    /// materializes the encoding; cheap types override it.
    fn encoded_len(&self) -> usize {
        self.to_vec().len()
    }
}

/// Exact encoded length of `value` (see [`Encode::encoded_len`]).
pub fn encoded_len<T: Encode + ?Sized>(value: &T) -> usize {
    value.encoded_len()
}

/// Per-message transport framing (length prefix + type/auth overhead) that
/// the simulator's NIC model charges on top of [`Encode::encoded_len`].
/// One shared constant so every message enum's `wire_size` is
/// `FRAME_BYTES + encoded_len` — no per-variant hand-rolled estimates.
pub const FRAME_BYTES: usize = 8;

/// A value that can be decoded from its canonical encoding.
pub trait Decode: Sized {
    /// Reads a value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError>;
}

/// Encodes any [`Encode`] value into a fresh buffer.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    value.to_vec()
}

/// Decodes a value and requires the input to be fully consumed.
///
/// # Errors
///
/// Returns [`DecodeError::TrailingBytes`] when the input is longer than one
/// encoded value, plus any error from the value's own decoder.
pub fn from_bytes<T: Decode>(mut input: &[u8]) -> Result<T, DecodeError> {
    let value = T::decode(&mut input)?;
    if !input.is_empty() {
        return Err(DecodeError::TrailingBytes(input.len()));
    }
    Ok(value)
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if input.len() < n {
        return Err(DecodeError::UnexpectedEnd);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$ty>()
            }
        }
        impl Decode for $ty {
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let bytes = take(input, std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized read")))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64);

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::BadDiscriminant(other as u32)),
        }
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for usize {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = u64::decode(input)?;
        usize::try_from(v).map_err(|_| DecodeError::BadLength(v))
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn encoded_len(&self) -> usize {
        N
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = take(input, N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }
}

/// Shared values encode exactly like the value they point at, so swapping a
/// field from `T` to `Arc<T>` never changes the wire format. `Decode`
/// allocates a fresh `Arc`; sharing across decoded messages is established
/// by the layers that hold the handles, not by the codec.
impl<T: Encode + ?Sized> Encode for std::sync::Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

impl<T: Decode> Decode for std::sync::Arc<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(std::sync::Arc::new(T::decode(input)?))
    }
}

/// Encodes `value` once into a reference-counted buffer that can be fanned
/// out to many consumers (e.g. one frame body shared by every peer's write
/// queue) without further copies.
pub fn to_shared_bytes<T: Encode + ?Sized>(value: &T) -> std::sync::Arc<[u8]> {
    value.to_vec().into()
}

fn decode_len(input: &mut &[u8]) -> Result<usize, DecodeError> {
    let len = u32::decode(input)? as usize;
    if len > input.len() {
        return Err(DecodeError::BadLength(len as u64));
    }
    Ok(len)
}

impl Encode for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for Vec<u8> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = decode_len(input)?;
        Ok(take(input, len)?.to_vec())
    }
}

impl Encode for [u8] {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_bytes().encode(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for String {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = Vec::<u8>::decode(input)?;
        String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)
    }
}

/// Sequences of encodable values (length-prefixed).
///
/// Note the deliberate absence of a blanket `Vec<u8>` conflict: byte vectors
/// use the compact raw encoding above, while `Vec<T>` for structured `T`
/// encodes each element in turn.
macro_rules! impl_vec_like {
    ($($ty:ty),*) => {$(
        impl Encode for Vec<$ty> {
            fn encode(&self, out: &mut Vec<u8>) {
                (self.len() as u32).encode(out);
                for item in self {
                    item.encode(out);
                }
            }
            fn encoded_len(&self) -> usize {
                4 + self.iter().map(Encode::encoded_len).sum::<usize>()
            }
        }
        impl Decode for Vec<$ty> {
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let len = u32::decode(input)? as usize;
                // Each element takes at least one byte; bound allocation.
                if len > input.len() {
                    return Err(DecodeError::BadLength(len as u64));
                }
                let mut out = Vec::with_capacity(len);
                for _ in 0..len {
                    out.push(<$ty>::decode(input)?);
                }
                Ok(out)
            }
        }
    )*};
}

impl_vec_like!(u16, u32, u64, String);

/// Generic helpers for encoding sequences of structured values, avoiding
/// coherence clashes with the specialized `Vec<u8>` impl.
pub fn encode_seq<T: Encode>(items: &[T], out: &mut Vec<u8>) {
    (items.len() as u32).encode(out);
    for item in items {
        item.encode(out);
    }
}

/// Encoded length of a sequence written by [`encode_seq`].
pub fn seq_encoded_len<T: Encode>(items: &[T]) -> usize {
    4 + items.iter().map(Encode::encoded_len).sum::<usize>()
}

/// Decodes a sequence written by [`encode_seq`].
///
/// # Errors
///
/// Propagates element decode errors and rejects length prefixes larger than
/// the remaining input.
pub fn decode_seq<T: Decode>(input: &mut &[u8]) -> Result<Vec<T>, DecodeError> {
    let len = u32::decode(input)? as usize;
    if len > input.len() {
        return Err(DecodeError::BadLength(len as u64));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(T::decode(input)?);
    }
    Ok(out)
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            other => Err(DecodeError::BadDiscriminant(other as u32)),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.encode(out);)+
            }
            fn encoded_len(&self) -> usize {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                0 $(+ $name.encoded_len())+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                Ok(($($name::decode(input)?,)+))
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;

    use smartchain_sim::rng::SimRng;

    /// Seeded generator helpers standing in for proptest (the workspace
    /// builds without external crates).
    struct Gen(SimRng);

    impl Gen {
        fn new(seed: u64) -> Gen {
            Gen(SimRng::seed_from_u64(seed))
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        fn bytes(&mut self, max_len: usize) -> Vec<u8> {
            let len = self.0.gen_range(max_len as u64 + 1) as usize;
            self.0.gen_bytes(len)
        }

        fn string(&mut self, max_len: usize) -> String {
            let len = self.0.gen_range(max_len as u64 + 1);
            (0..len)
                .map(|_| char::from_u32((self.0.gen_range(0xd7ff)) as u32).unwrap_or('x'))
                .collect()
        }
    }

    #[test]
    fn ints_roundtrip() {
        let bytes = to_bytes(&(1u8, 2u16, 3u32, 4u64, -5i64));
        let back: (u8, u16, u32, u64, i64) = from_bytes(&bytes).unwrap();
        assert_eq!(back, (1, 2, 3, 4, -5));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0xff);
        assert_eq!(
            from_bytes::<u32>(&bytes),
            Err(DecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&0xdead_beefu64);
        assert_eq!(
            from_bytes::<u64>(&bytes[..5]),
            Err(DecodeError::UnexpectedEnd)
        );
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = Vec::new();
        (1_000_000u32).encode(&mut bytes); // claims 1MB follows
        bytes.push(0);
        assert!(matches!(
            from_bytes::<Vec<u8>>(&bytes),
            Err(DecodeError::BadLength(_))
        ));
    }

    #[test]
    fn bool_rejects_junk() {
        assert!(matches!(
            from_bytes::<bool>(&[2]),
            Err(DecodeError::BadDiscriminant(2))
        ));
    }

    #[test]
    fn option_roundtrip() {
        let v: Option<u64> = Some(9);
        assert_eq!(from_bytes::<Option<u64>>(&to_bytes(&v)).unwrap(), v);
        let n: Option<u64> = None;
        assert_eq!(from_bytes::<Option<u64>>(&to_bytes(&n)).unwrap(), n);
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = (vec![3u64, 1, 2], String::from("x"));
        assert_eq!(to_bytes(&v), to_bytes(&v.clone()));
    }

    #[test]
    fn seq_helpers_roundtrip() {
        let items = vec![(1u64, vec![1u8, 2]), (2u64, vec![])];
        let mut out = Vec::new();
        encode_seq(&items, &mut out);
        let mut input = out.as_slice();
        let back: Vec<(u64, Vec<u8>)> = decode_seq(&mut input).unwrap();
        assert_eq!(back, items);
        assert!(input.is_empty());
    }

    #[test]
    fn prop_bytes_roundtrip() {
        let mut g = Gen::new(1);
        for _ in 0..256 {
            let data = g.bytes(512);
            let bytes = to_bytes(&data);
            assert_eq!(from_bytes::<Vec<u8>>(&bytes).unwrap(), data);
        }
    }

    #[test]
    fn prop_strings_roundtrip() {
        let mut g = Gen::new(2);
        for _ in 0..256 {
            let s = g.string(128);
            let bytes = to_bytes(&s);
            assert_eq!(from_bytes::<String>(&bytes).unwrap(), s);
        }
    }

    #[test]
    fn prop_tuples_roundtrip() {
        let mut g = Gen::new(3);
        for _ in 0..256 {
            let c = if g.next_u64().is_multiple_of(2) {
                None
            } else {
                Some(g.next_u64() as u32)
            };
            let v = (g.next_u64(), g.bytes(64), c);
            let bytes = to_bytes(&v);
            assert_eq!(
                from_bytes::<(u64, Vec<u8>, Option<u32>)>(&bytes).unwrap(),
                v
            );
        }
    }

    #[test]
    fn prop_u64_vecs_roundtrip() {
        let mut g = Gen::new(4);
        for _ in 0..256 {
            let len = (g.next_u64() as usize) % 64;
            let v: Vec<u64> = (0..len).map(|_| g.next_u64()).collect();
            let bytes = to_bytes(&v);
            assert_eq!(from_bytes::<Vec<u64>>(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn encoded_len_matches_materialized_encoding() {
        let mut g = Gen::new(6);
        for _ in 0..256 {
            let tup = (g.next_u64(), g.bytes(64), g.string(32));
            assert_eq!(tup.encoded_len(), tup.to_vec().len());
            let opt = if g.next_u64().is_multiple_of(2) {
                None
            } else {
                Some(g.bytes(16))
            };
            assert_eq!(opt.encoded_len(), opt.to_vec().len());
            let v: Vec<u64> = (0..(g.next_u64() % 8)).map(|_| g.next_u64()).collect();
            assert_eq!(v.encoded_len(), v.to_vec().len());
            let arr = [7u8; 33];
            assert_eq!(arr.encoded_len(), arr.to_vec().len());
            assert_eq!(true.encoded_len(), 1);
            assert_eq!(3usize.encoded_len(), 8);
        }
    }

    #[test]
    fn prop_decode_never_panics() {
        // Decoding arbitrary junk must return an error, never panic.
        let mut g = Gen::new(5);
        for _ in 0..1024 {
            let data = g.bytes(96);
            let _ = from_bytes::<(u64, Vec<u8>, String)>(&data);
            let _ = from_bytes::<Vec<u64>>(&data);
            let _ = from_bytes::<Option<Vec<u8>>>(&data);
        }
    }
}
