//! Deterministic discrete-event simulation kernel for SmartChain experiments.
//!
//! The paper evaluates SMARTCHAIN on a 14-machine cluster (1 Gbps switched
//! network, SCSI HDDs, dual quad-core Xeons). This crate replaces that
//! testbed with explicit hardware models driven in *virtual time*:
//!
//! * [`hw::NicModel`] — per-node egress bandwidth + propagation delay; a
//!   leader broadcasting a 100 KB proposal to nine peers pays for nine
//!   serialized transmissions, exactly like a real NIC.
//! * [`hw::DiskModel`] — synchronous-write latency (the HDD fsync penalty at
//!   the heart of the paper's durability analysis) plus streaming bandwidth.
//! * [`hw::CpuModel`] — a sequential "state machine" lane plus a worker pool
//!   for parallel signature verification (Table I's `Parallel Sign.
//!   Verification` column).
//!
//! Experiments build a [`Cluster`] of [`Actor`]s (replicas, clients, load
//! generators), inject faults through [`Sim::crash`]/[`Sim::recover`] and
//! partitions, and read results from [`metrics`]. Every run is reproducible
//! from its RNG seed.

pub mod hw;
pub mod metrics;
pub mod rng;

use rng::SimRng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifies a node (replica, client, or auxiliary actor) in a simulation.
pub type NodeId = usize;

/// Virtual time in nanoseconds since simulation start.
pub type Time = u64;

/// One second in simulation time units.
pub const SECOND: Time = 1_000_000_000;
/// One millisecond in simulation time units.
pub const MILLI: Time = 1_000_000;
/// One microsecond in simulation time units.
pub const MICRO: Time = 1_000;

/// Event delivered to an [`Actor`].
#[derive(Debug)]
pub enum Event<M> {
    /// A message from another node.
    Message {
        /// Sender node.
        from: NodeId,
        /// The message itself.
        msg: M,
    },
    /// A timer set with [`Ctx::set_timer`] fired.
    Timer {
        /// Token passed when the timer was set.
        token: u64,
    },
    /// An asynchronous operation (disk write, pool verification) finished.
    OpDone {
        /// Token passed when the operation was submitted.
        token: u64,
    },
    /// Delivered once when the simulation starts.
    Start,
    /// The node just crashed; volatile state is about to be lost. Actors
    /// should treat fields representing stable storage as surviving and
    /// everything else as garbage after this event.
    Crash,
    /// The node restarted after a crash (recovery mode begins).
    Recover,
}

/// Blanket-implemented downcast support so experiment harnesses can inspect
/// concrete actor state after a run (meters, application state, ...).
pub trait AsAny {
    /// Upcasts to `Any` for downcasting by concrete type.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable variant of [`AsAny::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<T: 'static> AsAny for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A simulation participant.
pub trait Actor<M>: AsAny {
    /// Handles one event. All interaction with the world goes through `ctx`.
    fn on_event(&mut self, event: Event<M>, ctx: &mut Ctx<'_, M>);
}

#[derive(Debug)]
enum Kind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, token: u64 },
    OpDone { node: NodeId, token: u64 },
    Crash { node: NodeId },
    Recover { node: NodeId },
    Start { node: NodeId },
}

struct Scheduled<M> {
    at: Time,
    seq: u64,
    kind: Kind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Clone)]
struct NodeState {
    crashed: bool,
    /// The sequential execution lane is busy until this instant.
    busy_until: Time,
    /// NIC egress is busy until this instant.
    nic_free_at: Time,
    /// Disk is busy until this instant.
    disk_free_at: Time,
    /// Worker-pool lanes (parallel verification), each free at given instant.
    pool_free_at: Vec<Time>,
    /// Bytes written to disk (accounting).
    disk_bytes: u64,
    /// Count of synchronous flushes issued (accounting).
    disk_syncs: u64,
}

/// The simulation kernel: virtual clock, event queue, hardware models and
/// fault injection.
pub struct Sim<M> {
    now: Time,
    next_seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    nodes: Vec<NodeState>,
    spec: hw::HwSpec,
    rng: SimRng,
    drop_prob: f64,
    cut_links: HashSet<(NodeId, NodeId)>,
    delivered_messages: u64,
}

impl<M> std::fmt::Debug for Sim<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl<M> Sim<M> {
    /// Creates a kernel for `node_count` nodes with the given hardware spec
    /// and RNG seed.
    pub fn new(node_count: usize, spec: hw::HwSpec, seed: u64) -> Sim<M> {
        let nodes = (0..node_count)
            .map(|_| NodeState {
                crashed: false,
                busy_until: 0,
                nic_free_at: 0,
                disk_free_at: 0,
                pool_free_at: vec![0; spec.cpu.pool_workers.max(1)],
                disk_bytes: 0,
                disk_syncs: 0,
            })
            .collect();
        let mut sim = Sim {
            now: 0,
            next_seq: 0,
            queue: BinaryHeap::new(),
            nodes,
            spec,
            rng: SimRng::seed_from_u64(seed),
            drop_prob: 0.0,
            cut_links: HashSet::new(),
            delivered_messages: 0,
        };
        for n in 0..node_count {
            sim.push(0, Kind::Start { node: n });
        }
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Count of messages delivered so far.
    pub fn delivered_messages(&self) -> u64 {
        self.delivered_messages
    }

    /// Bytes written to `node`'s disk so far.
    pub fn disk_bytes(&self, node: NodeId) -> u64 {
        self.nodes[node].disk_bytes
    }

    /// Synchronous flushes issued by `node` so far.
    pub fn disk_syncs(&self, node: NodeId) -> u64 {
        self.nodes[node].disk_syncs
    }

    fn push(&mut self, at: Time, kind: Kind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { at, seq, kind });
    }

    /// Sets the probability that any individual message is dropped.
    pub fn set_drop_probability(&mut self, p: f64) {
        self.drop_prob = p.clamp(0.0, 1.0);
    }

    /// Cuts (or restores) the directed link `from -> to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, up: bool) {
        if up {
            self.cut_links.remove(&(from, to));
        } else {
            self.cut_links.insert((from, to));
        }
    }

    /// Cuts both directions between `a` and every node in `others`.
    pub fn partition(&mut self, a: NodeId, others: &[NodeId]) {
        for &b in others {
            self.set_link(a, b, false);
            self.set_link(b, a, false);
        }
    }

    /// Schedules a crash of `node` at absolute time `at`.
    pub fn crash(&mut self, node: NodeId, at: Time) {
        self.push(at, Kind::Crash { node });
    }

    /// Schedules a recovery of `node` at absolute time `at`.
    pub fn recover(&mut self, node: NodeId, at: Time) {
        self.push(at, Kind::Recover { node });
    }

    /// True if `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.nodes[node].crashed
    }
}

/// Per-event context handed to actors; all side effects go through here.
pub struct Ctx<'a, M> {
    sim: &'a mut Sim<M>,
    node: NodeId,
    /// CPU time charged by the handler so far (sequential lane).
    charged: Time,
}

impl<'a, M> Ctx<'a, M> {
    /// The node this context belongs to.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current virtual time (at the start of handling this event).
    pub fn now(&self) -> Time {
        self.sim.now
    }

    /// Deterministic per-run randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.sim.rng
    }

    /// Charges sequential CPU time to this node: outputs issued by the
    /// handler take effect after all charged time, and the node cannot
    /// process its next event until then.
    pub fn charge(&mut self, duration: Time) {
        self.charged += duration;
    }

    /// Charges the cost of `count` operations of `each` duration to the
    /// verification pool, returning the virtual duration until the pool
    /// drains. Does *not* block the sequential lane; combine with
    /// [`Ctx::op_after`] when the protocol must wait for completion.
    pub fn pool_charge(&mut self, each: Time, count: usize) -> Time {
        let start = self.sim.now + self.charged;
        let lanes = &mut self.sim.nodes[self.node].pool_free_at;
        let mut finish = start;
        for _ in 0..count {
            // Assign to the earliest-free lane.
            let (idx, &free) = lanes
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("pool has at least one lane");
            let begin = free.max(start);
            let end = begin + each;
            lanes[idx] = end;
            finish = finish.max(end);
        }
        finish - start
    }

    /// Sends `msg` (of `size` wire bytes) to `to`, paying NIC egress cost.
    pub fn send(&mut self, to: NodeId, msg: M, size: usize) {
        let from = self.node;
        if self.sim.nodes[from].crashed {
            return;
        }
        let ready = self.sim.now + self.charged;
        let nic = &self.sim.spec.nic;
        let egress_start = self.sim.nodes[from].nic_free_at.max(ready);
        let egress_end = egress_start + nic.transmit_time(size);
        self.sim.nodes[from].nic_free_at = egress_end;
        if self.sim.cut_links.contains(&(from, to)) {
            return; // transmitted into the void
        }
        if self.sim.drop_prob > 0.0 && self.sim.rng.gen_bool(self.sim.drop_prob) {
            return;
        }
        let jitter = if nic.jitter_ns > 0 {
            self.sim.rng.gen_range(nic.jitter_ns)
        } else {
            0
        };
        let arrival = egress_end + nic.propagation_ns + jitter;
        self.sim.push(arrival, Kind::Deliver { from, to, msg });
    }

    /// Sets a timer that fires after `delay`, delivering [`Event::Timer`]
    /// with `token`.
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        let node = self.node;
        let at = self.sim.now + self.charged + delay;
        self.sim.push(at, Kind::Timer { node, token });
    }

    /// Schedules [`Event::OpDone`] with `token` after `delay` (used to model
    /// completions of asynchronous work such as pool verification).
    pub fn op_after(&mut self, delay: Time, token: u64) {
        let node = self.node;
        let at = self.sim.now + self.charged + delay;
        self.sim.push(at, Kind::OpDone { node, token });
    }

    /// Writes `size` bytes to this node's disk.
    ///
    /// With `sync == true` the write costs the full synchronous-write latency
    /// and [`Event::OpDone`] with `token` fires when it is durable. With
    /// `sync == false` the write only occupies disk bandwidth and no
    /// completion is delivered (fire and forget), matching OS-buffered
    /// writes.
    pub fn disk_write(&mut self, size: usize, sync: bool, token: u64) {
        let node = self.node;
        let start = self.sim.nodes[node]
            .disk_free_at
            .max(self.sim.now + self.charged);
        let disk = &self.sim.spec.disk;
        let dur = disk.write_time(size, sync);
        let end = start + dur;
        self.sim.nodes[node].disk_free_at = end;
        self.sim.nodes[node].disk_bytes += size as u64;
        if sync {
            self.sim.nodes[node].disk_syncs += 1;
            self.sim.push(end, Kind::OpDone { node, token });
        }
    }

    /// Reads `size` bytes from this node's disk, completing with
    /// [`Event::OpDone`] and `token`.
    pub fn disk_read(&mut self, size: usize, token: u64) {
        let node = self.node;
        let start = self.sim.nodes[node]
            .disk_free_at
            .max(self.sim.now + self.charged);
        let dur = self.sim.spec.disk.read_time(size);
        let end = start + dur;
        self.sim.nodes[node].disk_free_at = end;
        self.sim.push(end, Kind::OpDone { node, token });
    }

    /// The hardware spec in force (for cost lookups by protocol code).
    pub fn hw(&self) -> &hw::HwSpec {
        &self.sim.spec
    }
}

/// Owns the actors and drives the kernel.
pub struct Cluster<M> {
    sim: Sim<M>,
    actors: Vec<Box<dyn Actor<M>>>,
}

impl<M> std::fmt::Debug for Cluster<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("sim", &self.sim)
            .finish_non_exhaustive()
    }
}

impl<M> Cluster<M> {
    /// Builds a cluster from actors (node ids are assigned by position).
    pub fn new(actors: Vec<Box<dyn Actor<M>>>, spec: hw::HwSpec, seed: u64) -> Cluster<M> {
        let sim = Sim::new(actors.len(), spec, seed);
        Cluster { sim, actors }
    }

    /// Kernel access (fault injection, clock, accounting).
    pub fn sim(&mut self) -> &mut Sim<M> {
        &mut self.sim
    }

    /// Immutable kernel access.
    pub fn sim_ref(&self) -> &Sim<M> {
        &self.sim
    }

    /// Access an actor (e.g. to read metrics after a run).
    pub fn actor(&self, id: NodeId) -> &dyn Actor<M> {
        self.actors[id].as_ref()
    }

    /// Mutable actor access (test instrumentation).
    pub fn actor_mut(&mut self, id: NodeId) -> &mut (dyn Actor<M> + 'static) {
        self.actors[id].as_mut()
    }

    /// Processes events until the queue empties or virtual time passes
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let mut processed = 0u64;
        while let Some(head) = self.sim.queue.peek() {
            if head.at > deadline {
                break;
            }
            let Scheduled { at, kind, .. } = self.sim.queue.pop().expect("peeked");
            self.sim.now = at.max(self.sim.now);
            processed += 1;
            match kind {
                Kind::Crash { node } => {
                    self.sim.nodes[node].crashed = true;
                    let mut ctx = Ctx {
                        sim: &mut self.sim,
                        node,
                        charged: 0,
                    };
                    self.actors[node].on_event(Event::Crash, &mut ctx);
                }
                Kind::Recover { node } => {
                    self.sim.nodes[node].crashed = false;
                    self.sim.nodes[node].busy_until = self.sim.now;
                    self.dispatch(node, Event::Recover);
                }
                Kind::Start { node } => self.dispatch(node, Event::Start),
                Kind::Timer { node, token } => self.dispatch(node, Event::Timer { token }),
                Kind::OpDone { node, token } => self.dispatch(node, Event::OpDone { token }),
                Kind::Deliver { from, to, msg } => {
                    if !self.sim.nodes[to].crashed {
                        self.sim.delivered_messages += 1;
                        self.dispatch(to, Event::Message { from, msg });
                    }
                }
            }
        }
        processed
    }

    fn dispatch(&mut self, node: NodeId, event: Event<M>) {
        if self.sim.nodes[node].crashed {
            return;
        }
        // If the node's sequential lane is still busy, defer the event.
        if self.sim.nodes[node].busy_until > self.sim.now {
            let at = self.sim.nodes[node].busy_until;
            let kind = match event {
                Event::Message { from, msg } => Kind::Deliver {
                    from,
                    to: node,
                    msg,
                },
                Event::Timer { token } => Kind::Timer { node, token },
                Event::OpDone { token } => Kind::OpDone { node, token },
                Event::Start => Kind::Start { node },
                Event::Recover => Kind::Recover { node },
                Event::Crash => Kind::Crash { node },
            };
            self.sim.push(at, kind);
            return;
        }
        let mut ctx = Ctx {
            sim: &mut self.sim,
            node,
            charged: 0,
        };
        self.actors[node].on_event(event, &mut ctx);
        let charged = ctx.charged;
        if charged > 0 {
            self.sim.nodes[node].busy_until = self.sim.now + charged;
        }
    }

    /// Runs to quiescence (empty queue). Mostly useful in tests; live
    /// workloads keep the queue non-empty forever.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(Time::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, Clone)]
    enum Ping {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        peer: NodeId,
        log: Rc<RefCell<Vec<(Time, u32)>>>,
        count: u32,
    }

    impl Actor<Ping> for Pinger {
        fn on_event(&mut self, event: Event<Ping>, ctx: &mut Ctx<'_, Ping>) {
            match event {
                Event::Start => ctx.send(self.peer, Ping::Ping(0), 100),
                Event::Message {
                    msg: Ping::Pong(n), ..
                } => {
                    self.log.borrow_mut().push((ctx.now(), n));
                    if n < self.count {
                        ctx.send(self.peer, Ping::Ping(n + 1), 100);
                    }
                }
                _ => {}
            }
        }
    }

    struct Ponger;

    impl Actor<Ping> for Ponger {
        fn on_event(&mut self, event: Event<Ping>, ctx: &mut Ctx<'_, Ping>) {
            if let Event::Message {
                from,
                msg: Ping::Ping(n),
            } = event
            {
                ctx.charge(10 * MICRO);
                ctx.send(from, Ping::Pong(n), 100);
            }
        }
    }

    fn spec() -> hw::HwSpec {
        hw::HwSpec::paper_testbed()
    }

    #[test]
    fn ping_pong_roundtrips() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let actors: Vec<Box<dyn Actor<Ping>>> = vec![
            Box::new(Pinger {
                peer: 1,
                log: Rc::clone(&log),
                count: 5,
            }),
            Box::new(Ponger),
        ];
        let mut cluster = Cluster::new(actors, spec(), 1);
        cluster.run_to_quiescence();
        let log = log.borrow();
        assert_eq!(log.len(), 6);
        assert_eq!(log.last().unwrap().1, 5);
        // Time strictly advances and includes the 10us processing charge.
        assert!(log.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let log = Rc::new(RefCell::new(Vec::new()));
            let actors: Vec<Box<dyn Actor<Ping>>> = vec![
                Box::new(Pinger {
                    peer: 1,
                    log: Rc::clone(&log),
                    count: 20,
                }),
                Box::new(Ponger),
            ];
            let mut cluster = Cluster::new(actors, spec(), seed);
            cluster.run_to_quiescence();
            let v = log.borrow().clone();
            v
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn crash_stops_delivery_and_recover_resumes() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let actors: Vec<Box<dyn Actor<Ping>>> = vec![
            Box::new(Pinger {
                peer: 1,
                log: Rc::clone(&log),
                count: 1000,
            }),
            Box::new(Ponger),
        ];
        let mut cluster = Cluster::new(actors, spec(), 3);
        cluster.sim().crash(1, MILLI);
        cluster.run_until(10 * MILLI);
        let after_crash = log.borrow().len();
        cluster.run_until(20 * MILLI);
        // No progress while peer is down.
        assert_eq!(log.borrow().len(), after_crash);
    }

    #[test]
    fn cut_link_blocks_messages() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let actors: Vec<Box<dyn Actor<Ping>>> = vec![
            Box::new(Pinger {
                peer: 1,
                log: Rc::clone(&log),
                count: 10,
            }),
            Box::new(Ponger),
        ];
        let mut cluster = Cluster::new(actors, spec(), 3);
        cluster.sim().set_link(0, 1, false);
        cluster.run_until(SECOND);
        assert!(log.borrow().is_empty());
    }

    #[test]
    fn charge_serializes_node_processing() {
        // A node charged 1ms per event handles at most 1000 events/sec.
        struct Busy {
            handled: Rc<RefCell<u32>>,
        }
        impl Actor<Ping> for Busy {
            fn on_event(&mut self, event: Event<Ping>, ctx: &mut Ctx<'_, Ping>) {
                if matches!(event, Event::Message { .. }) {
                    *self.handled.borrow_mut() += 1;
                    ctx.charge(MILLI);
                }
            }
        }
        struct Spammer {
            peer: NodeId,
        }
        impl Actor<Ping> for Spammer {
            fn on_event(&mut self, event: Event<Ping>, ctx: &mut Ctx<'_, Ping>) {
                if matches!(event, Event::Start) {
                    for i in 0..100 {
                        ctx.send(self.peer, Ping::Ping(i), 10);
                    }
                }
            }
        }
        let handled = Rc::new(RefCell::new(0));
        let actors: Vec<Box<dyn Actor<Ping>>> = vec![
            Box::new(Spammer { peer: 1 }),
            Box::new(Busy {
                handled: Rc::clone(&handled),
            }),
        ];
        let mut cluster = Cluster::new(actors, spec(), 5);
        cluster.run_until(50 * MILLI);
        let n = *handled.borrow();
        assert!((45..=55).contains(&n), "expected ~50 handled, got {n}");
    }

    #[test]
    fn disk_accounting() {
        struct Writer;
        impl Actor<Ping> for Writer {
            fn on_event(&mut self, event: Event<Ping>, ctx: &mut Ctx<'_, Ping>) {
                if matches!(event, Event::Start) {
                    ctx.disk_write(4096, true, 1);
                    ctx.disk_write(4096, false, 2);
                }
            }
        }
        let actors: Vec<Box<dyn Actor<Ping>>> = vec![Box::new(Writer)];
        let mut cluster = Cluster::new(actors, spec(), 1);
        cluster.run_to_quiescence();
        assert_eq!(cluster.sim_ref().disk_bytes(0), 8192);
        assert_eq!(cluster.sim_ref().disk_syncs(0), 1);
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, Clone)]
    struct Nothing;

    /// The verification pool parallelizes up to `pool_workers` lanes: 8 jobs
    /// of 1ms on 4 lanes drain in 2ms, not 8ms.
    #[test]
    fn pool_charge_models_parallelism() {
        struct PoolUser {
            drain: Rc<RefCell<Time>>,
        }
        impl Actor<Nothing> for PoolUser {
            fn on_event(&mut self, event: Event<Nothing>, ctx: &mut Ctx<'_, Nothing>) {
                if matches!(event, Event::Start) {
                    *self.drain.borrow_mut() = ctx.pool_charge(MILLI, 8);
                }
            }
        }
        let drain = Rc::new(RefCell::new(0));
        let actors: Vec<Box<dyn Actor<Nothing>>> = vec![Box::new(PoolUser {
            drain: Rc::clone(&drain),
        })];
        let mut cluster = Cluster::new(actors, hw::HwSpec::test_fast(), 1);
        cluster.run_to_quiescence();
        // test_fast has 4 pool workers.
        assert_eq!(*drain.borrow(), 2 * MILLI);
    }

    /// Back-to-back pool batches queue behind each other (lanes are stateful).
    #[test]
    fn pool_lanes_carry_backlog() {
        struct TwoBatches {
            drains: Rc<RefCell<Vec<Time>>>,
        }
        impl Actor<Nothing> for TwoBatches {
            fn on_event(&mut self, event: Event<Nothing>, ctx: &mut Ctx<'_, Nothing>) {
                if matches!(event, Event::Start) {
                    let first = ctx.pool_charge(MILLI, 4); // fills all 4 lanes
                    let second = ctx.pool_charge(MILLI, 4); // queues behind
                    self.drains.borrow_mut().extend([first, second]);
                }
            }
        }
        let drains = Rc::new(RefCell::new(Vec::new()));
        let actors: Vec<Box<dyn Actor<Nothing>>> = vec![Box::new(TwoBatches {
            drains: Rc::clone(&drains),
        })];
        let mut cluster = Cluster::new(actors, hw::HwSpec::test_fast(), 1);
        cluster.run_to_quiescence();
        let d = drains.borrow();
        assert_eq!(d[0], MILLI);
        assert_eq!(d[1], 2 * MILLI, "second batch waits for the first");
    }

    /// Per-node NIC egress serializes sends: broadcasting a large message to
    /// three peers takes three transmission times on the sender side.
    #[test]
    fn egress_serializes_broadcasts() {
        struct Sender;
        impl Actor<Nothing> for Sender {
            fn on_event(&mut self, event: Event<Nothing>, ctx: &mut Ctx<'_, Nothing>) {
                if matches!(event, Event::Start) && ctx.id() == 0 {
                    for peer in 1..4 {
                        ctx.send(peer, Nothing, 1_000_000); // 1MB each
                    }
                }
            }
        }
        struct Receiver {
            at: Rc<RefCell<Vec<Time>>>,
        }
        impl Actor<Nothing> for Receiver {
            fn on_event(&mut self, event: Event<Nothing>, ctx: &mut Ctx<'_, Nothing>) {
                if matches!(event, Event::Message { .. }) {
                    self.at.borrow_mut().push(ctx.now());
                }
            }
        }
        let at = Rc::new(RefCell::new(Vec::new()));
        let mut actors: Vec<Box<dyn Actor<Nothing>>> = vec![Box::new(Sender)];
        for _ in 0..3 {
            actors.push(Box::new(Receiver { at: Rc::clone(&at) }));
        }
        // 1 Gbps: 1MB ~ 8ms per copy.
        let mut cluster = Cluster::new(actors, hw::HwSpec::paper_testbed(), 1);
        cluster.run_to_quiescence();
        let mut times = at.borrow().clone();
        times.sort_unstable();
        assert_eq!(times.len(), 3);
        // Arrival spacing approximately one transmission time (8ms) apart.
        let gap1 = times[1] - times[0];
        let gap2 = times[2] - times[1];
        assert!(gap1 > 6 * MILLI && gap1 < 11 * MILLI, "gap1 {gap1}");
        assert!(gap2 > 6 * MILLI && gap2 < 11 * MILLI, "gap2 {gap2}");
    }
}
