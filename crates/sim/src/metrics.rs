//! Measurement helpers: throughput over windows, latency percentiles and the
//! paper's trimmed-average methodology.
//!
//! The paper measures throughput at the replicas "at regular intervals (at
//! each 10k operations)", discards the 20% of values with greatest variance
//! and reports the average (§VI-A). [`ThroughputMeter`] reproduces exactly
//! that procedure; [`LatencyMeter`] records client-observed latencies.

use crate::{Time, SECOND};

/// Records commit instants and derives interval throughputs.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    committed: u64,
    window: u64,
    window_start: Option<Time>,
    window_count: u64,
    samples: Vec<f64>,
    timeline: Vec<(Time, f64)>,
}

impl ThroughputMeter {
    /// Creates a meter sampling every `window` operations (the paper uses
    /// 10_000).
    pub fn new(window: u64) -> ThroughputMeter {
        ThroughputMeter {
            window: window.max(1),
            ..ThroughputMeter::default()
        }
    }

    /// Registers `count` operations committed at time `at`.
    pub fn record(&mut self, at: Time, count: u64) {
        if self.window_start.is_none() {
            self.window_start = Some(at);
        }
        self.committed += count;
        self.window_count += count;
        if self.window_count >= self.window {
            let start = self.window_start.expect("window started");
            let elapsed = (at - start).max(1);
            let tps = self.window_count as f64 * SECOND as f64 / elapsed as f64;
            self.samples.push(tps);
            self.timeline.push((at, tps));
            self.window_start = Some(at);
            self.window_count = 0;
        }
    }

    /// Total operations recorded.
    pub fn total(&self) -> u64 {
        self.committed
    }

    /// All interval samples (txs/sec).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// `(time, txs/sec)` pairs for timeline plots (Figure 7).
    pub fn timeline(&self) -> &[(Time, f64)] {
        &self.timeline
    }

    /// The paper's methodology: drop the 20% of samples furthest from the
    /// mean, then average. Returns `(mean, std_dev)` of the kept samples.
    pub fn trimmed_mean(&self) -> (f64, f64) {
        trimmed_mean(&self.samples)
    }
}

/// Applies the paper's 20% variance trim to a sample set and returns
/// `(mean, std_dev)` of the survivors. Empty input yields zeros.
pub fn trimmed_mean(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    let mut by_distance: Vec<f64> = samples.to_vec();
    by_distance.sort_by(|a, b| {
        (a - mean)
            .abs()
            .partial_cmp(&(b - mean).abs())
            .expect("finite samples")
    });
    let keep = ((samples.len() as f64) * 0.8).ceil() as usize;
    let kept = &by_distance[..keep.max(1)];
    let m = kept.iter().sum::<f64>() / kept.len() as f64;
    let var = kept.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / kept.len() as f64;
    (m, var.sqrt())
}

/// Client-observed request latencies.
#[derive(Debug, Clone, Default)]
pub struct LatencyMeter {
    samples: Vec<Time>,
}

impl LatencyMeter {
    /// Creates an empty meter.
    pub fn new() -> LatencyMeter {
        LatencyMeter::default()
    }

    /// Records one request latency.
    pub fn record(&mut self, latency: Time) {
        self.samples.push(latency);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no latency has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in seconds.
    pub fn mean_seconds(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.samples.iter().map(|&t| t as u128).sum();
        (sum as f64 / self.samples.len() as f64) / SECOND as f64
    }

    /// Standard deviation in seconds.
    pub fn std_dev_seconds(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_seconds();
        let var = self
            .samples
            .iter()
            .map(|&t| {
                let x = t as f64 / SECOND as f64 - mean;
                x * x
            })
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// The p-th percentile (0-100) in seconds.
    pub fn percentile_seconds(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)] as f64 / SECOND as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MILLI;

    #[test]
    fn throughput_basic() {
        let mut m = ThroughputMeter::new(10);
        // 10 ops in 1 second -> 10 tps.
        for i in 1..=10u64 {
            m.record(i * SECOND / 10, 1);
        }
        assert_eq!(m.samples().len(), 1);
        let tps = m.samples()[0];
        assert!((tps - 11.1).abs() < 1.2, "{tps}"); // 10 ops over 0.9s window
    }

    #[test]
    fn trimmed_mean_discards_outliers() {
        let mut samples = vec![100.0; 8];
        samples.push(1000.0); // outlier
        samples.push(0.0); // outlier
        let (mean, _) = trimmed_mean(&samples);
        assert!((mean - 100.0).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn trimmed_mean_empty() {
        assert_eq!(trimmed_mean(&[]), (0.0, 0.0));
    }

    #[test]
    fn latency_percentiles() {
        let mut m = LatencyMeter::new();
        for i in 1..=100u64 {
            m.record(i * MILLI);
        }
        assert!((m.percentile_seconds(50.0) - 0.050).abs() < 0.002);
        assert!((m.percentile_seconds(99.0) - 0.099).abs() < 0.002);
        assert!((m.mean_seconds() - 0.0505).abs() < 0.001);
    }

    #[test]
    fn timeline_records_pairs() {
        let mut m = ThroughputMeter::new(5);
        for i in 1..=20u64 {
            m.record(i * 100 * MILLI, 1);
        }
        assert_eq!(m.timeline().len(), 4);
        assert_eq!(m.total(), 20);
    }
}
