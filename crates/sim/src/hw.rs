//! Hardware cost models, calibrated against the paper's testbed (§VI-A):
//! Dell PowerEdge R410 servers — two quad-core 2.27 GHz Xeon E5520 with
//! hyperthreading (16 hardware threads), 32 GB RAM, 146 GB SCSI HDDs
//! (Seagate Cheetah 15k), connected by a 1 Gbps switched network.

use crate::{Time, MICRO, MILLI};

/// Network interface model: per-node serialized egress plus propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NicModel {
    /// Egress bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation/switching delay in nanoseconds.
    pub propagation_ns: Time,
    /// Uniform random extra delay bound (models scheduling noise).
    pub jitter_ns: Time,
}

impl NicModel {
    /// Time to push `size` bytes out of the NIC.
    pub fn transmit_time(&self, size: usize) -> Time {
        // +66 bytes of Ethernet/IP/TCP framing per message (approximate).
        let wire_bits = (size as u64 + 66) * 8;
        wire_bits * 1_000_000_000 / self.bandwidth_bps
    }
}

/// Disk model: seek/flush latency for synchronous writes plus streaming
/// bandwidth for the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskModel {
    /// Cost of making a write durable (controller flush + rotational
    /// positioning on an HDD), charged once per synchronous write.
    pub sync_latency_ns: Time,
    /// Streaming write bandwidth in bytes/second.
    pub write_bandwidth: u64,
    /// Streaming read bandwidth in bytes/second.
    pub read_bandwidth: u64,
}

impl DiskModel {
    /// Duration of a write of `size` bytes.
    pub fn write_time(&self, size: usize, sync: bool) -> Time {
        let stream = size as u64 * 1_000_000_000 / self.write_bandwidth;
        if sync {
            self.sync_latency_ns + stream
        } else {
            stream
        }
    }

    /// Duration of a read of `size` bytes.
    pub fn read_time(&self, size: usize) -> Time {
        size as u64 * 1_000_000_000 / self.read_bandwidth
    }
}

/// CPU cost model. The sequential lane executes the replica's ordered work
/// (protocol handling, transaction execution); the pool lanes model the
/// signature-verification thread pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuModel {
    /// Cost of verifying one client signature.
    pub verify_ns: Time,
    /// Cost of producing one signature.
    pub sign_ns: Time,
    /// Cost of hashing one byte (SHA-256 class).
    pub hash_ns_per_byte: Time,
    /// Cost of executing one application transaction (UTXO update).
    pub execute_tx_ns: Time,
    /// Base protocol handling cost per message.
    pub message_overhead_ns: Time,
    /// Sequential-lane cost of dispatching one job to the worker pool
    /// (enqueue/dequeue, wakeups — significant in the paper's Java stack).
    pub pool_dispatch_ns: Time,
    /// Worker threads available for parallel verification.
    pub pool_workers: usize,
}

impl CpuModel {
    /// Cost of hashing `bytes` bytes.
    pub fn hash_time(&self, bytes: usize) -> Time {
        self.hash_ns_per_byte * bytes as Time
    }
}

/// Complete hardware specification of a simulated node/cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HwSpec {
    /// Network interface model.
    pub nic: NicModel,
    /// Stable storage model.
    pub disk: DiskModel,
    /// Processor model.
    pub cpu: CpuModel,
}

impl HwSpec {
    /// Calibration approximating the paper's testbed.
    ///
    /// The absolute values are necessarily estimates — the goal is that the
    /// *relative* costs (fsync ≫ network hop ≫ hash; verification dominating
    /// execution) match the machine class, so the experiment shapes
    /// reproduce. See EXPERIMENTS.md for the calibration discussion.
    pub fn paper_testbed() -> HwSpec {
        HwSpec {
            nic: NicModel {
                bandwidth_bps: 1_000_000_000, // 1 Gbps
                propagation_ns: 120 * MICRO,  // switched LAN RTT ~0.25ms
                jitter_ns: 20 * MICRO,
            },
            disk: DiskModel {
                // 15k RPM SCSI HDD: ~2ms rotational half-turn + controller
                // flush. Measured fsync latencies on this disk class sit in
                // the 2-5ms band; we use 3ms.
                sync_latency_ns: 3 * MILLI,
                write_bandwidth: 120_000_000, // ~120 MB/s sequential
                read_bandwidth: 140_000_000,
            },
            cpu: CpuModel {
                // ECDSA/EdDSA-class verification on a 2009 Xeon core, Java.
                verify_ns: 310 * MICRO,
                sign_ns: 110 * MICRO,
                hash_ns_per_byte: 8,
                execute_tx_ns: 8 * MICRO,
                message_overhead_ns: 20 * MICRO,
                pool_dispatch_ns: 35 * MICRO,
                // 16 hardware threads; a few are occupied by networking and
                // the sequential lane, leaving ~12 for the verification pool.
                pool_workers: 12,
            },
        }
    }

    /// A fast, frictionless spec for unit tests (tiny latencies, huge
    /// bandwidth) so protocol logic tests do not depend on the cost model.
    pub fn test_fast() -> HwSpec {
        HwSpec {
            nic: NicModel {
                bandwidth_bps: 100_000_000_000,
                propagation_ns: 1000,
                jitter_ns: 0,
            },
            disk: DiskModel {
                sync_latency_ns: 2000,
                write_bandwidth: 10_000_000_000,
                read_bandwidth: 10_000_000_000,
            },
            cpu: CpuModel {
                verify_ns: 100,
                sign_ns: 100,
                hash_ns_per_byte: 0,
                execute_tx_ns: 100,
                message_overhead_ns: 100,
                pool_dispatch_ns: 0,
                pool_workers: 4,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_transmit_scales_with_size() {
        let nic = HwSpec::paper_testbed().nic;
        // 1 Gbps: ~8ns per byte + framing.
        let t1k = nic.transmit_time(1000);
        let t10k = nic.transmit_time(10_000);
        assert!(t10k > 9 * t1k && t10k < 11 * t1k);
    }

    #[test]
    fn sync_write_dominated_by_latency_for_small_sizes() {
        let disk = HwSpec::paper_testbed().disk;
        let small = disk.write_time(512, true);
        let large = disk.write_time(512 * 1024, true);
        // A 512B fsync and a 512KB fsync differ by ~bandwidth only.
        assert!(small >= 3 * MILLI);
        assert!(large < 3 * small, "batched writes amortize the flush");
    }

    #[test]
    fn async_write_has_no_flush_penalty() {
        let disk = HwSpec::paper_testbed().disk;
        assert!(disk.write_time(512, false) < disk.write_time(512, true) / 100);
    }
}
