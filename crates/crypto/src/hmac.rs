//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the TCP transport to authenticate point-to-point frames between
//! replicas: every frame carries a truncated tag over its payload, keyed by a
//! pairwise key derived from the cluster secret, so a connected peer cannot
//! spoof another replica's identity. Verified against the RFC 4231 test
//! vectors below.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    HmacKey::new(key).tag(msg)
}

/// An HMAC-SHA256 key with its schedule precomputed: the `ipad`/`opad`
/// midstates are hashed once at construction, so every [`HmacKey::tag`]
/// call saves two compression rounds — which at transport frame sizes
/// (one or two payload blocks) is nearly half the per-tag cost. Use this
/// instead of [`hmac_sha256`] wherever many messages are tagged under one
/// key.
#[derive(Clone, Debug)]
pub struct HmacKey {
    inner: Sha256,
    outer: Sha256,
}

impl HmacKey {
    /// Prepares the key schedule for `key`.
    pub fn new(key: &[u8]) -> HmacKey {
        // Keys longer than the block are hashed first; shorter ones are
        // zero-padded (RFC 2104 §2).
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let mut h = Sha256::new();
            h.update(key);
            k[..DIGEST_LEN].copy_from_slice(&h.finalize());
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// Computes `HMAC-SHA256(key, msg)` from the precomputed midstates.
    pub fn tag(&self, msg: &[u8]) -> [u8; DIGEST_LEN] {
        let mut inner = self.inner.clone();
        inner.update(msg);
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Derives a purpose-labelled subkey from a root secret:
/// `HMAC(root, label ‖ material)`. Used to turn one cluster secret into
/// pairwise link keys without reusing the root directly on the wire.
pub fn derive_key(root: &[u8], label: &[u8], material: &[u8]) -> [u8; DIGEST_LEN] {
    let mut msg = Vec::with_capacity(label.len() + material.len());
    msg.extend_from_slice(label);
    msg.extend_from_slice(material);
    hmac_sha256(root, &msg)
}

/// Constant-time comparison of two tags (avoids early-exit timing leaks on
/// the frame-verification path).
pub fn verify_tag(expected: &[u8], got: &[u8]) -> bool {
    if expected.len() != got.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(got) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    /// RFC 4231 test cases 1, 2, 3 and 6 (short key, short data; "Jefe";
    /// long data; key longer than the block).
    #[test]
    fn rfc4231_vectors() {
        let long_key = "aa".repeat(131);
        let long_key_msg = "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a\
             65204b6579202d2048617368204b6579204669727374";
        let cases: [(&str, &str, &str); 4] = [
            (
                "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
                "4869205468657265",
                "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
            ),
            (
                "4a656665",
                "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
                "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
            ),
            (
                "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
                &"dd".repeat(50),
                "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
            ),
            (
                long_key.as_str(),
                long_key_msg,
                "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
            ),
        ];
        for (key_hex, msg_hex, want) in cases {
            let key = unhex(key_hex).unwrap();
            let msg = unhex(msg_hex).unwrap();
            assert_eq!(hex(&hmac_sha256(&key, &msg)), want);
        }
    }

    #[test]
    fn derived_keys_differ_by_label_and_material() {
        let root = [7u8; 32];
        let a = derive_key(&root, b"link", b"0-1");
        let b = derive_key(&root, b"link", b"1-0");
        let c = derive_key(&root, b"other", b"0-1");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_key(&root, b"link", b"0-1"));
    }

    #[test]
    fn verify_tag_matches_equality() {
        let t = hmac_sha256(b"k", b"m");
        assert!(verify_tag(&t, &t));
        let mut bad = t;
        bad[0] ^= 1;
        assert!(!verify_tag(&t, &bad));
        assert!(!verify_tag(&t[..4], &t[..5]));
    }
}
