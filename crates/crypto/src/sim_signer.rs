//! A fast keyed-hash "signature" scheme for single-process simulations.
//!
//! Real Ed25519 costs tens of microseconds per operation; a simulated cluster
//! pushing hundreds of thousands of transactions through parameter sweeps
//! would spend nearly all wall-clock time in curve arithmetic that the
//! experiment is *modeling anyway* through the simulator's virtual cost model.
//!
//! This backend replaces the curve with SHA-256: a keypair is
//! `(seed, pk = H("simpk" || seed))` and a signature is
//! `H(seed || pk || msg) || pad`. Verification recovers the seed from a
//! process-global registry keyed by `pk`. Within a simulation this preserves
//! the semantics that matter — only the holder of `seed` can produce a
//! signature that verifies under `pk`, because simulated adversaries never
//! read the registry — while costing two hash compressions per operation.
//!
//! This is **not** a real signature scheme and must never be used outside a
//! simulation; the type names and module docs are deliberately loud about it.

use crate::sha256;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

fn registry() -> &'static RwLock<HashMap<[u8; 32], [u8; 32]>> {
    static REGISTRY: OnceLock<RwLock<HashMap<[u8; 32], [u8; 32]>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// A simulation-only secret key.
#[derive(Clone)]
pub struct SimSecret {
    seed: [u8; 32],
    public: [u8; 32],
}

impl std::fmt::Debug for SimSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSecret")
            .field("public", &crate::hex(&self.public))
            .finish_non_exhaustive()
    }
}

impl SimSecret {
    /// Derives the key from a seed and registers it for verification.
    pub fn from_seed(seed: &[u8; 32]) -> SimSecret {
        let public = sha256::digest_parts(&[b"simpk", seed]);
        registry()
            .write()
            .expect("registry lock")
            .insert(public, *seed);
        SimSecret {
            seed: *seed,
            public,
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> [u8; 32] {
        self.public
    }

    /// Signs `msg` (keyed hash over seed, public key and message).
    pub fn sign(&self, msg: &[u8]) -> [u8; 64] {
        let mac = sha256::digest_parts(&[&self.seed, &self.public, msg]);
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&mac);
        // Second half binds the public key so signatures are unique per key.
        out[32..].copy_from_slice(&self.public);
        out
    }
}

/// Verifies a simulation signature by recomputing the keyed hash with the
/// registered seed. Unknown keys never verify.
pub fn verify(public: &[u8; 32], msg: &[u8], sig: &[u8; 64]) -> bool {
    if &sig[32..] != public.as_slice() {
        return false;
    }
    let seed = match registry().read().expect("registry lock").get(public) {
        Some(seed) => *seed,
        None => return false,
    };
    let mac = sha256::digest_parts(&[&seed, public, msg]);
    sig[..32] == mac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SimSecret::from_seed(&[1u8; 32]);
        let sig = sk.sign(b"hello");
        assert!(verify(&sk.public_key(), b"hello", &sig));
        assert!(!verify(&sk.public_key(), b"other", &sig));
    }

    #[test]
    fn unregistered_key_never_verifies() {
        let fake_pk = [0xeeu8; 32];
        assert!(!verify(&fake_pk, b"m", &[0u8; 64]));
    }

    #[test]
    fn signature_bound_to_key() {
        let a = SimSecret::from_seed(&[1u8; 32]);
        let b = SimSecret::from_seed(&[2u8; 32]);
        let sig = a.sign(b"m");
        assert!(!verify(&b.public_key(), b"m", &sig));
    }

    #[test]
    fn deterministic() {
        let a = SimSecret::from_seed(&[7u8; 32]);
        assert_eq!(a.sign(b"x"), a.sign(b"x"));
    }
}
