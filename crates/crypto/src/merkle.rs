//! Binary Merkle trees over SHA-256.
//!
//! Used for the compact representation of per-block transaction results the
//! paper mentions (footnote 4: "Results can include a compact representation
//! (e.g., a Merkle tree) of the state changes caused by the transactions").

use crate::sha256;

/// 32-byte hash value.
pub type Hash = [u8; 32];

const LEAF_PREFIX: &[u8] = b"\x00";
const NODE_PREFIX: &[u8] = b"\x01";

/// Hashes a leaf with domain separation from interior nodes.
pub fn leaf_hash(data: &[u8]) -> Hash {
    sha256::digest_parts(&[LEAF_PREFIX, data])
}

/// Hashes an interior node.
pub fn node_hash(left: &Hash, right: &Hash) -> Hash {
    sha256::digest_parts(&[NODE_PREFIX, left, right])
}

/// Computes the Merkle root of a list of leaves.
///
/// The empty list hashes to `leaf_hash(b"")` so that every input has a
/// well-defined root. Odd levels promote the unpaired node unchanged
/// (Bitcoin-style duplication would enable CVE-2012-2459-class mutations).
pub fn root(leaves: &[Vec<u8>]) -> Hash {
    if leaves.is_empty() {
        return leaf_hash(b"");
    }
    let mut level: Vec<Hash> = leaves.iter().map(|l| leaf_hash(l)).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(node_hash(&pair[0], &pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// A Merkle inclusion proof: the sibling hashes from leaf to root, with a
/// direction flag (`true` = sibling is on the right).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes bottom-up; the flag is true when the sibling sits to
    /// the right of the running hash.
    pub path: Vec<(Hash, bool)>,
}

/// Builds an inclusion proof for `leaves[index]`.
///
/// # Panics
///
/// Panics if `index >= leaves.len()`.
pub fn prove(leaves: &[Vec<u8>], index: usize) -> Proof {
    assert!(index < leaves.len(), "proof index out of range");
    let mut level: Vec<Hash> = leaves.iter().map(|l| leaf_hash(l)).collect();
    let mut idx = index;
    let mut path = Vec::new();
    while level.len() > 1 {
        let sibling = idx ^ 1;
        if sibling < level.len() {
            path.push((level[sibling], sibling > idx));
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(node_hash(&pair[0], &pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        idx /= 2;
    }
    Proof { index, path }
}

/// Verifies that `leaf_data` is included under `expected_root` at the proof's
/// position.
pub fn verify(expected_root: &Hash, leaf_data: &[u8], proof: &Proof) -> bool {
    let mut h = leaf_hash(leaf_data);
    for (sibling, sibling_right) in &proof.path {
        h = if *sibling_right {
            node_hash(&h, sibling)
        } else {
            node_hash(sibling, &h)
        };
    }
    &h == expected_root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(root(&[]), leaf_hash(b""));
        let one = leaves(1);
        assert_eq!(root(&one), leaf_hash(b"leaf-0"));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = leaves(8);
        let r = root(&base);
        for i in 0..8 {
            let mut tampered = base.clone();
            tampered[i].push(b'!');
            assert_ne!(root(&tampered), r, "leaf {i}");
        }
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..20usize {
            let ls = leaves(n);
            let r = root(&ls);
            for i in 0..n {
                let p = prove(&ls, i);
                assert!(verify(&r, &ls[i], &p), "n={n} i={i}");
                // Wrong leaf data must fail.
                assert!(!verify(&r, b"bogus", &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_from_other_index_fails() {
        let ls = leaves(8);
        let r = root(&ls);
        let p = prove(&ls, 3);
        assert!(!verify(&r, &ls[4], &p));
    }

    #[test]
    fn unbalanced_tree_no_duplication_mutation() {
        // With promote-the-odd-node trees, [a, b, c] and [a, b, c, c] must
        // have different roots (the classic duplication bug makes them equal).
        let three = leaves(3);
        let mut four = leaves(3);
        four.push(three[2].clone());
        assert_ne!(root(&three), root(&four));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prove_out_of_range_panics() {
        prove(&leaves(3), 3);
    }
}
