//! Arithmetic modulo the edwards25519 group order
//! L = 2^252 + 27742317777372353535851937790883648493.
//!
//! Scalars are four little-endian 64-bit words. Reductions use simple binary
//! shift-and-subtract long division — not the fastest approach, but compact,
//! obviously correct, and cheap relative to the curve operations that dominate
//! signing and verification.

// Field/scalar arithmetic uses the literature's method names (`add`, `mul`,
// `sub`, `neg`) by value, and fixed-index loops that mirror the constant-time
// word-by-word algorithms they implement.
#![allow(clippy::should_implement_trait, clippy::needless_range_loop)]

/// The group order L as four little-endian 64-bit words.
const L: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

/// A scalar modulo the group order L.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scalar(pub(crate) [u64; 4]);

/// Compares two 4-word little-endian integers.
fn cmp4(a: &[u64; 4], b: &[u64; 4]) -> std::cmp::Ordering {
    for i in (0..4).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// a -= b on 4-word little-endian integers; caller guarantees a >= b.
fn sub4(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (r1, b1) = a[i].overflowing_sub(b[i]);
        let (r2, b2) = r1.overflowing_sub(borrow);
        a[i] = r2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    debug_assert_eq!(borrow, 0, "sub4 requires a >= b");
}

impl Scalar {
    /// The zero scalar.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The scalar one.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Builds a scalar from a small integer.
    pub fn from_u64(x: u64) -> Scalar {
        Scalar([x, 0, 0, 0])
    }

    /// L - 1, the largest canonical scalar (handy in tests).
    pub fn order_minus_one() -> Scalar {
        let mut w = L;
        w[0] -= 1;
        Scalar(w)
    }

    /// Parses 32 little-endian bytes, reducing modulo L.
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Scalar::from_wide_bytes(&wide)
    }

    /// Parses 32 little-endian bytes, returning `None` unless the value is
    /// already canonical (strictly less than L). Required when validating the
    /// `s` component of signatures (RFC 8032 §5.1.7 malleability check).
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut w = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            w[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if cmp4(&w, &L) == std::cmp::Ordering::Less {
            Some(Scalar(w))
        } else {
            None
        }
    }

    /// Reduces a 512-bit little-endian integer modulo L (used on SHA-512
    /// outputs during signing and verification).
    pub fn from_wide_bytes(bytes: &[u8; 64]) -> Scalar {
        let mut n = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            n[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Scalar(reduce_wide(n))
    }

    /// Serializes to 32 little-endian bytes (canonical).
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, w) in self.0.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Addition modulo L.
    pub fn add(self, rhs: Scalar) -> Scalar {
        let mut w = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            let (r1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (r2, c2) = r1.overflowing_add(carry);
            w[i] = r2;
            carry = u64::from(c1) + u64::from(c2);
        }
        // Inputs are < L < 2^253 so the sum fits in 4 words (no carry out).
        debug_assert_eq!(carry, 0);
        if cmp4(&w, &L) != std::cmp::Ordering::Less {
            sub4(&mut w, &L);
        }
        Scalar(w)
    }

    /// Multiplication modulo L.
    pub fn mul(self, rhs: Scalar) -> Scalar {
        // Schoolbook 256x256 -> 512-bit multiply.
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur = prod[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                prod[i + j] = cur as u64;
                carry = cur >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        Scalar(reduce_wide(prod))
    }

    /// Computes `self * b + c (mod L)` — the core of signature generation.
    pub fn mul_add(self, b: Scalar, c: Scalar) -> Scalar {
        self.mul(b).add(c)
    }

    /// Breaks the scalar into 64 little-endian 4-bit nibbles for windowed
    /// scalar multiplication.
    pub fn to_nibbles(self) -> [u8; 64] {
        let bytes = self.to_bytes();
        let mut out = [0u8; 64];
        for (i, b) in bytes.iter().enumerate() {
            out[2 * i] = b & 0x0f;
            out[2 * i + 1] = b >> 4;
        }
        out
    }

    /// True for the zero scalar.
    pub fn is_zero(self) -> bool {
        self.0 == [0, 0, 0, 0]
    }
}

/// Reduces an 8-word (512-bit) little-endian integer modulo L using binary
/// long division: subtract `L << shift` whenever it fits, from the highest
/// shift down.
fn reduce_wide(n: [u64; 8]) -> [u64; 4] {
    // Work in a 9-word buffer so `L << shift` comparisons are easy.
    let mut r = [0u64; 9];
    r[..8].copy_from_slice(&n);
    // L occupies 253 bits; n occupies up to 512. Max useful shift: 512-253=259.
    for shift in (0..=259u32).rev() {
        let ls = shl_l(shift);
        if cmp9(&r, &ls) != std::cmp::Ordering::Less {
            sub9(&mut r, &ls);
        }
    }
    let mut out = [0u64; 4];
    out.copy_from_slice(&r[..4]);
    debug_assert_eq!(&r[4..], &[0u64; 5]);
    out
}

/// Computes `L << shift` as a 9-word little-endian integer.
fn shl_l(shift: u32) -> [u64; 9] {
    let word_shift = (shift / 64) as usize;
    let bit_shift = shift % 64;
    let mut out = [0u64; 9];
    for i in 0..4 {
        let idx = i + word_shift;
        if idx < 9 {
            out[idx] |= L[i] << bit_shift;
        }
        if bit_shift > 0 && idx + 1 < 9 {
            out[idx + 1] |= L[i] >> (64 - bit_shift);
        }
    }
    out
}

fn cmp9(a: &[u64; 9], b: &[u64; 9]) -> std::cmp::Ordering {
    for i in (0..9).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

fn sub9(a: &mut [u64; 9], b: &[u64; 9]) {
    let mut borrow = 0u64;
    for i in 0..9 {
        let (r1, b1) = a[i].overflowing_sub(b[i]);
        let (r2, b2) = r1.overflowing_sub(borrow);
        a[i] = r2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    debug_assert_eq!(borrow, 0, "sub9 requires a >= b");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_reduces_to_zero() {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&Scalar(L).to_bytes());
        assert!(Scalar::from_wide_bytes(&wide).is_zero());
    }

    #[test]
    fn l_minus_one_is_canonical() {
        let s = Scalar::order_minus_one();
        assert_eq!(Scalar::from_canonical_bytes(&s.to_bytes()), Some(s));
        // L itself is not canonical.
        assert_eq!(Scalar::from_canonical_bytes(&Scalar(L).to_bytes()), None);
    }

    #[test]
    fn add_wraps_at_l() {
        let lm1 = Scalar::order_minus_one();
        assert!(lm1.add(Scalar::ONE).is_zero());
        assert_eq!(lm1.add(Scalar::from_u64(2)), Scalar::ONE);
    }

    #[test]
    fn mul_small() {
        assert_eq!(
            Scalar::from_u64(6).mul(Scalar::from_u64(7)),
            Scalar::from_u64(42)
        );
    }

    #[test]
    fn mul_by_l_minus_one_is_negation() {
        // (L-1)*x = -x (mod L)
        let x = Scalar::from_u64(12345);
        let neg = Scalar::order_minus_one().mul(x);
        assert!(neg.add(x).is_zero());
    }

    #[test]
    fn wide_reduction_matches_mod_arithmetic() {
        // (2^256) mod L computed two ways: via from_wide_bytes, and via
        // repeated doubling of 1.
        let mut wide = [0u8; 64];
        wide[32] = 1; // 2^256
        let direct = Scalar::from_wide_bytes(&wide);
        let mut doubled = Scalar::ONE;
        for _ in 0..256 {
            doubled = doubled.add(doubled);
        }
        assert_eq!(direct, doubled);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Scalar::from_u64(0xdeadbeef);
        let b = Scalar::from_u64(0xcafebabe);
        let c = Scalar::from_u64(0x12345678);
        assert_eq!(a.mul_add(b, c), a.mul(b).add(c));
    }

    #[test]
    fn nibbles_reconstruct_scalar() {
        let s = Scalar::from_u64(0x1234_5678_9abc_def0);
        let nibbles = s.to_nibbles();
        let mut bytes = [0u8; 32];
        for i in 0..32 {
            bytes[i] = nibbles[2 * i] | (nibbles[2 * i + 1] << 4);
        }
        assert_eq!(bytes, s.to_bytes());
    }
}
