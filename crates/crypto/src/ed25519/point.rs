//! Group operations on edwards25519 in extended twisted-Edwards coordinates.
//!
//! A point (x, y) is stored as (X : Y : Z : T) with x = X/Z, y = Y/Z and
//! T = XY/Z. The unified addition formulas used here are complete for
//! edwards25519 (they have no exceptional cases), which keeps the logic simple
//! and branch-free.

use super::field::{d, d2, sqrt_m1, Fe};
use super::scalar::Scalar;

/// A point on edwards25519 in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl Point {
    /// The neutral element (0, 1).
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point B (with y = 4/5 and x even).
    pub fn basepoint() -> Point {
        // The canonical compressed encoding of B from RFC 8032.
        let mut enc = [0x66u8; 32];
        enc[0] = 0x58;
        Point::decompress(&enc).expect("the standard basepoint decompresses")
    }

    /// Point addition (complete formulas; works for any pair of points).
    pub fn add(&self, other: &Point) -> Point {
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let c = self.t.mul(d2()).mul(other.t);
        let dd = self.z.add(self.z).mul(other.z);
        let e = b.sub(a);
        let f = dd.sub(c);
        let g = dd.add(c);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Point doubling.
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(self.z.square());
        let h = a.add(b);
        let e = h.sub(self.x.add(self.y).square());
        let g = a.sub(b);
        let f = c.add(g);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Additive inverse.
    pub fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication `[k]P` via 4-bit windowed double-and-add.
    pub fn mul(&self, k: &Scalar) -> Point {
        // Precompute 0P..15P.
        let mut table = [Point::identity(); 16];
        for i in 1..16 {
            table[i] = table[i - 1].add(self);
        }
        let nibbles = k.to_nibbles();
        let mut acc = Point::identity();
        for (i, nib) in nibbles.iter().enumerate().rev() {
            if i != nibbles.len() - 1 {
                acc = acc.double().double().double().double();
            }
            acc = acc.add(&table[*nib as usize]);
        }
        acc
    }

    /// Computes `[a]A + [b]B` (the double-scalar multiplication used by
    /// signature verification). Not constant time; verification inputs are
    /// public.
    pub fn double_scalar_mul(a: &Scalar, point_a: &Point, b: &Scalar, point_b: &Point) -> Point {
        point_a.mul(a).add(&point_b.mul(b))
    }

    /// Compresses to the 32-byte RFC 8032 wire format.
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses a 32-byte encoding; `None` if it is not a curve point.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let y = Fe::from_bytes(bytes);
        let sign = (bytes[31] >> 7) == 1;
        // Solve x^2 = (y^2 - 1) / (d*y^2 + 1).
        let y2 = y.square();
        let u = y2.sub(Fe::ONE);
        let v = d().mul(y2).add(Fe::ONE);
        // Candidate root: x = u * v^3 * (u * v^7)^((p-5)/8)
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut x = u.mul(v3).mul(u.mul(v7).pow_p58());
        let vx2 = v.mul(x.square());
        if !vx2.ct_eq(u) {
            if vx2.ct_eq(u.neg()) {
                x = x.mul(sqrt_m1());
            } else {
                return None;
            }
        }
        if x.is_zero() && sign {
            // -0 is a non-canonical encoding.
            return None;
        }
        if x.is_negative() != sign {
            x = x.neg();
        }
        let t = x.mul(y);
        Some(Point {
            x,
            y,
            z: Fe::ONE,
            t,
        })
    }

    /// Equality in the group (projective comparison).
    pub fn eq_point(&self, other: &Point) -> bool {
        // X1/Z1 == X2/Z2  <=>  X1*Z2 == X2*Z1, likewise for Y.
        self.x.mul(other.z).ct_eq(other.x.mul(self.z))
            && self.y.mul(other.z).ct_eq(other.y.mul(self.z))
    }

    /// True if this is the neutral element.
    pub fn is_identity(&self) -> bool {
        self.eq_point(&Point::identity())
    }

    /// Multiplies by the cofactor (8) — used to reject small-order components.
    pub fn mul_by_cofactor(&self) -> Point {
        self.double().double().double()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let b = Point::basepoint();
        assert!(b.add(&Point::identity()).eq_point(&b));
        assert!(Point::identity().add(&b).eq_point(&b));
    }

    #[test]
    fn double_matches_add() {
        let b = Point::basepoint();
        assert!(b.double().eq_point(&b.add(&b)));
        let b4 = b.double().double();
        assert!(b4.eq_point(&b.add(&b).add(&b).add(&b)));
    }

    #[test]
    fn neg_cancels() {
        let b = Point::basepoint();
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn compress_roundtrip() {
        let b = Point::basepoint();
        let p = b.double().add(&b); // 3B
        let enc = p.compress();
        let q = Point::decompress(&enc).expect("valid point");
        assert!(p.eq_point(&q));
        assert_eq!(q.compress(), enc);
    }

    #[test]
    fn basepoint_has_order_l() {
        // [L]B == identity.
        let l_bytes = Scalar::order_minus_one();
        let lb = Point::basepoint().mul(&l_bytes);
        // [L-1]B == -B
        assert!(lb.eq_point(&Point::basepoint().neg()));
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let b = Point::basepoint();
        let k = Scalar::from_u64(17);
        let mut acc = Point::identity();
        for _ in 0..17 {
            acc = acc.add(&b);
        }
        assert!(b.mul(&k).eq_point(&acc));
    }

    #[test]
    fn mul_distributes_over_add() {
        let b = Point::basepoint();
        let k5 = Scalar::from_u64(5);
        let k7 = Scalar::from_u64(7);
        let k12 = Scalar::from_u64(12);
        assert!(b.mul(&k5).add(&b.mul(&k7)).eq_point(&b.mul(&k12)));
    }

    #[test]
    fn decompress_rejects_non_points() {
        // y = 7 does not correspond to a curve point on edwards25519... check
        // by construction: flip through candidate ys and require decompress to
        // be internally consistent when it succeeds.
        let mut found_invalid = false;
        for yv in 2u64..40 {
            let mut enc = Fe::from_u64(yv).to_bytes();
            enc[31] &= 0x7f;
            match Point::decompress(&enc) {
                Some(p) => assert_eq!(p.compress()[..31], enc[..31]),
                None => found_invalid = true,
            }
        }
        assert!(found_invalid, "expected at least one non-point y in range");
    }
}
