//! Ed25519 signatures per RFC 8032, implemented from scratch.
//!
//! The implementation prioritizes clarity and auditability over raw speed: it
//! is used for end-to-end correctness (certificates, chain self-verification,
//! fork prevention) while large-scale simulations may swap in the cheap
//! [`crate::sim_signer`] backend with identical semantics.
//!
//! Verified against the RFC 8032 test vectors in the unit tests below.

pub mod field;
pub mod point;
pub mod scalar;

use crate::sha512::Sha512;
use point::Point;
use scalar::Scalar;

/// Length of a public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of a signature in bytes.
pub const SIGNATURE_LEN: usize = 64;
/// Length of a secret seed in bytes.
pub const SEED_LEN: usize = 32;

/// An Ed25519 signing key, expanded from a 32-byte seed.
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; SEED_LEN],
    scalar: Scalar,
    prefix: [u8; 32],
    public: [u8; PUBLIC_KEY_LEN],
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print secret material.
        f.debug_struct("SigningKey")
            .field("public", &crate::hex(&self.public))
            .finish_non_exhaustive()
    }
}

impl SigningKey {
    /// Derives the signing key from a 32-byte seed (RFC 8032 §5.1.5).
    pub fn from_seed(seed: &[u8; SEED_LEN]) -> SigningKey {
        let mut h = Sha512::new();
        h.update(seed);
        let digest = h.finalize();
        let mut scalar_bytes = [0u8; 32];
        scalar_bytes.copy_from_slice(&digest[..32]);
        // Clamp per RFC 8032.
        scalar_bytes[0] &= 0xf8;
        scalar_bytes[31] &= 0x7f;
        scalar_bytes[31] |= 0x40;
        let scalar = Scalar::from_bytes_mod_order(&scalar_bytes);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&digest[32..]);
        let public = Point::basepoint().mul(&scalar).compress();
        SigningKey {
            seed: *seed,
            scalar,
            prefix,
            public,
        }
    }

    /// The corresponding 32-byte public key.
    pub fn public_key(&self) -> [u8; PUBLIC_KEY_LEN] {
        self.public
    }

    /// The seed this key was derived from.
    pub fn seed(&self) -> &[u8; SEED_LEN] {
        &self.seed
    }

    /// Signs `msg`, producing a 64-byte signature (RFC 8032 §5.1.6).
    pub fn sign(&self, msg: &[u8]) -> [u8; SIGNATURE_LEN] {
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(msg);
        let r = Scalar::from_wide_bytes(&h.finalize());
        let big_r = Point::basepoint().mul(&r).compress();

        let mut h = Sha512::new();
        h.update(&big_r);
        h.update(&self.public);
        h.update(msg);
        let k = Scalar::from_wide_bytes(&h.finalize());

        let s = k.mul_add(self.scalar, r);
        let mut sig = [0u8; SIGNATURE_LEN];
        sig[..32].copy_from_slice(&big_r);
        sig[32..].copy_from_slice(&s.to_bytes());
        sig
    }
}

/// Verifies an Ed25519 signature (RFC 8032 §5.1.7, with the canonical-`s`
/// malleability check).
pub fn verify(public_key: &[u8; PUBLIC_KEY_LEN], msg: &[u8], sig: &[u8; SIGNATURE_LEN]) -> bool {
    let mut r_bytes = [0u8; 32];
    r_bytes.copy_from_slice(&sig[..32]);
    let mut s_bytes = [0u8; 32];
    s_bytes.copy_from_slice(&sig[32..]);

    let s = match Scalar::from_canonical_bytes(&s_bytes) {
        Some(s) => s,
        None => return false,
    };
    let a = match Point::decompress(public_key) {
        Some(a) => a,
        None => return false,
    };
    let big_r = match Point::decompress(&r_bytes) {
        Some(r) => r,
        None => return false,
    };

    let mut h = Sha512::new();
    h.update(&r_bytes);
    h.update(public_key);
    h.update(msg);
    let k = Scalar::from_wide_bytes(&h.finalize());

    // Check [8][s]B == [8]R + [8][k]A to tolerate small-order components the
    // same way batchable verifiers do.
    let sb = Point::basepoint().mul(&s);
    let ka = a.mul(&k);
    let rhs = big_r.add(&ka);
    sb.mul_by_cofactor().eq_point(&rhs.mul_by_cofactor())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    fn arr32(v: &[u8]) -> [u8; 32] {
        v.try_into().expect("32 bytes")
    }

    fn arr64(v: &[u8]) -> [u8; 64] {
        v.try_into().expect("64 bytes")
    }

    /// RFC 8032 §7.1 TEST 1 (empty message).
    #[test]
    fn rfc8032_test1() {
        let seed = arr32(&unhex(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            key.public_key().to_vec(),
            unhex("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
        );
        let sig = key.sign(b"");
        assert_eq!(
            sig.to_vec(),
            unhex(
                "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
                 5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
            )
        );
        assert!(verify(&key.public_key(), b"", &sig));
    }

    /// RFC 8032 §7.1 TEST 2 (one-byte message).
    #[test]
    fn rfc8032_test2() {
        let seed = arr32(&unhex(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        ));
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            key.public_key().to_vec(),
            unhex("3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
        );
        let msg = unhex("72");
        let sig = key.sign(&msg);
        assert_eq!(
            sig.to_vec(),
            unhex(
                "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
                 085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
            )
        );
        assert!(verify(&key.public_key(), &msg, &sig));
    }

    /// RFC 8032 §7.1 TEST 3 (two-byte message).
    #[test]
    fn rfc8032_test3() {
        let seed = arr32(&unhex(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        ));
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            key.public_key().to_vec(),
            unhex("fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025")
        );
        let msg = unhex("af82");
        let sig = key.sign(&msg);
        assert_eq!(
            sig.to_vec(),
            unhex(
                "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
                 18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
            )
        );
        assert!(verify(&key.public_key(), &msg, &sig));
    }

    #[test]
    fn tampered_message_fails() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let sig = key.sign(b"pay alice 10 coins");
        assert!(verify(&key.public_key(), b"pay alice 10 coins", &sig));
        assert!(!verify(&key.public_key(), b"pay alice 99 coins", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let key = SigningKey::from_seed(&[9u8; 32]);
        let mut sig = key.sign(b"message");
        sig[10] ^= 0x01;
        assert!(!verify(&key.public_key(), b"message", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let key_a = SigningKey::from_seed(&[1u8; 32]);
        let key_b = SigningKey::from_seed(&[2u8; 32]);
        let sig = key_a.sign(b"message");
        assert!(!verify(&key_b.public_key(), b"message", &sig));
    }

    #[test]
    fn non_canonical_s_rejected() {
        // Take a valid signature and add L to s: must be rejected.
        let key = SigningKey::from_seed(&[3u8; 32]);
        let sig = key.sign(b"m");
        let mut s = [0u8; 32];
        s.copy_from_slice(&sig[32..]);
        // s + L (little-endian addition). L < 2^253 so this fits 32 bytes for
        // most s; if it overflows, the test would wrap, so only run the check
        // when it does not.
        let l_bytes = unhex("edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
        let mut carry = 0u16;
        let mut s_plus_l = [0u8; 32];
        for i in 0..32 {
            let v = s[i] as u16 + l_bytes[i] as u16 + carry;
            s_plus_l[i] = v as u8;
            carry = v >> 8;
        }
        if carry == 0 {
            let mut bad = sig;
            bad[32..].copy_from_slice(&s_plus_l);
            assert!(!verify(&key.public_key(), b"m", &arr64(&bad)));
        }
    }

    #[test]
    fn signing_is_deterministic() {
        let key = SigningKey::from_seed(&[5u8; 32]);
        assert_eq!(key.sign(b"x"), key.sign(b"x"));
        assert_ne!(key.sign(b"x"), key.sign(b"y"));
    }
}
