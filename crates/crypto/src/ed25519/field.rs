//! Arithmetic in GF(2^255 - 19), the base field of Curve25519/edwards25519.
//!
//! Elements are represented with five 51-bit limbs (radix 2^51). This is the
//! classic representation from the "ref10" family of implementations: limb
//! products fit comfortably in `u128` and carries are cheap.

// Field/scalar arithmetic uses the literature's method names (`add`, `mul`,
// `sub`, `neg`) by value, and fixed-index loops that mirror the constant-time
// word-by-word algorithms they implement.
#![allow(clippy::should_implement_trait, clippy::needless_range_loop)]

/// 2^51 - 1: mask for one limb.
const MASK: u64 = (1u64 << 51) - 1;

/// A field element in GF(2^255 - 19).
///
/// Internal limbs are kept *loosely reduced* (each `< 2^52`); canonical byte
/// encodings are produced by [`Fe::to_bytes`], which performs a full reduction.
#[derive(Clone, Copy, Debug)]
pub struct Fe(pub(crate) [u64; 5]);

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0, 0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Builds an element from a `u64` (must fit the field trivially).
    pub fn from_u64(x: u64) -> Fe {
        let mut out = Fe::ZERO;
        out.0[0] = x & MASK;
        out.0[1] = x >> 51;
        out
    }

    /// Decodes 32 little-endian bytes, ignoring the top bit (per RFC 8032).
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| -> u64 {
            let mut v = [0u8; 8];
            v[..b.len()].copy_from_slice(b);
            u64::from_le_bytes(v)
        };
        let l0 = load(&bytes[0..8]) & MASK;
        let l1 = (load(&bytes[6..14]) >> 3) & MASK;
        let l2 = (load(&bytes[12..20]) >> 6) & MASK;
        let l3 = (load(&bytes[19..27]) >> 1) & MASK;
        // Masking with MASK keeps global bits 204..254 and drops bit 255 (the
        // sign bit, per RFC 8032).
        let l4 = (load(&bytes[24..32]) >> 12) & MASK;
        Fe([l0, l1, l2, l3, l4])
    }

    /// Encodes to the canonical 32-byte little-endian representation.
    pub fn to_bytes(self) -> [u8; 32] {
        // First make limbs < 2^51 (plus a tiny slack in limb 0) via carry
        // propagation, folding final carries back through the *19 wraparound.
        let h = self.carry().carry();
        // Compute q = value + 19 with full carry propagation; bit 255 of q
        // tells us whether value >= p (p = 2^255 - 19).
        let mut q = [h.0[0] + 19, h.0[1], h.0[2], h.0[3], h.0[4]];
        for i in 0..4 {
            q[i + 1] += q[i] >> 51;
            q[i] &= MASK;
        }
        let ge_p = (q[4] >> 51) & 1; // 1 iff value >= p
        q[4] &= MASK; // q is now (value + 19) mod 2^255, limbs all < 2^51
                      // Pack the five 51-bit limbs into four 64-bit words.
        let mut w = [
            q[0] | (q[1] << 51),
            (q[1] >> 13) | (q[2] << 38),
            (q[2] >> 26) | (q[3] << 25),
            (q[3] >> 39) | (q[4] << 12),
        ];
        if ge_p == 0 {
            // value < p: the canonical value is q - 19 (undo the +19).
            let mut borrow = 19u64;
            for word in &mut w {
                let (r, b) = word.overflowing_sub(borrow);
                *word = r;
                borrow = u64::from(b);
                if borrow == 0 {
                    break;
                }
            }
        }
        // When ge_p == 1 the canonical value is value - p = q - 2^255, and the
        // masking of q[4] above already removed bit 255.
        let mut out = [0u8; 32];
        for (i, word) in w.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn carry(self) -> Fe {
        let mut l = self.0;
        let mut c: u64;
        c = l[0] >> 51;
        l[0] &= MASK;
        l[1] += c;
        c = l[1] >> 51;
        l[1] &= MASK;
        l[2] += c;
        c = l[2] >> 51;
        l[2] &= MASK;
        l[3] += c;
        c = l[3] >> 51;
        l[3] &= MASK;
        l[4] += c;
        c = l[4] >> 51;
        l[4] &= MASK;
        l[0] += c * 19;
        Fe(l)
    }

    /// Field addition.
    pub fn add(self, rhs: Fe) -> Fe {
        Fe([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
            self.0[4] + rhs.0[4],
        ])
        .carry()
    }

    /// Field subtraction.
    pub fn sub(self, rhs: Fe) -> Fe {
        // Add 2*p before subtracting so limbs stay positive. In 51-bit limbs,
        // 2p = [2^52-38, 2^52-2, 2^52-2, 2^52-2, 2^52-2].
        let p2 = [
            (MASK + 1) * 2 - 38,
            (MASK + 1) * 2 - 2,
            (MASK + 1) * 2 - 2,
            (MASK + 1) * 2 - 2,
            (MASK + 1) * 2 - 2,
        ];
        Fe([
            self.0[0] + p2[0] - rhs.0[0],
            self.0[1] + p2[1] - rhs.0[1],
            self.0[2] + p2[2] - rhs.0[2],
            self.0[3] + p2[3] - rhs.0[3],
            self.0[4] + p2[4] - rhs.0[4],
        ])
        .carry()
        .carry()
    }

    /// Field negation.
    pub fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication.
    pub fn mul(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;

        let t0 = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let mut t1 =
            m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let mut t2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let mut t3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let mut t4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        // carry chain over u128 accumulators
        let mut out = [0u64; 5];
        let mask = MASK as u128;
        t1 += t0 >> 51;
        out[0] = (t0 & mask) as u64;
        t2 += t1 >> 51;
        out[1] = (t1 & mask) as u64;
        t3 += t2 >> 51;
        out[2] = (t2 & mask) as u64;
        t4 += t3 >> 51;
        out[3] = (t3 & mask) as u64;
        let carry = (t4 >> 51) as u64;
        out[4] = (t4 & mask) as u64;
        out[0] += carry * 19;
        Fe(out).carry()
    }

    /// Field squaring.
    pub fn square(self) -> Fe {
        self.mul(self)
    }

    /// Repeated squaring: `self^(2^n)`.
    pub fn square_n(self, n: u32) -> Fe {
        let mut x = self;
        for _ in 0..n {
            x = x.square();
        }
        x
    }

    /// Multiplicative inverse via Fermat's little theorem (`self^(p-2)`).
    ///
    /// Returns `Fe::ZERO` for input zero (0 has no inverse; callers that care
    /// must check [`Fe::is_zero`] first).
    pub fn invert(self) -> Fe {
        // p - 2 = 2^255 - 21. Use the standard addition chain.
        let z = self;
        let z2 = z.square(); // 2
        let z9 = z2.square().square().mul(z); // 9 = 2^3 + 1
        let z11 = z9.mul(z2); // 11
        let z2_5_0 = z11.square().mul(z9); // 2^5 - 1
        let z2_10_0 = z2_5_0.square_n(5).mul(z2_5_0); // 2^10 - 1
        let z2_20_0 = z2_10_0.square_n(10).mul(z2_10_0); // 2^20 - 1
        let z2_40_0 = z2_20_0.square_n(20).mul(z2_20_0); // 2^40 - 1
        let z2_50_0 = z2_40_0.square_n(10).mul(z2_10_0); // 2^50 - 1
        let z2_100_0 = z2_50_0.square_n(50).mul(z2_50_0); // 2^100 - 1
        let z2_200_0 = z2_100_0.square_n(100).mul(z2_100_0); // 2^200 - 1
        let z2_250_0 = z2_200_0.square_n(50).mul(z2_50_0); // 2^250 - 1
        z2_250_0.square_n(5).mul(z11) // 2^255 - 21
    }

    /// Computes `self^((p-5)/8)`, the core of the square-root algorithm.
    pub fn pow_p58(self) -> Fe {
        // (p - 5) / 8 = 2^252 - 3
        let z = self;
        let z2 = z.square();
        let z9 = z2.square().square().mul(z);
        let z11 = z9.mul(z2);
        let z2_5_0 = z11.square().mul(z9);
        let z2_10_0 = z2_5_0.square_n(5).mul(z2_5_0);
        let z2_20_0 = z2_10_0.square_n(10).mul(z2_10_0);
        let z2_40_0 = z2_20_0.square_n(20).mul(z2_20_0);
        let z2_50_0 = z2_40_0.square_n(10).mul(z2_10_0);
        let z2_100_0 = z2_50_0.square_n(50).mul(z2_50_0);
        let z2_200_0 = z2_100_0.square_n(100).mul(z2_100_0);
        let z2_250_0 = z2_200_0.square_n(50).mul(z2_50_0);
        z2_250_0.square_n(2).mul(z) // 2^252 - 3
    }

    /// True if the canonical encoding is all zeros.
    pub fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// The "sign" of a field element: the least-significant bit of its
    /// canonical encoding (used for point compression per RFC 8032).
    pub fn is_negative(self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Constant-ish equality through canonical encodings.
    pub fn ct_eq(self, other: Fe) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

/// `sqrt(-1)` in the field, computed once at first use.
pub fn sqrt_m1() -> Fe {
    // 2^((p-1)/4) is a square root of -1 when p = 5 (mod 8).
    // (p-1)/4 = 2^253 - 5  =  (2^252 - 3)*2 + 1  =>  2 * pow_p58 exponent + 1
    // i.e. x^((p-1)/4) = (x^(2^252-3))^2 * x  for x = 2.
    let two = Fe::from_u64(2);
    two.pow_p58().square().mul(two)
}

/// The Edwards curve constant `d = -121665/121666 (mod p)`.
pub fn d() -> Fe {
    let num = Fe::from_u64(121_665).neg();
    let den = Fe::from_u64(121_666);
    num.mul(den.invert())
}

/// `2 * d (mod p)`, used in the extended-coordinate addition formulas.
pub fn d2() -> Fe {
    let dd = d();
    dd.add(dd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> Fe {
        Fe::from_u64(n)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = fe(123456789);
        let b = fe(987654321);
        assert!(a.add(b).sub(b).ct_eq(a));
        assert!(a.sub(b).add(b).ct_eq(a));
    }

    #[test]
    fn mul_matches_small_ints() {
        assert!(fe(7).mul(fe(6)).ct_eq(fe(42)));
        assert!(fe(1 << 30).mul(fe(1 << 30)).ct_eq(fe(1 << 60)));
    }

    #[test]
    fn invert_is_inverse() {
        let a = fe(1234567890123456789);
        assert!(a.mul(a.invert()).ct_eq(Fe::ONE));
    }

    #[test]
    fn zero_has_no_inverse_but_is_zero() {
        assert!(Fe::ZERO.invert().is_zero());
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = sqrt_m1();
        assert!(i.square().ct_eq(Fe::ONE.neg()));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(5);
        }
        bytes[31] &= 0x7f;
        let a = Fe::from_bytes(&bytes);
        // The value may exceed p, so compare via a double round-trip.
        let canon = a.to_bytes();
        assert_eq!(Fe::from_bytes(&canon).to_bytes(), canon);
    }

    #[test]
    fn p_minus_one_encodes_canonically() {
        // p - 1 = 2^255 - 20
        let mut b = [0xffu8; 32];
        b[0] = 0xec;
        b[31] = 0x7f;
        let a = Fe::from_bytes(&b);
        assert_eq!(a.to_bytes(), b);
        assert!(a.add(Fe::ONE).is_zero());
    }

    #[test]
    fn d_constant_matches_reference() {
        // The canonical little-endian encoding of d from RFC 8032.
        let expected = "a3785913ca4deb75abd841414d0a700098e879777940c78c73fe6f2bee6c0352";
        let got: String = d().to_bytes().iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn distributivity() {
        let a = fe(0xdead_beef);
        let b = fe(0xcafe_babe);
        let c = fe(0x1234_5678);
        let left = a.mul(b.add(c));
        let right = a.mul(b).add(a.mul(c));
        assert!(left.ct_eq(right));
    }
}
