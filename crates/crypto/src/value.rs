//! Shared, hash-memoized value bytes — the zero-copy handle for decided
//! consensus values.
//!
//! A decided value is touched by many stages — ordering, delivery
//! buffering, repair replies, view-change lock vectors, durable logging —
//! and historically each stage deep-cloned the bytes and recomputed
//! `sha256(value)`. [`ValueBytes`] wraps the bytes in an `Arc` so every
//! stage shares one allocation, and memoizes the digest so it is computed
//! at most once per allocation no matter how many paths ask for it.
//!
//! The wire encoding is byte-identical to `Vec<u8>` (u32 length prefix +
//! raw bytes), so swapping a message field from `Vec<u8>` to `ValueBytes`
//! changes nothing on the wire — simulator NIC models and seed pins are
//! unaffected.
//!
//! [`hashes_computed`] exposes a process-wide counter of *actual* digest
//! computations (memoized hits don't count), which is what lets tests and
//! `bench_check` assert the hash-once invariant instead of trusting it.

use crate::{sha256, Hash};
use smartchain_codec::{Decode, DecodeError, Encode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-wide count of real SHA-256 value digests (memo misses).
static HASHES_COMPUTED: AtomicU64 = AtomicU64::new(0);

/// Total `sha256(value)` computations performed through [`ValueBytes::hash`]
/// since process start. Memoized lookups do not increment it; the
/// hash-per-decision gates in `bench_check` are deltas of this counter.
pub fn hashes_computed() -> u64 {
    HASHES_COMPUTED.load(Ordering::Relaxed)
}

struct Inner {
    bytes: Vec<u8>,
    hash: OnceLock<Hash>,
}

/// Immutable, reference-counted value bytes with a memoized SHA-256 digest.
///
/// Cloning is an `Arc` bump; equality compares the underlying bytes.
#[derive(Clone)]
pub struct ValueBytes(Arc<Inner>);

impl ValueBytes {
    /// Wraps `bytes` in a fresh shared handle (digest not yet computed).
    pub fn new(bytes: Vec<u8>) -> ValueBytes {
        ValueBytes(Arc::new(Inner {
            bytes,
            hash: OnceLock::new(),
        }))
    }

    /// SHA-256 of the bytes, computed on first call and memoized for the
    /// lifetime of the allocation (all clones share the memo).
    pub fn hash(&self) -> Hash {
        *self.0.hash.get_or_init(|| {
            HASHES_COMPUTED.fetch_add(1, Ordering::Relaxed);
            sha256::digest(&self.0.bytes)
        })
    }

    /// The raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0.bytes
    }

    /// Length of the raw bytes.
    pub fn len(&self) -> usize {
        self.0.bytes.len()
    }

    /// True when there are no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.bytes.is_empty()
    }

    /// An owned copy of the bytes (allocates; off the hot path only).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.bytes.clone()
    }
}

impl std::ops::Deref for ValueBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0.bytes
    }
}

impl AsRef<[u8]> for ValueBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0.bytes
    }
}

impl From<Vec<u8>> for ValueBytes {
    fn from(bytes: Vec<u8>) -> ValueBytes {
        ValueBytes::new(bytes)
    }
}

impl From<&[u8]> for ValueBytes {
    fn from(bytes: &[u8]) -> ValueBytes {
        ValueBytes::new(bytes.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for ValueBytes {
    fn from(bytes: &[u8; N]) -> ValueBytes {
        ValueBytes::new(bytes.to_vec())
    }
}

impl PartialEq for ValueBytes {
    fn eq(&self, other: &ValueBytes) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0.bytes == other.0.bytes
    }
}

impl Eq for ValueBytes {}

impl PartialEq<[u8]> for ValueBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0.bytes == other
    }
}

impl PartialEq<Vec<u8>> for ValueBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0.bytes == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for ValueBytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.0.bytes == *other
    }
}

impl std::fmt::Debug for ValueBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ValueBytes({} bytes)", self.0.bytes.len())
    }
}

impl Encode for ValueBytes {
    fn encode(&self, out: &mut Vec<u8>) {
        // Byte-identical to the Vec<u8> encoding.
        self.0.bytes.encode(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.0.bytes.len()
    }
}

impl Decode for ValueBytes {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ValueBytes::new(Vec::<u8>::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_codec::{from_bytes, to_bytes};

    #[test]
    fn wire_identical_to_vec() {
        let raw = vec![1u8, 2, 3, 4, 5];
        let vb = ValueBytes::new(raw.clone());
        assert_eq!(to_bytes(&vb), to_bytes(&raw));
        assert_eq!(vb.encoded_len(), raw.encoded_len());
        let back: ValueBytes = from_bytes(&to_bytes(&raw)).unwrap();
        assert_eq!(back, raw);
    }

    #[test]
    fn hash_computed_once_per_allocation() {
        let vb = ValueBytes::new(vec![9u8; 1024]);
        let before = hashes_computed();
        let h1 = vb.hash();
        let clone = vb.clone();
        let h2 = clone.hash();
        assert_eq!(h1, h2);
        assert_eq!(h1, sha256::digest(&vec![9u8; 1024]));
        assert_eq!(
            hashes_computed() - before,
            1,
            "clones share the memoized digest"
        );
    }

    #[test]
    fn equality_compares_bytes() {
        let a = ValueBytes::new(vec![1, 2, 3]);
        let b = ValueBytes::new(vec![1, 2, 3]);
        let c = ValueBytes::new(vec![4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(a, b"\x01\x02\x03");
    }
}
