//! SHA-256 as specified in FIPS 180-4.
//!
//! Implemented from scratch (no external crypto dependencies). Verified against
//! the NIST test vectors in the unit tests below.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes.
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use smartchain_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0xba);
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let want = BLOCK_LEN - self.buf_len;
            let take = want.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Consumes the hasher and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update_padding();
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bit_len.to_be_bytes());
        // After padding there are exactly 8 bytes left in the final block.
        self.buf[BLOCK_LEN - 8..].copy_from_slice(&len_bytes);
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self) {
        // Append 0x80 then zeros until 8 bytes remain in the block.
        self.buf[self.buf_len] = 0x80;
        let after = self.buf_len + 1;
        if after > BLOCK_LEN - 8 {
            for b in &mut self.buf[after..] {
                *b = 0;
            }
            let block = self.buf;
            self.compress(&block);
            for b in &mut self.buf[..BLOCK_LEN - 8] {
                *b = 0;
            }
        } else {
            for b in &mut self.buf[after..BLOCK_LEN - 8] {
                *b = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        #[cfg(target_arch = "x86_64")]
        if ni::available() {
            // SAFETY: `available` verified the sha/ssse3/sse4.1 CPU features.
            unsafe { ni::compress(&mut self.state, block) };
            return;
        }
        self.compress_scalar(block);
    }

    fn compress_scalar(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Hardware SHA-256 compression via the x86 SHA extensions (SHA-NI).
/// Dispatched at runtime; the scalar path above stays the portable
/// fallback and the reference the tests compare against.
#[cfg(target_arch = "x86_64")]
mod ni {
    use super::{BLOCK_LEN, K};
    use std::arch::x86_64::*;

    pub fn available() -> bool {
        // `is_x86_feature_detected!` caches its own CPUID probe.
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// # Safety
    /// The caller must have checked [`available`] on this CPU.
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub unsafe fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
        // Byte shuffle turning the big-endian message words into lanes.
        let be_mask = _mm_set_epi64x(0x0c0d0e0f_08090a0bu64 as i64, 0x04050607_00010203u64 as i64);

        // Repack [a..d]/[e..h] into the ABEF/CDGH lane order the
        // sha256rnds2 instruction expects.
        let lo = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let lo = _mm_shuffle_epi32(lo, 0xB1); // CDAB
        let hi = _mm_shuffle_epi32(hi, 0x1B); // EFGH
        let mut abef = _mm_alignr_epi8(lo, hi, 8);
        let mut cdgh = _mm_blend_epi16(hi, lo, 0xF0);
        let abef_save = abef;
        let cdgh_save = cdgh;

        let mut w = [
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr() as *const __m128i), be_mask),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(16) as *const __m128i),
                be_mask,
            ),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(32) as *const __m128i),
                be_mask,
            ),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(48) as *const __m128i),
                be_mask,
            ),
        ];

        for i in 0..16 {
            let k = _mm_loadu_si128(K.as_ptr().add(4 * i) as *const __m128i);
            let msg = _mm_add_epi32(w[i & 3], k);
            cdgh = _mm_sha256rnds2_epu32(cdgh, abef, msg);
            abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(msg, 0x0E));
            if i < 12 {
                // Extend the schedule: the lane being consumed four
                // groups from now is w[t-16]+σ0(w[t-15])+w[t-7]+σ1(w[t-2]).
                let w7 = _mm_alignr_epi8(w[(i + 3) & 3], w[(i + 2) & 3], 4);
                let x = _mm_sha256msg1_epu32(w[i & 3], w[(i + 1) & 3]);
                w[i & 3] = _mm_sha256msg2_epu32(_mm_add_epi32(x, w7), w[(i + 3) & 3]);
            }
        }

        abef = _mm_add_epi32(abef, abef_save);
        cdgh = _mm_add_epi32(cdgh, cdgh_save);

        let tmp = _mm_shuffle_epi32(abef, 0x1B); // FEBA
        let cdgh = _mm_shuffle_epi32(cdgh, 0xB1); // DCHG
        let lo = _mm_blend_epi16(tmp, cdgh, 0xF0); // DCBA
        let hi = _mm_alignr_epi8(cdgh, tmp, 8); // HGFE
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, lo);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, hi);
    }
}

/// Convenience one-shot hash.
///
/// # Examples
///
/// ```
/// let d = smartchain_crypto::sha256::digest(b"");
/// assert_eq!(hex(&d), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
/// # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of several byte slices without allocating.
pub fn digest_parts(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(
            hex(&digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn digest_parts_matches_concat() {
        let a = b"hello ".as_slice();
        let b = b"world".as_slice();
        assert_eq!(digest_parts(&[a, b]), digest(b"hello world"));
    }

    #[test]
    fn scalar_compress_matches_dispatch() {
        // On SHA-NI machines `digest` takes the hardware path; drive the
        // scalar compressor directly so both stay verified everywhere.
        for len in [0usize, 1, 63, 64, 65, 256, 1000] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 7 % 251) as u8).collect();
            let mut h = Sha256::new();
            let mut input = data.as_slice();
            while input.len() >= BLOCK_LEN {
                let (block, rest) = input.split_at(BLOCK_LEN);
                h.compress_scalar(block.try_into().unwrap());
                h.total_len += BLOCK_LEN as u64;
                input = rest;
            }
            h.update(input);
            assert_eq!(h.finalize(), digest(&data), "len {len}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 56-byte padding boundary must round-trip the
        // incremental API identically to the one-shot API.
        for len in 50..70usize {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), digest(&data), "len {len}");
        }
    }
}
