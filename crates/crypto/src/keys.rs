//! Unified signing API over the two backends:
//!
//! * [`Backend::Ed25519`] — the real RFC 8032 implementation in
//!   [`crate::ed25519`]; cryptographically sound, used for end-to-end tests,
//!   examples and auditing.
//! * [`Backend::Sim`] — a registry-backed keyed-hash scheme
//!   ([`crate::sim_signer`]); sound *within a single-process simulation*
//!   (forgery requires reading the process-global registry, which simulated
//!   adversaries never do) and roughly two orders of magnitude faster.
//!   Large parameter sweeps use this backend while the simulator's cost model
//!   charges realistic virtual time for every operation.

use crate::ed25519;
use crate::sim_signer;

/// Which signature scheme a key belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Real Ed25519 (RFC 8032).
    Ed25519,
    /// Registry-backed simulation signer.
    Sim,
}

/// A public key (32 bytes plus a backend tag).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey {
    backend_tag: u8,
    bytes: [u8; 32],
}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicKey({}…)", &crate::hex(&self.bytes)[..12])
    }
}

impl std::fmt::Display for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", crate::hex(&self.bytes))
    }
}

impl PublicKey {
    const TAG_ED25519: u8 = 0;
    const TAG_SIM: u8 = 1;

    /// The backend this key belongs to.
    pub fn backend(&self) -> Backend {
        if self.backend_tag == Self::TAG_ED25519 {
            Backend::Ed25519
        } else {
            Backend::Sim
        }
    }

    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    /// Serializes to 33 bytes (tag || key).
    pub fn to_wire(&self) -> [u8; 33] {
        let mut out = [0u8; 33];
        out[0] = self.backend_tag;
        out[1..].copy_from_slice(&self.bytes);
        out
    }

    /// Parses the 33-byte wire form.
    pub fn from_wire(wire: &[u8; 33]) -> PublicKey {
        let mut bytes = [0u8; 32];
        bytes.copy_from_slice(&wire[1..]);
        PublicKey {
            backend_tag: wire[0],
            bytes,
        }
    }

    /// Verifies `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        if sig.backend_tag != self.backend_tag {
            return false;
        }
        match self.backend() {
            Backend::Ed25519 => {
                let mut s = [0u8; 64];
                s.copy_from_slice(&sig.bytes);
                ed25519::verify(&self.bytes, msg, &s)
            }
            Backend::Sim => sim_signer::verify(&self.bytes, msg, &sig.bytes),
        }
    }
}

/// A signature (64 bytes plus a backend tag).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    backend_tag: u8,
    bytes: [u8; 64],
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature({}…)", &crate::hex(&self.bytes)[..12])
    }
}

impl Signature {
    /// Raw signature bytes.
    pub fn as_bytes(&self) -> &[u8; 64] {
        &self.bytes
    }

    /// Serializes to 65 bytes (tag || sig).
    pub fn to_wire(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        out[0] = self.backend_tag;
        out[1..].copy_from_slice(&self.bytes);
        out
    }

    /// Parses the 65-byte wire form.
    pub fn from_wire(wire: &[u8; 65]) -> Signature {
        let mut bytes = [0u8; 64];
        bytes.copy_from_slice(&wire[1..]);
        Signature {
            backend_tag: wire[0],
            bytes,
        }
    }
}

/// A secret (signing) key.
#[derive(Clone)]
pub enum SecretKey {
    /// Real Ed25519 signing key.
    Ed25519(Box<ed25519::SigningKey>),
    /// Simulation signer secret.
    Sim(sim_signer::SimSecret),
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecretKey")
            .field("public", &self.public_key())
            .finish_non_exhaustive()
    }
}

impl SecretKey {
    /// Deterministically derives a key of the given backend from a seed.
    pub fn from_seed(backend: Backend, seed: &[u8; 32]) -> SecretKey {
        match backend {
            Backend::Ed25519 => SecretKey::Ed25519(Box::new(ed25519::SigningKey::from_seed(seed))),
            Backend::Sim => SecretKey::Sim(sim_signer::SimSecret::from_seed(seed)),
        }
    }

    /// Generates a fresh key from caller-provided entropy: `fill` receives a
    /// zeroed 32-byte seed buffer and must fill it with OS/user randomness.
    pub fn generate(backend: Backend, fill: impl FnOnce(&mut [u8; 32])) -> SecretKey {
        let mut seed = [0u8; 32];
        fill(&mut seed);
        SecretKey::from_seed(backend, &seed)
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        match self {
            SecretKey::Ed25519(k) => PublicKey {
                backend_tag: PublicKey::TAG_ED25519,
                bytes: k.public_key(),
            },
            SecretKey::Sim(k) => PublicKey {
                backend_tag: PublicKey::TAG_SIM,
                bytes: k.public_key(),
            },
        }
    }

    /// Signs `msg`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        match self {
            SecretKey::Ed25519(k) => Signature {
                backend_tag: PublicKey::TAG_ED25519,
                bytes: k.sign(msg),
            },
            SecretKey::Sim(k) => Signature {
                backend_tag: PublicKey::TAG_SIM,
                bytes: k.sign(msg),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_roundtrip() {
        for backend in [Backend::Ed25519, Backend::Sim] {
            let sk = SecretKey::from_seed(backend, &[42u8; 32]);
            let pk = sk.public_key();
            let sig = sk.sign(b"hello");
            assert!(pk.verify(b"hello", &sig), "{backend:?}");
            assert!(!pk.verify(b"goodbye", &sig), "{backend:?}");
        }
    }

    #[test]
    fn backends_do_not_cross_verify() {
        let ed = SecretKey::from_seed(Backend::Ed25519, &[1u8; 32]);
        let sim = SecretKey::from_seed(Backend::Sim, &[1u8; 32]);
        let sig = ed.sign(b"m");
        assert!(!sim.public_key().verify(b"m", &sig));
    }

    #[test]
    fn wire_roundtrip() {
        let sk = SecretKey::from_seed(Backend::Sim, &[3u8; 32]);
        let pk = sk.public_key();
        let sig = sk.sign(b"m");
        assert_eq!(PublicKey::from_wire(&pk.to_wire()), pk);
        assert_eq!(Signature::from_wire(&sig.to_wire()), sig);
    }

    #[test]
    fn deterministic_derivation() {
        let a = SecretKey::from_seed(Backend::Ed25519, &[9u8; 32]);
        let b = SecretKey::from_seed(Backend::Ed25519, &[9u8; 32]);
        assert_eq!(a.public_key(), b.public_key());
    }
}
