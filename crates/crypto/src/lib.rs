//! Cryptographic substrate for the SmartChain reproduction.
//!
//! Everything is implemented from scratch on the standard library:
//!
//! * [`sha256`] / [`sha512`] — FIPS 180-4 hashes (verified against NIST
//!   vectors).
//! * [`ed25519`] — RFC 8032 signatures (verified against the RFC vectors).
//! * [`sim_signer`] — a registry-backed keyed-hash scheme for fast
//!   single-process simulations.
//! * [`keys`] — a unified [`keys::SecretKey`]/[`keys::PublicKey`] API over
//!   both backends.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), the frame authenticator of the
//!   TCP transport's point-to-point links.
//! * [`pool`] — a parallel signature-verification worker pool (the mechanism
//!   behind the paper's "parallel signature verification" column in Table I).
//! * [`value`] — [`ValueBytes`], the Arc-shared, hash-memoized handle for
//!   decided consensus values (the zero-copy/hash-once hot-path currency).
//!
//! # Examples
//!
//! ```
//! use smartchain_crypto::keys::{Backend, SecretKey};
//!
//! let key = SecretKey::from_seed(Backend::Ed25519, &[7u8; 32]);
//! let sig = key.sign(b"transfer 10 coins to bob");
//! assert!(key.public_key().verify(b"transfer 10 coins to bob", &sig));
//! ```

pub mod ed25519;
pub mod hmac;
pub mod keys;
pub mod pool;
pub mod sha256;
pub mod sha512;
pub mod sim_signer;
pub mod value;

pub use value::ValueBytes;

/// 32-byte hash digest used throughout the workspace.
pub type Hash = [u8; 32];

/// Formats bytes as lowercase hex (used in `Debug`/`Display` impls and logs).
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Parses lowercase/uppercase hex into bytes; `None` on bad input.
pub fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data = vec![0x00, 0x01, 0xab, 0xff];
        assert_eq!(unhex(&hex(&data)), Some(data));
    }

    #[test]
    fn unhex_rejects_bad_input() {
        assert_eq!(unhex("abc"), None);
        assert_eq!(unhex("zz"), None);
    }
}
