//! A parallel signature-verification pool.
//!
//! BFT-SMaRt pushes client-signature checks into a pool of worker threads so
//! multi-core servers verify in parallel instead of inside the (sequential)
//! state machine — the paper's Table I shows this alone more than doubles
//! SMaRtCoin's throughput. This module provides the same facility for real
//! (wall-clock) deployments; the discrete-event simulator models the pool's
//! *virtual-time* behaviour separately in `smartchain-sim`.
//!
//! Built on a std-only MPMC work queue (mutex + condvar): workers block on
//! [`JobQueue::pop`], producers fan jobs in with [`JobQueue::push`], and the
//! queue closing is the shutdown signal.

use crate::keys::{PublicKey, Signature};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One verification job.
struct Job {
    index: usize,
    public: PublicKey,
    msg: Vec<u8>,
    sig: Signature,
}

/// A minimal multi-producer multi-consumer queue (std has only MPSC).
struct JobQueue {
    state: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut st = self.state.lock().expect("pool queue lock");
        st.0.push_back(job);
        self.ready.notify_one();
    }

    /// Blocks until a job is available; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().expect("pool queue lock");
        loop {
            if let Some(job) = st.0.pop_front() {
                return Some(job);
            }
            if st.1 {
                return None;
            }
            st = self.ready.wait(st).expect("pool queue lock");
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("pool queue lock");
        st.1 = true;
        self.ready.notify_all();
    }
}

/// A fixed-size pool of verification workers.
///
/// # Examples
///
/// ```
/// use smartchain_crypto::keys::{Backend, SecretKey};
/// use smartchain_crypto::pool::VerifyPool;
///
/// let pool = VerifyPool::new(4);
/// let sk = SecretKey::from_seed(Backend::Sim, &[1u8; 32]);
/// let batch: Vec<_> = (0..16u8)
///     .map(|i| (sk.public_key(), vec![i], sk.sign(&[i])))
///     .collect();
/// let results = pool.verify_batch(&batch);
/// assert!(results.iter().all(|&ok| ok));
/// ```
pub struct VerifyPool {
    jobs: Arc<JobQueue>,
    /// Guarded so the pool is `Sync` (shareable via `Arc` across replica
    /// components); the lock spans an entire batch, keeping each call's
    /// results from interleaving with another thread's.
    results_rx: Mutex<mpsc::Receiver<(usize, bool)>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for VerifyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl VerifyPool {
    /// Spawns a pool with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> VerifyPool {
        assert!(workers > 0, "pool needs at least one worker");
        let jobs = Arc::new(JobQueue::new());
        let (res_tx, res_rx) = mpsc::channel::<(usize, bool)>();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = Arc::clone(&jobs);
            let tx = res_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    let ok = job.public.verify(&job.msg, &job.sig);
                    if tx.send((job.index, ok)).is_err() {
                        break;
                    }
                }
            }));
        }
        // res_tx drops here: each worker holds its own clone, so the channel
        // closes — and recv() fails fast — iff every worker died.
        drop(res_tx);
        VerifyPool {
            jobs,
            results_rx: Mutex::new(res_rx),
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Verifies a batch in parallel, returning per-item results in order.
    pub fn verify_batch(&self, batch: &[(PublicKey, Vec<u8>, Signature)]) -> Vec<bool> {
        let n = batch.len();
        let results_rx = self.results_rx.lock().expect("pool results lock");
        for (index, (public, msg, sig)) in batch.iter().enumerate() {
            self.jobs.push(Job {
                index,
                public: *public,
                msg: msg.clone(),
                sig: *sig,
            });
        }
        let mut results = vec![false; n];
        for _ in 0..n {
            let (index, ok) = results_rx.recv().expect("workers alive while pool exists");
            results[index] = ok;
        }
        results
    }

    /// Verifies a batch of [`VerifyItem`]s, keeping each item's tag with its
    /// verdict — the wall-clock backend of the pipeline's verify stage.
    /// Consumes the items, so messages move into the worker jobs uncopied.
    pub fn verify_tagged<T>(&self, batch: Vec<VerifyItem<T>>) -> Vec<(T, bool)> {
        let n = batch.len();
        let results_rx = self.results_rx.lock().expect("pool results lock");
        let mut tags = Vec::with_capacity(n);
        for (index, item) in batch.into_iter().enumerate() {
            tags.push(item.tag);
            self.jobs.push(Job {
                index,
                public: item.public,
                msg: item.msg,
                sig: item.sig,
            });
        }
        let mut results = vec![false; n];
        for _ in 0..n {
            let (index, ok) = results_rx.recv().expect("workers alive while pool exists");
            results[index] = ok;
        }
        tags.into_iter().zip(results).collect()
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        self.jobs.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A signature check carrying an arbitrary tag through the verify stage
/// (e.g. the request the signature belongs to).
#[derive(Clone, Debug)]
pub struct VerifyItem<T> {
    /// Caller's payload, returned with the verdict.
    pub tag: T,
    /// Claimed signer.
    pub public: PublicKey,
    /// Signed message bytes.
    pub msg: Vec<u8>,
    /// The signature to check.
    pub sig: Signature,
}

/// Verifies a batch sequentially — the baseline the pool is compared against.
pub fn verify_batch_sequential(batch: &[(PublicKey, Vec<u8>, Signature)]) -> Vec<bool> {
    batch
        .iter()
        .map(|(public, msg, sig)| public.verify(msg, sig))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{Backend, SecretKey};

    fn batch(n: usize) -> Vec<(PublicKey, Vec<u8>, Signature)> {
        let sk = SecretKey::from_seed(Backend::Sim, &[11u8; 32]);
        (0..n)
            .map(|i| {
                let msg = format!("tx-{i}").into_bytes();
                let sig = sk.sign(&msg);
                (sk.public_key(), msg, sig)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let b = batch(64);
        let pool = VerifyPool::new(4);
        assert_eq!(pool.verify_batch(&b), verify_batch_sequential(&b));
    }

    #[test]
    fn detects_bad_signatures_at_right_positions() {
        let mut b = batch(16);
        // Corrupt entries 3 and 11 by swapping their messages.
        let m3 = b[3].1.clone();
        b[3].1 = b[11].1.clone();
        b[11].1 = m3;
        let pool = VerifyPool::new(3);
        let results = pool.verify_batch(&b);
        for (i, ok) in results.iter().enumerate() {
            assert_eq!(*ok, i != 3 && i != 11, "index {i}");
        }
    }

    #[test]
    fn empty_batch() {
        let pool = VerifyPool::new(2);
        assert!(pool.verify_batch(&[]).is_empty());
    }

    #[test]
    fn pool_reusable_across_batches() {
        let pool = VerifyPool::new(2);
        for _ in 0..3 {
            let b = batch(8);
            assert!(pool.verify_batch(&b).iter().all(|&ok| ok));
        }
    }

    #[test]
    fn tagged_batch_keeps_tag_with_verdict() {
        let sk = SecretKey::from_seed(Backend::Sim, &[12u8; 32]);
        let pool = VerifyPool::new(2);
        let mut items: Vec<VerifyItem<usize>> = (0..8usize)
            .map(|i| {
                let msg = vec![i as u8];
                VerifyItem {
                    tag: i,
                    public: sk.public_key(),
                    sig: sk.sign(&msg),
                    msg,
                }
            })
            .collect();
        items[5].msg = vec![0xff]; // breaks item 5 only
        let out = pool.verify_tagged(items);
        for (tag, ok) in out {
            assert_eq!(ok, tag != 5, "tag {tag}");
        }
    }
}
